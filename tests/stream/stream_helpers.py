"""Helpers shared by the streaming tests (imported, not fixtures)."""

from __future__ import annotations

import random

from repro import EmbeddingConfig, FloorServingService, GraficsConfig, SignalRecord
from repro.data import make_experiment_split, small_test_building

#: Deliberately tiny: streaming tests retrain repeatedly.
FAST_CONFIG = GraficsConfig(
    embedding=EmbeddingConfig(samples_per_edge=8.0, seed=0),
    allow_unreachable_clusters=True)


class FakeClock:
    """A manually advanced monotonic clock for deterministic cooldowns."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def train_service(building_ids=("bldg-A",), seed_base=50):
    """A FloorServingService with small trained buildings + their splits."""
    service = FloorServingService(grafics_config=FAST_CONFIG)
    splits = {}
    for offset, building_id in enumerate(building_ids):
        dataset = small_test_building(num_floors=2, records_per_floor=25,
                                      aps_per_floor=10,
                                      seed=seed_base + offset,
                                      building_id=building_id)
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        service.fit_building(dataset.subset(split.train_records), split.labels)
        splits[building_id] = split
    return service, splits


def stream_records(split, count, prefix="s", label_every=3, rng_seed=0,
                   rename=None, jitter=0.0):
    """Synthesize unique stream records from a split's held-out records.

    ``rename`` optionally maps MAC -> MAC (AP churn); ``label_every`` puts a
    ground-truth floor on every n-th record (crowdsourced labels);
    ``jitter`` adds deterministic per-record RSS noise so the quantised
    fingerprints stay distinct and survive the dedup filter.
    """
    rng = random.Random(rng_seed)
    pool = list(split.test_records)
    records = []
    for i in range(count):
        base = pool[i % len(pool)]
        rss = {}
        for mac, value in base.rss.items():
            if rename is not None:
                mac = rename.get(mac, mac)
            rss[mac] = value + (rng.uniform(-jitter, jitter) if jitter else 0.0)
        records.append(SignalRecord(
            record_id=f"{prefix}{i:05d}", rss=rss,
            floor=base.floor if i % label_every == 0 else None))
    return records
