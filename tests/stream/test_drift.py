"""Drift-detector tests: churn, rejection rate, distance shift, latching."""

from __future__ import annotations

import pytest

from repro.stream import DriftConfig, DriftDetector, DriftKind


class TestVocabularyChurn:
    def test_fires_below_jaccard_threshold(self):
        detector = DriftDetector(DriftConfig(vocabulary_jaccard_min=0.6,
                                             min_window_macs=2))
        trained = {f"ap-{i}" for i in range(10)}
        observed = {f"ap-{i}" for i in range(5)} | {f"new-{i}" for i in range(5)}
        event = detector.check_vocabulary("A", trained, observed)
        assert event is not None
        assert event.kind is DriftKind.MAC_CHURN
        assert event.building_id == "A"
        assert event.value == pytest.approx(5 / 15)

    def test_quiet_when_vocabulary_stable(self):
        detector = DriftDetector(DriftConfig(min_window_macs=2))
        trained = {f"ap-{i}" for i in range(10)}
        assert detector.check_vocabulary("A", trained, trained) is None

    def test_small_windows_suppressed(self):
        detector = DriftDetector(DriftConfig(min_window_macs=8))
        assert detector.check_vocabulary("A", {"x", "y"}, {"a", "b"}) is None

    def test_latched_until_recovery(self):
        detector = DriftDetector(DriftConfig(vocabulary_jaccard_min=0.6,
                                             min_window_macs=1))
        trained = {f"ap-{i}" for i in range(10)}
        drifted = {f"new-{i}" for i in range(10)}
        assert detector.check_vocabulary("A", trained, drifted) is not None
        # Still drifted: latched, no event spam.
        assert detector.check_vocabulary("A", trained, drifted) is None
        # Recovery unlatches, a later drift fires again.
        assert detector.check_vocabulary("A", trained, trained) is None
        assert detector.check_vocabulary("A", trained, drifted) is not None
        assert detector.events_total[DriftKind.MAC_CHURN.value] == 2

    def test_latches_are_per_building(self):
        detector = DriftDetector(DriftConfig(vocabulary_jaccard_min=0.6,
                                             min_window_macs=1))
        trained = {f"ap-{i}" for i in range(10)}
        drifted = {f"new-{i}" for i in range(10)}
        assert detector.check_vocabulary("A", trained, drifted) is not None
        assert detector.check_vocabulary("B", trained, drifted) is not None


class TestRejectionRate:
    def test_fires_above_threshold_after_min_observations(self):
        detector = DriftDetector(DriftConfig(rejection_window=20,
                                             rejection_rate_max=0.3,
                                             min_rejection_observations=10))
        events = [detector.observe_routing(False) for _ in range(9)]
        assert all(e is None for e in events)  # below min observations
        event = detector.observe_routing(False)
        assert event is not None
        assert event.kind is DriftKind.ROUTER_REJECTION
        assert event.building_id is None
        assert event.value == pytest.approx(1.0)

    def test_quiet_under_threshold(self):
        detector = DriftDetector(DriftConfig(rejection_window=20,
                                             rejection_rate_max=0.5,
                                             min_rejection_observations=10))
        for i in range(40):
            assert detector.observe_routing(i % 4 != 0) is None  # 25% rejected


class TestDistanceShift:
    CONFIG = DriftConfig(distance_window=8, baseline_observations=4,
                         distance_quantile=0.75, distance_ratio_max=1.5)

    def test_fires_when_quantile_exceeds_baseline_ratio(self):
        detector = DriftDetector(self.CONFIG)
        for _ in range(4):
            assert detector.observe_distance("A", 1.0) is None  # baseline
        events = [detector.observe_distance("A", 10.0) for _ in range(8)]
        fired = [e for e in events if e is not None]
        assert len(fired) == 1  # latched after the first firing
        assert fired[0].kind is DriftKind.DISTANCE_SHIFT
        assert fired[0].value > 1.5

    def test_stable_distances_never_fire(self):
        detector = DriftDetector(self.CONFIG)
        for _ in range(50):
            assert detector.observe_distance("A", 1.0) is None

    def test_reset_building_recaptures_baseline(self):
        detector = DriftDetector(self.CONFIG)
        for _ in range(4):
            detector.observe_distance("A", 1.0)
        fired = [detector.observe_distance("A", 10.0) for _ in range(8)]
        assert any(fired)
        detector.reset_building("A")
        # Post-swap the new model's distances become the new normal.
        for _ in range(4):
            assert detector.observe_distance("A", 10.0) is None
        assert detector.stats()["distance_baselines"]["A"] == pytest.approx(10.0)
        for _ in range(20):
            assert detector.observe_distance("A", 10.0) is None


class TestConfigValidation:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            DriftConfig(vocabulary_jaccard_min=0.0)
        with pytest.raises(ValueError):
            DriftConfig(rejection_rate_max=1.5)
        with pytest.raises(ValueError):
            DriftConfig(distance_quantile=1.0)
        with pytest.raises(ValueError):
            DriftConfig(distance_ratio_max=1.0)
        with pytest.raises(ValueError):
            DriftConfig(baseline_observations=100, distance_window=10)
        with pytest.raises(ValueError):
            DriftConfig(min_rejection_observations=100, rejection_window=50)


class TestLatchedKinds:
    def test_reports_sorted_kinds_per_building(self):
        detector = DriftDetector(DriftConfig(vocabulary_jaccard_min=0.6,
                                             min_window_macs=1,
                                             distance_window=8,
                                             baseline_observations=4,
                                             distance_ratio_max=1.5))
        assert detector.latched_kinds("A") == ()
        trained = {f"ap-{i}" for i in range(10)}
        drifted = {f"new-{i}" for i in range(10)}
        assert detector.check_vocabulary("A", trained, drifted) is not None
        for _ in range(4):
            detector.observe_distance("A", 1.0)
        for _ in range(8):
            detector.observe_distance("A", 10.0)
        assert detector.latched_kinds("A") == (DriftKind.DISTANCE_SHIFT,
                                               DriftKind.MAC_CHURN)
        # Per-building isolation, and the registry-wide key is separate.
        assert detector.latched_kinds("B") == ()
        assert detector.latched_kinds(None) == ()
        detector.reset_building("A")
        assert detector.latched_kinds("A") == ()
