"""Retrain-scheduler tests: triggers, guards, cooldown, hot swap."""

from __future__ import annotations

from stream_helpers import FakeClock, stream_records

from repro.stream import (
    DriftEvent,
    DriftKind,
    RetrainScheduler,
    SchedulerConfig,
    WindowConfig,
    WindowManager,
)


def churn_event(building_id="bldg-A"):
    return DriftEvent(kind=DriftKind.MAC_CHURN, building_id=building_id,
                      value=0.2, threshold=0.6, detail="test")


def filled_windows(split, count=20, label_every=2):
    windows = WindowManager(config=WindowConfig(max_records=64))
    for record in stream_records(split, count, label_every=label_every):
        windows.append("bldg-A", record)
    return windows


class TestGuards:
    def test_nothing_pending_returns_none(self, fresh_service):
        service, splits = fresh_service
        scheduler = RetrainScheduler(service, WindowManager())
        assert scheduler.maybe_retrain("bldg-A") is None

    def test_small_window_skips_with_reason_but_stays_pending(
            self, fresh_service):
        service, splits = fresh_service
        windows = filled_windows(splits["bldg-A"], count=3)
        scheduler = RetrainScheduler(service, windows,
                                     SchedulerConfig(min_window_records=10))
        scheduler.note_drift(churn_event())
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and not report.swapped
        assert "window holds 3 records" in report.skipped_reason
        # The trigger stays pending (drift events latch in the detector and
        # would never re-fire) but the same guard is not re-reported.
        assert scheduler.pending == {"bldg-A": "drift:mac_churn"}
        assert scheduler.maybe_retrain("bldg-A") is None
        assert len(scheduler.history) == 1

    def test_too_few_labels_skips_with_reason(self, fresh_service):
        service, splits = fresh_service
        windows = filled_windows(splits["bldg-A"], count=12, label_every=100)
        scheduler = RetrainScheduler(
            service, windows, SchedulerConfig(min_window_records=10,
                                              min_labeled_records=2))
        scheduler.note_drift(churn_event())
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and not report.swapped
        assert "labeled records" in report.skipped_reason

    def test_guarded_drift_retrains_once_enough_labels_arrive(
            self, fresh_service):
        """Regression: a drift skipped on guards must not be lost forever."""
        service, splits = fresh_service
        windows = WindowManager(config=WindowConfig(max_records=64))
        for record in stream_records(splits["bldg-A"], 12, label_every=100):
            windows.append("bldg-A", record)
        scheduler = RetrainScheduler(
            service, windows, SchedulerConfig(min_window_records=10,
                                              min_labeled_records=2,
                                              warm_start=False))
        scheduler.note_drift(churn_event())
        assert not scheduler.maybe_retrain("bldg-A").swapped  # no labels yet
        # Labeled records trickle in later; the latched drift must still win.
        for record in stream_records(splits["bldg-A"], 4, prefix="lbl-",
                                     label_every=1):
            windows.append("bldg-A", record)
            scheduler.note_append("bldg-A")
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and report.swapped
        assert report.trigger == "drift:mac_churn"

    def test_global_drift_events_do_not_target_a_building(self, fresh_service):
        service, splits = fresh_service
        scheduler = RetrainScheduler(service, WindowManager())
        scheduler.note_drift(DriftEvent(kind=DriftKind.ROUTER_REJECTION,
                                        building_id=None, value=0.9,
                                        threshold=0.3, detail="test"))
        assert scheduler.pending == {}


class TestRetrain:
    def test_drift_trigger_retrains_and_hot_swaps(self, fresh_service):
        service, splits = fresh_service
        old_model = service.registry.model_for("bldg-A")
        windows = filled_windows(splits["bldg-A"], count=20)
        scheduler = RetrainScheduler(
            service, windows, SchedulerConfig(min_window_records=10,
                                              warm_start=False))
        scheduler.note_drift(churn_event())
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and report.swapped
        assert report.trigger == "drift:mac_churn"
        assert report.window_records == 20
        assert report.duration_seconds > 0.0
        assert service.registry.model_for("bldg-A") is not old_model
        assert scheduler.retrains_total == 1
        # The new vocabulary is the window's, installed in the router too.
        assert (service.router.vocabulary_for("bldg-A")
                == frozenset(windows.window_for("bldg-A").as_dataset("bldg-A").macs))

    def test_record_count_cadence_triggers(self, fresh_service):
        service, splits = fresh_service
        windows = filled_windows(splits["bldg-A"], count=15)
        scheduler = RetrainScheduler(
            service, windows,
            SchedulerConfig(retrain_every_records=10, min_window_records=5,
                            warm_start=False))
        for _ in range(9):
            scheduler.note_append("bldg-A")
        assert scheduler.pending == {}
        scheduler.note_append("bldg-A")
        assert scheduler.pending == {"bldg-A": "record_count"}
        report = scheduler.maybe_retrain("bldg-A")
        assert report.swapped and report.trigger == "record_count"

    def test_cooldown_keeps_trigger_pending(self, fresh_service):
        service, splits = fresh_service
        windows = filled_windows(splits["bldg-A"], count=20)
        scheduler = RetrainScheduler(
            service, windows, SchedulerConfig(min_window_records=5,
                                              cooldown_records=50,
                                              warm_start=False))
        # 20 appends so far is within the 50-record cooldown horizon.
        for _ in range(20):
            scheduler.note_append("bldg-A")
        scheduler.note_drift(churn_event())
        assert scheduler.maybe_retrain("bldg-A") is None
        assert scheduler.pending == {"bldg-A": "drift:mac_churn"}
        # Enough further appends elapse the cooldown; the retrain proceeds.
        for _ in range(31):
            scheduler.note_append("bldg-A")
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and report.swapped

    def test_cooldown_seconds_keeps_trigger_pending(self, fresh_service):
        """A quiet building must not thrash retrains on sparse bursts: the
        count-only cooldown passes immediately once enough records arrive,
        so the wall-clock guard has to hold the line in between."""
        service, splits = fresh_service
        windows = filled_windows(splits["bldg-A"], count=20)
        clock = FakeClock()
        scheduler = RetrainScheduler(
            service, windows,
            SchedulerConfig(min_window_records=5, cooldown_seconds=30.0,
                            warm_start=False),
            clock=clock)
        scheduler.note_drift(churn_event())
        assert scheduler.maybe_retrain("bldg-A").swapped  # first swap is free

        # A new drift right after the swap is held by the cooldown.
        scheduler.note_drift(churn_event())
        clock.advance(10.0)
        assert scheduler.maybe_retrain("bldg-A") is None
        assert scheduler.pending == {"bldg-A": "drift:mac_churn"}
        # Once the cooldown elapses the latched trigger fires.
        clock.advance(25.0)
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and report.swapped
        assert scheduler.retrains_total == 2

    def test_cooldown_seconds_validation(self):
        import pytest
        with pytest.raises(ValueError, match="cooldown_seconds"):
            SchedulerConfig(cooldown_seconds=0.0)
        with pytest.raises(ValueError, match="cooldown_seconds"):
            SchedulerConfig(cooldown_seconds=-1.0)

    def test_warm_start_retrain_succeeds(self, fresh_service):
        service, splits = fresh_service
        windows = filled_windows(splits["bldg-A"], count=20)
        scheduler = RetrainScheduler(
            service, windows, SchedulerConfig(min_window_records=10,
                                              warm_start=True))
        scheduler.note_drift(churn_event())
        report = scheduler.maybe_retrain("bldg-A")
        assert report.swapped
        probe = splits["bldg-A"].test_records[0].without_floor()
        assert service.predict(probe).building_id == "bldg-A"


class TestLastSwapAge:
    def test_age_tracks_the_injected_clock(self, fresh_service):
        service, splits = fresh_service
        clock = FakeClock(start=100.0)
        windows = filled_windows(splits["bldg-A"])
        scheduler = RetrainScheduler(service, windows,
                                     SchedulerConfig(min_window_records=10),
                                     clock=clock)
        assert scheduler.last_swap_age("bldg-A") is None
        scheduler.note_drift(churn_event())
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and report.swapped
        clock.advance(42.0)
        assert scheduler.last_swap_age("bldg-A") == 42.0
        # An explicit ``now`` overrides the clock read (health monitors
        # evaluate every signal at one shared instant).
        assert scheduler.last_swap_age("bldg-A", now=150.0) == 50.0
        assert scheduler.last_swap_age("never-swapped") is None
