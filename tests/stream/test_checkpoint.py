"""Checkpoint/resume tests: a killed-and-resumed pipeline replays identically."""

from __future__ import annotations

import numpy as np
import pytest

from stream_helpers import stream_records, train_service

from repro import ShardedServingService, StreamConfig
from repro.core.persistence import load_stream_state, save_stream_state
from repro.stream import (
    ContinuousLearningPipeline,
    DriftConfig,
    SchedulerConfig,
    WindowConfig,
)


def drift_config():
    return StreamConfig(window=WindowConfig(max_records=96),
                        drift=DriftConfig(vocabulary_jaccard_min=0.6),
                        scheduler=SchedulerConfig(min_window_records=48,
                                                  warm_start=True))


def churn_stream(split, count=200):
    macs = sorted({mac for record in split.test_records for mac in record.rss})
    rename = {mac: f"{mac}:v2" for mac in macs[: len(macs) // 2]}
    return stream_records(split, count, prefix="churn-", rename=rename,
                          rng_seed=1, jitter=2.0)


def summarize(results):
    """Everything observable about a stream result, prediction bytes included."""
    return [(r.record_id, r.accepted, r.building_id, r.rejected_by,
             None if r.prediction is None
             else (r.prediction.floor, r.prediction.distance,
                   r.prediction.mac_overlap),
             tuple((e.kind.value, e.building_id) for e in r.drift_events),
             r.eviction.record_ids, r.swapped)
            for r in results]


class TestResumeReplaysIdentically:
    def test_killed_and_resumed_equals_uninterrupted(self, tmp_path):
        """The acceptance bar: same retrains, same predictions, byte-level."""
        service_a, splits = train_service()
        split = splits["bldg-A"]
        steady = stream_records(split, 80, prefix="steady-", jitter=2.0)
        churn = churn_stream(split)

        uninterrupted = ContinuousLearningPipeline(service_a, drift_config())
        results_full = uninterrupted.process_stream(steady + churn)

        service_b, _ = train_service()
        interrupted = ContinuousLearningPipeline(service_b, drift_config())
        interrupted.process_stream(steady)
        interrupted.checkpoint(tmp_path / "ckpt")
        # "Kill" the node: resume from disk alone, no in-memory state reused.
        resumed = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        results_resumed = resumed.process_stream(churn)

        assert (summarize(results_resumed)
                == summarize(results_full[len(steady):]))
        # Both runs retrained (the churn is designed to drift) and the
        # models they installed are byte-identical.
        assert uninterrupted.scheduler.retrains_total == 1
        assert resumed.scheduler.retrains_total == 1
        assert np.array_equal(
            uninterrupted.service.model_for("bldg-A").embedding.ego,
            resumed.service.model_for("bldg-A").embedding.ego)

    def test_resume_restores_configs_and_counters(self, tmp_path):
        service, splits = train_service()
        pipeline = ContinuousLearningPipeline(service, drift_config())
        pipeline.process_stream(stream_records(splits["bldg-A"], 40,
                                               jitter=2.0))
        pipeline.checkpoint(tmp_path / "ckpt")
        resumed = ContinuousLearningPipeline.resume(tmp_path / "ckpt")

        assert resumed.config == pipeline.config
        assert resumed.processed_total == pipeline.processed_total
        assert resumed.ingestor.stats() == pipeline.ingestor.stats()
        assert resumed.windows.stats() == pipeline.windows.stats()
        assert resumed.drift.stats() == pipeline.drift.stats()
        assert (resumed.scheduler.stats()["pending"]
                == pipeline.scheduler.stats()["pending"])
        assert resumed.service.grafics_config == service.grafics_config

    def test_sharded_service_round_trips_through_checkpoint(self, tmp_path):
        service, splits = train_service(building_ids=("bldg-A", "bldg-B"))
        sharded = ShardedServingService(registry=service.export_registry(),
                                        num_shards=4)
        pipeline = ContinuousLearningPipeline(sharded, drift_config())
        pipeline.process_stream(stream_records(splits["bldg-A"], 30,
                                               jitter=2.0))
        pipeline.checkpoint(tmp_path / "ckpt")
        resumed = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        assert isinstance(resumed.service, ShardedServingService)
        assert resumed.service.num_shards == 4
        probes = [r.without_floor()
                  for r in splits["bldg-B"].test_records[:4]]
        assert (resumed.service.predict_batch(probes)
                == pipeline.service.predict_batch(probes))

    def test_dedup_filter_memory_survives_resume(self, tmp_path):
        """A duplicate of a pre-checkpoint record must still be rejected."""
        service, splits = train_service()
        pipeline = ContinuousLearningPipeline(service, drift_config())
        records = stream_records(splits["bldg-A"], 30, jitter=2.0)
        pipeline.process_stream(records)
        pipeline.checkpoint(tmp_path / "ckpt")
        resumed = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        replay = records[0]
        duplicate = type(replay)(record_id="dup-0", rss=dict(replay.rss),
                                 floor=replay.floor)
        result = resumed.process(duplicate)
        assert not result.accepted
        assert result.rejected_by == "near_duplicate"


class TestCheckpointFormat:
    def test_stream_state_version_is_checked(self, tmp_path):
        path = tmp_path / "state.json"
        save_stream_state({"anything": 1}, path)
        raw = path.read_text().replace('"format_version": 1',
                                       '"format_version": 99')
        path.write_text(raw)
        with pytest.raises(ValueError, match="format version"):
            load_stream_state(path)

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_stream_state(tmp_path / "nope.json")
        with pytest.raises(FileNotFoundError):
            ContinuousLearningPipeline.resume(tmp_path / "empty")

    def test_filter_chain_mismatch_is_an_error(self, tmp_path):
        service, splits = train_service()
        pipeline = ContinuousLearningPipeline(service, drift_config())
        pipeline.process_stream(stream_records(splits["bldg-A"], 10,
                                               jitter=2.0))
        pipeline.checkpoint(tmp_path / "ckpt")
        with pytest.raises(ValueError, match="filter chain"):
            ContinuousLearningPipeline.resume(tmp_path / "ckpt", filters=[])

    def test_checkpoint_with_inflight_retrain_joins_first(self, tmp_path):
        """checkpoint() must quiesce the executor, not fail or tear state."""
        config = StreamConfig(
            window=WindowConfig(max_records=96),
            drift=DriftConfig(vocabulary_jaccard_min=0.6),
            scheduler=SchedulerConfig(min_window_records=48,
                                      retrain_every_records=60,
                                      warm_start=True),
            retrain_workers=1)
        service, splits = train_service()
        pipeline = ContinuousLearningPipeline(service, config)
        swapped_during_stream = 0
        for record in stream_records(splits["bldg-A"], 70, jitter=2.0):
            result = pipeline.process(record)
            swapped_during_stream += sum(
                r.swapped for r in result.completed_retrains)
        pipeline.checkpoint(tmp_path / "ckpt")
        pipeline.close()
        total = pipeline.scheduler.retrains_total
        assert total >= 1  # the cadence retrain landed, inline or via join
        resumed = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        assert resumed.scheduler.retrains_total == total


class TestStreamConfigCodec:
    def test_invalid_retrain_sampler_mode_fails_at_construction(self):
        with pytest.raises(ValueError, match="sampler_mode"):
            StreamConfig(retrain_sampler_mode="bogus")

    def test_payload_round_trips_retrain_sampler_mode(self):
        from dataclasses import asdict

        from repro.stream.pipeline import _stream_config_from_payload

        config = StreamConfig(retrain_sampler_mode="delta")
        rebuilt = _stream_config_from_payload(asdict(config))
        assert rebuilt == config
        assert rebuilt.retrain_sampler_mode == "delta"

    def test_old_checkpoint_payload_without_key_loads(self):
        """Checkpoints written before the delta-sampler layer existed have
        no ``retrain_sampler_mode`` key; they must load with the default."""
        from dataclasses import asdict

        from repro.stream.pipeline import _stream_config_from_payload

        payload = asdict(StreamConfig())
        del payload["retrain_sampler_mode"]
        rebuilt = _stream_config_from_payload(payload)
        assert rebuilt.retrain_sampler_mode is None
