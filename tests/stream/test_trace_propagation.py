"""Trace IDs flow from the stream hot path into drift/retrain artifacts.

When observability is on, a ``stream.process`` span wraps every record;
drift events fired inside it and the retrain jobs they trigger must all
carry that trace ID, so an operator can join "this record caused this
drift caused this hot swap" across the span dump, the drift log and the
retrain reports.  When observability is off, everything stays ``None``
and the stream layer allocates nothing for tracing.
"""

from __future__ import annotations

import pytest

from stream_helpers import stream_records, train_service

from repro import ContinuousLearningPipeline, StreamConfig
from repro.obs import runtime as obs
from repro.stream import (
    DriftConfig,
    DriftKind,
    RetrainExecutor,
    SchedulerConfig,
    WindowConfig,
)

from test_continuous_pipeline import STREAM_CONFIG, churn_rename


@pytest.fixture()
def traced():
    """Observability on for the test, off afterwards (process-global)."""
    obs.enable()
    yield obs.active_tracer()
    obs.disable()


def _drive_to_swap(service, split, config=STREAM_CONFIG):
    """Stream churn traffic until the hot swap; returns (pipeline, results)."""
    pipeline = ContinuousLearningPipeline(service, config)
    results = pipeline.process_stream(
        stream_records(split, 30, prefix="p1-", jitter=2.5, label_every=2))
    for record in stream_records(split, 60, prefix="p2-", jitter=2.5,
                                 label_every=2, rng_seed=1,
                                 rename=churn_rename(split)):
        result = pipeline.process(record)
        results.append(result)
        if result.retrain is not None and result.retrain.swapped:
            return pipeline, results
    raise AssertionError("AP churn never triggered a hot swap")


class TestTracedStream:
    def test_drift_and_retrain_join_the_processing_trace(
            self, fresh_service, traced):
        service, splits = fresh_service
        pipeline, results = _drive_to_swap(service, splits["bldg-A"])

        events = [e for r in results for e in r.drift_events
                  if e.kind is DriftKind.MAC_CHURN]
        assert events and events[0].trace_id is not None

        swap = next(r for r in results
                    if r.retrain is not None and r.retrain.swapped)
        assert swap.retrain.trace_id is not None
        # The retrain rode the very stream.process trace of the record
        # that triggered it: the span dump contains both spans under it.
        names = {span.name for span in traced.spans()
                 if span.trace_id == swap.retrain.trace_id}
        assert {"stream.process", "stream.retrain"} <= names

    def test_drift_trace_survives_a_checkpoint_round_trip(
            self, fresh_service, traced):
        service, splits = fresh_service
        config = StreamConfig(
            window=WindowConfig(max_records=32),
            drift=DriftConfig(vocabulary_jaccard_min=0.6, min_window_macs=8),
            scheduler=SchedulerConfig(min_window_records=64,  # never retrain
                                      min_labeled_records=2))
        pipeline = ContinuousLearningPipeline(service, config)
        split = splits["bldg-A"]
        pipeline.process_stream(stream_records(split, 30, prefix="p1-",
                                               jitter=2.5))
        events = [e for r in pipeline.process_stream(
                      stream_records(split, 40, prefix="p2-", jitter=2.5,
                                     rng_seed=1, rename=churn_rename(split)))
                  for e in r.drift_events]
        assert events and events[0].trace_id is not None

        state = pipeline.state_dict()
        assert any(blob["trace_id"] == events[0].trace_id
                   for blob in state["drift_events"])
        restored = ContinuousLearningPipeline(service, config)
        restored.restore_state(state)
        assert events[0].trace_id in {e.trace_id
                                      for e in restored.drift_events}
        # Pre-trace checkpoints (no trace_id key) restore as None.
        for blob in state["drift_events"]:
            blob.pop("trace_id", None)
        legacy = ContinuousLearningPipeline(service, config)
        legacy.restore_state(state)
        assert all(e.trace_id is None for e in legacy.drift_events)


class TestUntracedStream:
    def test_everything_stays_none_with_observability_off(
            self, fresh_service):
        service, splits = fresh_service
        pipeline, results = _drive_to_swap(service, splits["bldg-A"])
        events = [e for r in results for e in r.drift_events]
        assert events and all(e.trace_id is None for e in events)
        swap = next(r for r in results
                    if r.retrain is not None and r.retrain.swapped)
        assert swap.retrain.trace_id is None


class TestExecutorTraceStamping:
    def test_sync_completion_carries_the_submitting_trace(
            self, fresh_service, traced):
        service, splits = fresh_service
        split = splits["bldg-A"]
        from test_executor import window_dataset
        dataset, labels = window_dataset(split)
        executor = RetrainExecutor(service, max_workers=0)
        with traced.span("driver"):
            submitting_trace = obs.current_trace_id()
            completion = executor.submit("bldg-A", dataset, labels,
                                         trigger="test")
        assert completion.swapped
        assert completion.trace_id == submitting_trace

    def test_background_completion_joins_the_submitting_trace(
            self, fresh_service, traced):
        """The worker thread has no ambient span context; the job carries
        the trace across the thread boundary instead."""
        service, splits = fresh_service
        from test_executor import window_dataset
        dataset, labels = window_dataset(splits["bldg-A"])
        executor = RetrainExecutor(service, max_workers=1)
        with traced.span("driver"):
            submitting_trace = obs.current_trace_id()
            assert executor.submit("bldg-A", dataset, labels,
                                   trigger="test") is None
        assert executor.join(timeout=60.0)
        (completion,) = executor.drain_completed()
        executor.shutdown()
        assert completion.swapped
        assert completion.trace_id == submitting_trace
        retrain_spans = [span for span in traced.spans()
                         if span.name == "stream.retrain"]
        assert [span.trace_id for span in retrain_spans] == [submitting_trace]
