"""Sliding-window graph tests: eviction, orphan pruning, bounded memory."""

from __future__ import annotations

import pytest

from repro import SignalRecord, build_graph
from repro.stream import SlidingWindowGraph, WindowConfig, WindowManager


def record(rid, rss, floor=None):
    return SignalRecord(record_id=rid, rss=rss, floor=floor)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCountBound:
    def test_append_within_bound_evicts_nothing(self):
        window = SlidingWindowGraph(WindowConfig(max_records=3))
        for i in range(3):
            eviction = window.append(record(f"r{i}", {"a": -40.0}))
            assert not eviction
        assert len(window) == 3

    def test_oldest_record_evicted_past_bound(self):
        window = SlidingWindowGraph(WindowConfig(max_records=2))
        window.append(record("r0", {"a": -40.0}))
        window.append(record("r1", {"a": -41.0}))
        eviction = window.append(record("r2", {"a": -42.0}))
        assert eviction.record_ids == ("r0",)
        assert [r.record_id for r in window.records] == ["r1", "r2"]

    def test_orphaned_macs_pruned_with_their_last_record(self):
        window = SlidingWindowGraph(WindowConfig(max_records=1))
        window.append(record("r0", {"only-r0": -40.0, "shared": -50.0}))
        eviction = window.append(record("r1", {"shared": -45.0}))
        assert eviction.record_ids == ("r0",)
        assert eviction.pruned_macs == ("only-r0",)
        assert window.mac_vocabulary == frozenset({"shared"})

    def test_duplicate_record_id_rejected(self):
        window = SlidingWindowGraph()
        window.append(record("r0", {"a": -40.0}))
        with pytest.raises(ValueError):
            window.append(record("r0", {"b": -40.0}))


class TestAgeBound:
    def test_expire_by_age(self):
        clock = FakeClock()
        window = SlidingWindowGraph(
            WindowConfig(max_records=100, max_age_seconds=10.0), clock=clock)
        window.append(record("r0", {"a": -40.0}))
        clock.now = 5.0
        window.append(record("r1", {"a": -41.0}))
        clock.now = 12.0
        eviction = window.expire()
        assert eviction.record_ids == ("r0",)
        assert [r.record_id for r in window.records] == ["r1"]

    def test_append_opportunistically_expires(self):
        clock = FakeClock()
        window = SlidingWindowGraph(
            WindowConfig(max_records=100, max_age_seconds=10.0), clock=clock)
        window.append(record("r0", {"a": -40.0}))
        clock.now = 15.0
        eviction = window.append(record("r1", {"a": -41.0}))
        assert eviction.record_ids == ("r0",)


class TestBoundedMemory:
    def test_node_count_bounded_under_10x_window_traffic(self):
        """The acceptance-criterion memory bound, at unit-test scale."""
        max_records = 25
        window = SlidingWindowGraph(WindowConfig(max_records=max_records))
        macs_per_record = 4
        for i in range(10 * max_records):
            # Rolling MAC population: APs keep being "installed"/"removed".
            rss = {f"ap-{(i + j) % 40}": -40.0 - j
                   for j in range(macs_per_record)}
            window.append(record(f"r{i}", rss))
        assert len(window) == max_records
        live_macs = set()
        for rec in window.records:
            live_macs.update(rec.rss)
        # Pruning keeps the MAC side exactly the union of live records' MACs.
        assert window.mac_vocabulary == frozenset(live_macs)
        assert window.node_count == max_records + len(live_macs)

    def test_window_graph_matches_from_scratch_rebuild(self):
        """The maintained graph equals one rebuilt from the live records."""
        window = SlidingWindowGraph(WindowConfig(max_records=10))
        for i in range(35):
            rss = {f"ap-{(i + j) % 13}": -40.0 - j for j in range(3)}
            window.append(record(f"r{i}", rss))
        rebuilt = build_graph(window.records)
        assert window.graph.num_records == rebuilt.num_records
        assert window.graph.num_macs == rebuilt.num_macs
        assert window.graph.num_edges == rebuilt.num_edges
        assert window.graph.total_weight == pytest.approx(rebuilt.total_weight)
        for rec in window.records:
            for mac in rec.rss:
                assert (window.graph.edge_weight(mac, rec.record_id)
                        == rebuilt.edge_weight(mac, rec.record_id))


class TestManager:
    def test_windows_created_on_demand_and_aggregated(self):
        manager = WindowManager(config=WindowConfig(max_records=5))
        manager.append("A", record("a0", {"x": -40.0}))
        manager.append("B", record("b0", {"y": -40.0, "z": -50.0}))
        assert set(manager.building_ids) == {"A", "B"}
        assert manager.total_records == 2
        assert manager.total_nodes == 2 + 3
        stats = manager.stats()
        assert stats["B"]["macs"] == 2

    def test_as_dataset_preserves_window_order(self):
        manager = WindowManager(config=WindowConfig(max_records=2))
        window = manager.window_for("A")
        window.append(record("r0", {"a": -40.0}))
        window.append(record("r1", {"a": -41.0}))
        window.append(record("r2", {"a": -42.0}))
        dataset = window.as_dataset("A")
        assert dataset.building_id == "A"
        assert [r.record_id for r in dataset.records] == ["r1", "r2"]

    def test_config_validated(self):
        with pytest.raises(ValueError):
            WindowConfig(max_records=0)
        with pytest.raises(ValueError):
            WindowConfig(max_age_seconds=0.0)
