"""Quality-filter tests: size, bounds, near-duplicate dedup."""

from __future__ import annotations

import pytest

from repro import SignalRecord
from repro.stream import (
    MinReadingsFilter,
    NearDuplicateFilter,
    RssBoundsFilter,
    default_filters,
)


def record(rid, rss):
    return SignalRecord(record_id=rid, rss=rss)


class TestMinReadings:
    def test_rejects_small_records(self):
        f = MinReadingsFilter(min_readings=3)
        assert f.admit(record("r", {"a": -40.0, "b": -50.0})) is not None
        assert f.admit(record("r", {"a": -40.0, "b": -50.0, "c": -60.0})) is None

    def test_validates_threshold(self):
        with pytest.raises(ValueError):
            MinReadingsFilter(min_readings=0)


class TestRssBounds:
    def test_rejects_out_of_range_readings(self):
        f = RssBoundsFilter(min_rss=-100.0, max_rss=-10.0)
        assert f.admit(record("r", {"a": -105.0})) is not None
        assert f.admit(record("r", {"a": -5.0})) is not None
        assert f.admit(record("r", {"a": -55.0})) is None

    def test_default_lower_bound_protects_weight_function(self):
        # f(RSS) = RSS + 120 must stay positive; -120 would crash add_record.
        f = RssBoundsFilter()
        assert f.admit(record("r", {"a": -120.0})) is not None
        assert f.admit(record("r", {"a": -119.0})) is None

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            RssBoundsFilter(min_rss=-10.0, max_rss=-20.0)


class TestNearDuplicate:
    def test_quantised_duplicates_rejected(self):
        f = NearDuplicateFilter(capacity=8, quantum=1.0)
        assert f.admit(record("r1", {"a": -40.0, "b": -60.0})) is None
        # Sub-quantum noise maps to the same fingerprint.
        assert f.admit(record("r2", {"a": -40.3, "b": -59.8})) is not None
        # A genuinely different fingerprint passes.
        assert f.admit(record("r3", {"a": -48.0, "b": -60.0})) is None

    def test_record_id_does_not_participate(self):
        f = NearDuplicateFilter()
        assert f.admit(record("x", {"a": -40.0})) is None
        assert f.admit(record("y", {"a": -40.0})) is not None

    def test_lru_capacity_forgets_old_fingerprints(self):
        f = NearDuplicateFilter(capacity=2)
        assert f.admit(record("r1", {"a": -40.0})) is None
        assert f.admit(record("r2", {"a": -50.0})) is None
        assert f.admit(record("r3", {"a": -60.0})) is None  # evicts r1's key
        assert f.admit(record("r4", {"a": -40.0})) is None  # forgotten → passes

    def test_reset_clears_memory(self):
        f = NearDuplicateFilter()
        assert f.admit(record("r1", {"a": -40.0})) is None
        f.reset()
        assert f.admit(record("r2", {"a": -40.0})) is None

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            NearDuplicateFilter(capacity=0)
        with pytest.raises(ValueError):
            NearDuplicateFilter(quantum=0.0)


def test_default_chain_order_and_names():
    chain = default_filters()
    assert [f.name for f in chain] == ["min_readings", "rss_bounds",
                                       "near_duplicate"]
