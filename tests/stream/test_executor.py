"""Retrain-executor tests: sync/async equivalence, fencing, error handling."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from stream_helpers import FakeClock, stream_records, train_service

from repro.stream import (
    RetrainExecutor,
    RetrainScheduler,
    SchedulerConfig,
    WindowConfig,
    WindowManager,
)


def window_dataset(split, count=24, label_every=2):
    windows = WindowManager(config=WindowConfig(max_records=64))
    for record in stream_records(split, count, label_every=label_every):
        windows.append("bldg-A", record)
    window = windows.window_for("bldg-A")
    labels = {r.record_id: r.floor for r in window.records
              if r.floor is not None}
    return window.as_dataset("bldg-A"), labels


class TestSynchronousExecution:
    def test_inline_submit_installs_and_reports(self, fresh_service):
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        executor = RetrainExecutor(service, max_workers=0)
        assert executor.synchronous
        old_model = service.model_for("bldg-A")
        completion = executor.submit("bldg-A", dataset, labels,
                                     trigger="drift:mac_churn")
        assert completion is not None and completion.swapped
        assert not completion.stale
        assert completion.duration_seconds > 0.0
        assert service.model_for("bldg-A") is not old_model
        assert executor.generation("bldg-A") == 1

    def test_negative_workers_rejected(self, fresh_service):
        service, _ = fresh_service
        with pytest.raises(ValueError, match="max_workers"):
            RetrainExecutor(service, max_workers=-1)


class TestAsyncEquivalence:
    def test_background_install_equals_synchronous_install(
            self, fresh_service):
        """The async path must produce the same installed model as sync."""
        service_a, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])

        sync = RetrainExecutor(service_a, max_workers=0)
        sync.submit("bldg-A", dataset, labels, trigger="t", warm_start=True)

        service_b, _ = train_service()
        background = RetrainExecutor(service_b, max_workers=2)
        assert background.submit("bldg-A", dataset, labels, trigger="t",
                                 warm_start=True) is None
        assert background.join(timeout=60.0)
        completions = background.drain_completed()
        background.shutdown()
        assert len(completions) == 1 and completions[0].swapped

        model_a = service_a.model_for("bldg-A")
        model_b = service_b.model_for("bldg-A")
        assert np.array_equal(model_a.embedding.ego, model_b.embedding.ego)
        probes = [r.without_floor() for r in splits["bldg-A"].test_records[:5]]
        assert (service_a.predict_batch(probes)
                == service_b.predict_batch(probes))


class TestGenerationFencing:
    def test_stale_result_never_overwrites_newer_install(self, fresh_service):
        """A swap prepared against generation G must not clobber G+1."""
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])

        release_slow = threading.Event()
        started_slow = threading.Event()
        executor = RetrainExecutor(service, max_workers=2)
        default_train = executor._train

        def gated_train(job, previous):
            if job.trigger == "slow":
                started_slow.set()
                assert release_slow.wait(timeout=60.0)
            return default_train(job, previous)

        executor._train = gated_train
        # Job A snapshots generation 0 and blocks inside its fit.
        executor.submit("bldg-A", dataset, labels, trigger="slow")
        assert started_slow.wait(timeout=60.0)
        # Job B (also generation 0) trains and installs first -> generation 1.
        executor.submit("bldg-A", dataset, labels, trigger="fast")
        while not any(c.trigger == "fast"
                      for c in executor.drain_completed()):
            pass
        model_after_fast = service.model_for("bldg-A")
        assert executor.generation("bldg-A") == 1

        release_slow.set()
        assert executor.join(timeout=60.0)
        completions = executor.drain_completed()
        executor.shutdown()
        assert len(completions) == 1
        slow = completions[0]
        assert slow.trigger == "slow" and slow.stale and not slow.swapped
        # The fenced-out result must not have touched the installed model.
        assert service.model_for("bldg-A") is model_after_fast
        assert executor.generation("bldg-A") == 1
        assert executor.stale_total == 1

    def test_each_install_bumps_generation(self, fresh_service):
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        executor = RetrainExecutor(service, max_workers=0)
        for expected in (1, 2, 3):
            executor.submit("bldg-A", dataset, labels, trigger="t")
            assert executor.generation("bldg-A") == expected

    def test_invalidate_fences_out_inflight_retrain(self, fresh_service):
        """An operator's manual install must not be overwritten by a retrain
        that was already in flight when the operator acted."""
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        release = threading.Event()
        started = threading.Event()
        executor = RetrainExecutor(service, max_workers=1)
        default_train = executor._train

        def gated_train(job, previous):
            started.set()
            assert release.wait(timeout=60.0)
            return default_train(job, previous)

        executor._train = gated_train
        executor.submit("bldg-A", dataset, labels, trigger="t")
        assert started.wait(timeout=60.0)

        # Operator rolls the building back manually and fences the executor.
        manual_model = service.model_for("bldg-A")
        service.install_building("bldg-A", manual_model)
        assert executor.invalidate("bldg-A") == 1

        release.set()
        assert executor.join(timeout=60.0)
        completions = executor.drain_completed()
        executor.shutdown()
        assert len(completions) == 1
        assert completions[0].stale and not completions[0].swapped
        assert service.model_for("bldg-A") is manual_model


class TestErrorHandling:
    def test_failed_background_fit_surfaces_as_completion(self,
                                                          fresh_service):
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        executor = RetrainExecutor(
            service, max_workers=1,
            train=lambda job, previous: (_ for _ in ()).throw(
                ValueError("boom")))
        executor.submit("bldg-A", dataset, labels, trigger="t")
        assert executor.join(timeout=60.0)
        completions = executor.drain_completed()
        executor.shutdown()
        assert len(completions) == 1
        assert not completions[0].swapped
        assert "boom" in completions[0].error
        assert executor.errors_total == 1
        assert service.telemetry.counter("retrain_errors_total") == 1

    def test_failed_synchronous_fit_repends_without_raising(
            self, fresh_service):
        """The default inline executor must match the async failure path:
        report the failure, keep the latched trigger pending, don't raise
        out of the ingest loop."""
        service, splits = fresh_service
        windows = WindowManager(config=WindowConfig(max_records=64))
        for record in stream_records(splits["bldg-A"], 24, label_every=2):
            windows.append("bldg-A", record)
        executor = RetrainExecutor(
            service, max_workers=0,
            train=lambda job, previous: (_ for _ in ()).throw(
                ValueError("boom")))
        scheduler = RetrainScheduler(
            service, windows, SchedulerConfig(min_window_records=10),
            executor=executor)
        scheduler._pending["bldg-A"] = "drift:mac_churn"
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and not report.swapped
        assert "boom" in report.skipped_reason
        assert scheduler.pending == {"bldg-A": "drift:mac_churn"}
        assert scheduler.retrains_total == 0

    def test_failed_retrain_repends_trigger_in_scheduler(self, fresh_service):
        service, splits = fresh_service
        windows = WindowManager(config=WindowConfig(max_records=64))
        for record in stream_records(splits["bldg-A"], 24, label_every=2):
            windows.append("bldg-A", record)
        executor = RetrainExecutor(
            service, max_workers=1,
            train=lambda job, previous: (_ for _ in ()).throw(
                ValueError("boom")))
        scheduler = RetrainScheduler(
            service, windows, SchedulerConfig(min_window_records=10),
            executor=executor)
        scheduler._pending["bldg-A"] = "drift:mac_churn"
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and report.submitted
        assert executor.join(timeout=60.0)
        reports = scheduler.collect()
        executor.shutdown()
        assert len(reports) == 1 and not reports[0].swapped
        assert "boom" in reports[0].skipped_reason
        # The drift is still latched in the detector; losing the trigger
        # would mean the building never retrains.
        assert scheduler.pending == {"bldg-A": "drift:mac_churn"}


class TestGauges:
    def test_pending_gauge_tracks_queue(self, fresh_service):
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        release = threading.Event()
        started = threading.Event()
        executor = RetrainExecutor(service, max_workers=1)
        default_train = executor._train

        def gated_train(job, previous):
            started.set()
            assert release.wait(timeout=60.0)
            return default_train(job, previous)

        executor._train = gated_train
        executor.submit("bldg-A", dataset, labels, trigger="t")
        assert started.wait(timeout=60.0)
        assert executor.pending_count == 1
        assert service.telemetry.gauge("retrains_pending") == 1
        release.set()
        assert executor.join(timeout=60.0)
        executor.drain_completed()
        executor.shutdown()
        assert service.telemetry.gauge("retrains_pending") == 0


class TestJoinTimeoutSemantics:
    def test_join_times_out_while_a_job_is_in_flight(self, fresh_service):
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        release = threading.Event()
        started = threading.Event()
        executor = RetrainExecutor(service, max_workers=1)
        default_train = executor._train

        def gated_train(job, previous):
            started.set()
            assert release.wait(timeout=60.0)
            return default_train(job, previous)

        executor._train = gated_train
        executor.submit("bldg-A", dataset, labels, trigger="t")
        assert started.wait(timeout=60.0)
        # The job is parked inside its fit: a bounded join must give up
        # and say so, not block the caller (checkpoint(), close()) forever.
        assert executor.join(timeout=0.05) is False
        assert executor.pending_count == 1
        release.set()
        assert executor.join(timeout=60.0) is True
        executor.drain_completed()
        executor.shutdown()

    def test_join_on_idle_executor_returns_immediately(self, fresh_service):
        service, _ = fresh_service
        executor = RetrainExecutor(service, max_workers=1)
        assert executor.join(timeout=0.0) is True
        executor.shutdown()

    def test_join_on_synchronous_executor_is_trivially_true(
            self, fresh_service):
        service, _ = fresh_service
        assert RetrainExecutor(service, max_workers=0).join(timeout=0.0)


class TestRetryAfterFailure:
    def test_retry_installs_under_the_generation_snapshotted_at_submit(
            self, fresh_service):
        """A failed fit must not burn a generation: the retry snapshots the
        same generation the failed attempt held and its install lands."""
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        executor = RetrainExecutor(service, max_workers=0)
        default_train = executor._train
        calls = {"n": 0}

        def flaky_train(job, previous):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("injected first-attempt failure")
            return default_train(job, previous)

        executor._train = flaky_train
        old_model = service.model_for("bldg-A")
        with pytest.raises(ValueError, match="first-attempt"):
            executor.submit("bldg-A", dataset, labels, trigger="t")
        assert executor.errors_total == 1
        assert executor.generation("bldg-A") == 0  # failure bumped nothing
        assert service.model_for("bldg-A") is old_model

        completion = executor.submit("bldg-A", dataset, labels, trigger="t")
        assert completion is not None and completion.swapped
        assert completion.generation == 0   # the fence token it was checked by
        assert executor.generation("bldg-A") == 1
        assert service.model_for("bldg-A") is not old_model


class TestFitDeadline:
    def test_overrunning_fit_is_abandoned_not_installed(self, fresh_service):
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        clock = FakeClock()
        executor = RetrainExecutor(service, max_workers=0, clock=clock,
                                   fit_deadline_seconds=5.0)
        default_train = executor._train

        def slow_train(job, previous):
            clock.advance(12.0)  # three slides past the 5 s budget
            return default_train(job, previous)

        executor._train = slow_train
        old_model = service.model_for("bldg-A")
        completion = executor.submit("bldg-A", dataset, labels, trigger="t")
        assert completion is not None and not completion.swapped
        assert "deadline" in completion.error
        assert executor.deadline_exceeded_total == 1
        assert (service.telemetry.counter("retrain_deadline_exceeded_total")
                == 1)
        # The runaway result was abandoned under the fence, never installed.
        assert service.model_for("bldg-A") is old_model
        assert executor.generation("bldg-A") == 0

    def test_fit_within_budget_installs(self, fresh_service):
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        clock = FakeClock()
        executor = RetrainExecutor(service, max_workers=0, clock=clock,
                                   fit_deadline_seconds=5.0)
        completion = executor.submit("bldg-A", dataset, labels, trigger="t")
        assert completion is not None and completion.swapped

    def test_non_positive_deadline_rejected(self, fresh_service):
        service, _ = fresh_service
        with pytest.raises(ValueError, match="fit_deadline_seconds"):
            RetrainExecutor(service, fit_deadline_seconds=0.0)


class TestSamplerModeOverride:
    def test_invalid_sampler_mode_rejected(self, fresh_service):
        service, _ = fresh_service
        with pytest.raises(ValueError, match="sampler_mode"):
            RetrainExecutor(service, sampler_mode="bogus")

    def test_sampler_mode_recorded_on_swapped_model(self, fresh_service):
        """An executor-level mode override must survive onto the model that
        serves after the swap — that is how a stream deployment opts its
        retrained buildings into the delta cold path."""
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        executor = RetrainExecutor(service, sampler_mode="delta")
        completion = executor.submit("bldg-A", dataset, labels,
                                     trigger="drift:mac_churn")
        assert completion is not None and completion.swapped
        assert service.model_for("bldg-A").config.sampler_mode == "delta"

    def test_default_keeps_service_mode(self, fresh_service):
        service, splits = fresh_service
        dataset, labels = window_dataset(splits["bldg-A"])
        executor = RetrainExecutor(service)
        executor.submit("bldg-A", dataset, labels, trigger="drift:mac_churn")
        assert service.model_for("bldg-A").config.sampler_mode is None
