"""Ingestor tests: filter chain wiring, attribution, buffers, stats."""

from __future__ import annotations

import pytest

from repro import SignalRecord, UnknownEnvironmentError
from repro.stream import MinReadingsFilter, StreamIngestor


def record(rid, rss):
    return SignalRecord(record_id=rid, rss=rss)


def attribute_by_prefix(rec):
    mac = next(iter(rec.rss))
    if mac.startswith("a-"):
        return "A"
    raise UnknownEnvironmentError(f"record {rec.record_id!r} matches nothing")


class TestSubmit:
    def test_rejection_reports_stage_and_reason(self):
        ingestor = StreamIngestor(filters=[MinReadingsFilter(min_readings=2)])
        decision = ingestor.submit(record("r", {"a-1": -40.0}), building_id="A")
        assert not decision.accepted
        assert decision.filter_name == "min_readings"
        assert "fewer than" in decision.reason
        assert ingestor.rejected_by_filter == {"min_readings": 1}

    def test_explicit_building_bypasses_attribution(self):
        ingestor = StreamIngestor(filters=[])
        decision = ingestor.submit(record("r", {"x": -40.0}), building_id="B")
        assert decision.accepted and decision.building_id == "B"

    def test_attribution_function_used_when_no_building_given(self):
        ingestor = StreamIngestor(attribute=attribute_by_prefix, filters=[])
        decision = ingestor.submit(record("r", {"a-1": -40.0}))
        assert decision.accepted and decision.building_id == "A"

    def test_unroutable_counted_not_raised(self):
        ingestor = StreamIngestor(attribute=attribute_by_prefix, filters=[])
        decision = ingestor.submit(record("r", {"z-1": -40.0}))
        assert not decision.accepted
        assert decision.filter_name == "router"
        assert ingestor.unroutable_total == 1

    def test_missing_attribution_is_a_programming_error(self):
        ingestor = StreamIngestor(filters=[])
        with pytest.raises(ValueError):
            ingestor.submit(record("r", {"x": -40.0}))


class TestBuffers:
    def test_drain_returns_fifo_and_empties(self):
        ingestor = StreamIngestor(filters=[])
        for i in range(3):
            ingestor.submit(record(f"r{i}", {"x": -40.0 - i}), building_id="A")
        assert ingestor.buffered_by_building() == {"A": 3}
        drained = ingestor.drain("A")
        assert [r.record_id for r in drained] == ["r0", "r1", "r2"]
        assert ingestor.buffered_count == 0
        assert ingestor.drain("A") == []

    def test_overflow_drops_oldest_and_counts(self):
        ingestor = StreamIngestor(filters=[], buffer_capacity=2)
        for i in range(4):
            ingestor.submit(record(f"r{i}", {"x": -40.0 - i}), building_id="A")
        assert ingestor.overflow_total == 2
        assert [r.record_id for r in ingestor.drain("A")] == ["r2", "r3"]

    def test_drain_all_keyed_by_building(self):
        ingestor = StreamIngestor(filters=[])
        ingestor.submit(record("a", {"x": -40.0}), building_id="A")
        ingestor.submit(record("b", {"y": -40.0}), building_id="B")
        drained = ingestor.drain_all()
        assert {k: [r.record_id for r in v] for k, v in drained.items()} == \
            {"A": ["a"], "B": ["b"]}
        assert ingestor.buffered_count == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            StreamIngestor(buffer_capacity=0)


def test_stats_shape():
    ingestor = StreamIngestor(attribute=attribute_by_prefix,
                              filters=[MinReadingsFilter(min_readings=2)])
    ingestor.submit(record("ok", {"a-1": -40.0, "a-2": -50.0}))
    ingestor.submit(record("small", {"a-1": -40.0}))
    ingestor.submit(record("lost", {"z-1": -40.0, "z-2": -50.0}))
    stats = ingestor.stats()
    assert stats["submitted"] == 3
    assert stats["accepted"] == 1
    assert stats["unroutable"] == 1
    assert stats["rejected_by_filter"] == {"min_readings": 1}
    assert stats["buffered"] == 1
