"""End-to-end continuous learning: churn → drift → retrain → hot swap.

This is the subsystem's acceptance test: a synthetic campus streams
records, one building's APs churn mid-stream, the drift detector fires,
the scheduler retrains from the sliding window and atomically hot-swaps
the model — and the swapped-in model is *byte-identical* to a freshly
trained offline model on the same window (determinism is preserved through
the whole streaming stack).  A second test pins the bounded-memory claim
under 10x window-length traffic.
"""

from __future__ import annotations

import numpy as np
import pytest
from stream_helpers import FAST_CONFIG, stream_records

from repro import GRAFICS, ContinuousLearningPipeline, StreamConfig
from repro.stream import (
    DriftConfig,
    DriftKind,
    SchedulerConfig,
    WindowConfig,
)

WINDOW = 32

STREAM_CONFIG = StreamConfig(
    window=WindowConfig(max_records=WINDOW),
    drift=DriftConfig(vocabulary_jaccard_min=0.6, min_window_macs=8),
    scheduler=SchedulerConfig(min_window_records=16, min_labeled_records=2,
                              warm_start=False))


def churn_rename(split):
    """Rename half the trained MACs, modelling AP replacement."""
    macs = sorted({mac for record in split.test_records for mac in record.rss})
    return {mac: f"{mac}-new" for mac in macs[: len(macs) // 2]}


class TestChurnRetrainSwap:
    @pytest.fixture()
    def swapped_pipeline(self, fresh_service):
        """Stream until the churn-triggered hot swap happens, then stop."""
        service, splits = fresh_service
        split = splits["bldg-A"]
        pipeline = ContinuousLearningPipeline(service, STREAM_CONFIG)

        phase1 = stream_records(split, 30, prefix="p1-", jitter=2.5,
                                label_every=2)
        phase2 = stream_records(split, 60, prefix="p2-", jitter=2.5,
                                label_every=2, rng_seed=1,
                                rename=churn_rename(split))
        results = pipeline.process_stream(phase1)
        assert not any(r.swapped for r in results)

        swap_result = None
        for record in phase2:
            result = pipeline.process(record)
            results.append(result)
            if result.swapped:
                swap_result = result
                break
        assert swap_result is not None, "AP churn never triggered a hot swap"
        return service, split, pipeline, results, swap_result

    def test_drift_fires_and_triggers_the_swap(self, swapped_pipeline):
        service, split, pipeline, results, swap_result = swapped_pipeline
        churn_events = [e for r in results for e in r.drift_events
                        if e.kind is DriftKind.MAC_CHURN]
        assert churn_events, "vocabulary churn was never detected"
        assert churn_events[0].building_id == "bldg-A"
        assert swap_result.retrain.trigger == "drift:mac_churn"
        assert swap_result.retrain.window_records >= 16
        assert service.telemetry.counter("stream_retrains_total") == 1
        assert service.telemetry.counter("hot_swaps_total") == 1

    def test_post_swap_model_is_byte_identical_to_offline_fit(
            self, swapped_pipeline):
        """Determinism: streaming retrain == offline training on the window."""
        service, split, pipeline, results, swap_result = swapped_pipeline
        window = pipeline.windows.window_for("bldg-A")
        dataset = window.as_dataset("bldg-A")
        labels = {r.record_id: r.floor for r in dataset.records
                  if r.floor is not None}

        offline = GRAFICS(FAST_CONFIG).fit(dataset, labels)
        installed = service.registry.model_for("bldg-A")
        assert np.array_equal(installed.embedding.ego, offline.embedding.ego)
        assert np.array_equal(installed.embedding.context,
                              offline.embedding.context)

        probes = stream_records(split, 8, prefix="probe-", jitter=2.5,
                                rng_seed=2, label_every=10 ** 6,
                                rename=churn_rename(split))
        for probe in probes:
            served = service.predict(probe)
            reference = offline.predict(probe)
            assert served.building_id == "bldg-A"
            assert served.floor == reference.floor
            assert served.distance == reference.distance  # bit-exact

    def test_changed_vocabulary_routes_correctly_immediately(
            self, swapped_pipeline):
        """Right after the swap the router must know the new MAC vocabulary."""
        service, split, pipeline, results, swap_result = swapped_pipeline
        rename = churn_rename(split)
        new_only = {f"{mac}-new": -50.0 for mac in list(rename)[:5]}
        from repro import SignalRecord
        probe = SignalRecord(record_id="new-macs-only", rss=new_only)
        decision = service.router.route(probe)
        assert decision.building_id == "bldg-A"
        assert decision.overlap == 1.0

    def test_cache_was_invalidated_by_the_swap(self, swapped_pipeline):
        service, split, pipeline, results, swap_result = swapped_pipeline
        assert service.cache.invalidations > 0


class TestUnroutableTraffic:
    def test_outside_records_are_rejected_not_raised(self, fresh_service):
        service, splits = fresh_service
        pipeline = ContinuousLearningPipeline(service, STREAM_CONFIG)
        from repro import SignalRecord
        outside = SignalRecord(record_id="outside",
                               rss={f"alien-{i}": -60.0 for i in range(5)})
        result = pipeline.process(outside)
        assert not result.accepted
        assert result.rejected_by == "router"
        assert pipeline.ingestor.unroutable_total == 1


class TestStreamRobustness:
    def test_duplicate_record_id_is_rejected_not_raised(self, fresh_service):
        """Regression: a client retry with a fresh scan must not crash."""
        service, splits = fresh_service
        pipeline = ContinuousLearningPipeline(service, STREAM_CONFIG)
        base = splits["bldg-A"].test_records[0]
        from repro import SignalRecord
        first = SignalRecord(record_id="retry-me", rss=dict(base.rss))
        # Same id, RSS shifted past the dedup quantum: passes every filter.
        second = SignalRecord(record_id="retry-me",
                              rss={m: v + 7.0 for m, v in base.rss.items()})
        assert pipeline.process(first).accepted
        result = pipeline.process(second)
        assert not result.accepted
        assert result.rejected_by == "window"
        assert "already in the window" in result.reason
        assert service.telemetry.counter(
            "stream_rejected_duplicate_id_total") == 1
        assert len(pipeline.windows.window_for("bldg-A")) == 1

    def test_explicit_unknown_building_accumulates_without_crashing(
            self, fresh_service):
        """Regression: bootstrapping a not-yet-trained building must work."""
        service, splits = fresh_service
        pipeline = ContinuousLearningPipeline(service, STREAM_CONFIG)
        records = stream_records(splits["bldg-A"], 30, prefix="boot-",
                                 jitter=2.5)
        results = [pipeline.process(record, building_id="brand-new")
                   for record in records]
        # Past vocabulary_warmup_records there is no trained vocabulary to
        # drift against; the window must keep accumulating regardless.
        assert all(r.accepted for r in results)
        assert len(pipeline.windows.window_for("brand-new")) == 30


class TestBoundedMemory:
    def test_graph_nodes_bounded_under_10x_window_traffic(self, fresh_service):
        """Acceptance criterion: memory stays bounded under unbounded traffic."""
        service, splits = fresh_service
        config = StreamConfig(
            window=WindowConfig(max_records=WINDOW),
            drift=DriftConfig(vocabulary_jaccard_min=0.05, min_window_macs=8),
            predict=False)  # pure ingest/window/drift path
        pipeline = ContinuousLearningPipeline(service, config)

        records = stream_records(splits["bldg-A"], 10 * WINDOW, jitter=2.5,
                                 label_every=10 ** 6)
        results = pipeline.process_stream(records)
        accepted = sum(r.accepted for r in results)
        assert accepted >= 5 * WINDOW  # dedup drops some, most flow through

        window = pipeline.windows.window_for("bldg-A")
        assert len(window) == WINDOW
        assert window.graph.num_records == WINDOW
        live_macs = set()
        for record in window.records:
            live_macs.update(record.rss)
        assert window.mac_vocabulary == frozenset(live_macs)
        assert window.node_count == WINDOW + len(live_macs)
        assert window.evicted_total == accepted - WINDOW
        gauges = service.telemetry.snapshot()["gauges"]
        assert gauges["stream_window_records"] == WINDOW


class TestReplayFromJsonl:
    def test_pipeline_replays_a_jsonl_corpus(self, fresh_service, tmp_path):
        """iter_jsonl → pipeline: the streaming replay path works end to end."""
        from repro.data import iter_jsonl, save_jsonl

        service, splits = fresh_service
        split = splits["bldg-A"]
        records = stream_records(split, 12, prefix="replay-", jitter=2.5)
        from repro import FingerprintDataset
        corpus = FingerprintDataset(records=records, building_id="bldg-A")
        path = tmp_path / "corpus.jsonl"
        save_jsonl(corpus, path)

        pipeline = ContinuousLearningPipeline(service, STREAM_CONFIG)
        results = [pipeline.process(record) for record in iter_jsonl(path)]
        assert sum(r.accepted for r in results) >= 10
        assert all(r.building_id == "bldg-A" for r in results if r.accepted)
