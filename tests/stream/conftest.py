"""Shared fixtures for the streaming/continuous-learning tests."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from stream_helpers import train_service  # noqa: E402


@pytest.fixture()
def fresh_service():
    """A freshly trained one-building service (mutable per test)."""
    return train_service()
