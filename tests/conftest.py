"""Shared fixtures for the test suite.

Expensive artefacts (synthetic building, trained GRAFICS model) are session
scoped so the many tests that need "some trained model" share one instance.
"""

from __future__ import annotations

import pytest

from repro import GRAFICS, GraficsConfig, EmbeddingConfig, SignalRecord
from repro.core.types import FingerprintDataset
from repro.data import make_experiment_split, small_test_building


def make_record(record_id: str, rss: dict[str, float], floor: int | None = None,
                **kwargs) -> SignalRecord:
    """Convenience constructor used across test modules."""
    return SignalRecord(record_id=record_id, rss=rss, floor=floor, **kwargs)


@pytest.fixture(scope="session")
def tiny_records() -> list[SignalRecord]:
    """Six hand-written records on two 'floors' with partially shared MACs."""
    return [
        make_record("a0", {"m1": -50.0, "m2": -60.0}, floor=0),
        make_record("a1", {"m2": -55.0, "m3": -65.0}, floor=0),
        make_record("a2", {"m1": -52.0, "m3": -70.0}, floor=0),
        make_record("b0", {"m4": -48.0, "m5": -58.0}, floor=1),
        make_record("b1", {"m5": -62.0, "m6": -72.0}, floor=1),
        make_record("b2", {"m4": -51.0, "m6": -66.0}, floor=1),
    ]


@pytest.fixture(scope="session")
def tiny_dataset(tiny_records) -> FingerprintDataset:
    return FingerprintDataset(records=list(tiny_records), building_id="tiny")


@pytest.fixture(scope="session")
def small_building() -> FingerprintDataset:
    """A small synthetic three-floor building (fast to embed and cluster)."""
    return small_test_building(num_floors=3, records_per_floor=50,
                               aps_per_floor=25, seed=11)


@pytest.fixture(scope="session")
def small_split(small_building):
    """The paper's protocol applied to the small building (4 labels/floor)."""
    return make_experiment_split(small_building, train_ratio=0.7,
                                 labels_per_floor=4, seed=0)


@pytest.fixture(scope="session")
def fast_config() -> GraficsConfig:
    """A GRAFICS configuration tuned for test speed, not accuracy."""
    return GraficsConfig(
        embedding=EmbeddingConfig(samples_per_edge=60.0, batch_size=256, seed=0))


@pytest.fixture(scope="session")
def trained_grafics(small_split, fast_config) -> GRAFICS:
    """A GRAFICS model trained once and shared by read-only tests."""
    model = GRAFICS(fast_config)
    model.fit(list(small_split.train_records), small_split.labels)
    return model
