"""Tests for the Sequential container and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    MeanSquaredError,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    Tanh,
    train_network,
)


def make_classification_data(count=200, seed=0):
    """Two interleaved 2-D Gaussian classes (linearly separable with margin)."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=[-2.0, 0.0], scale=0.5, size=(count // 2, 2))
    x1 = rng.normal(loc=[2.0, 0.0], scale=0.5, size=(count // 2, 2))
    inputs = np.vstack([x0, x1])
    targets = np.array([0] * (count // 2) + [1] * (count // 2))
    return inputs, targets


class TestSequential:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_forward_composes_layers(self):
        rng = np.random.default_rng(0)
        dense = Dense(2, 3, rng=rng)
        network = Sequential([dense, ReLU()])
        x = rng.normal(size=(4, 2))
        expected = np.maximum(dense.forward(x), 0.0)
        np.testing.assert_allclose(network.forward(x), expected)

    def test_parameters_collected_from_all_layers(self):
        network = Sequential([Dense(2, 3), ReLU(), Dense(3, 1)])
        assert len(network.parameters()) == 4

    def test_nested_sequential(self):
        inner = Sequential([Dense(2, 4), Tanh()])
        outer = Sequential([inner, Dense(4, 2)])
        assert len(outer.parameters()) == 4
        assert outer.forward(np.zeros((1, 2))).shape == (1, 2)

    def test_predict_helpers(self):
        network = Sequential([Dense(2, 3, rng=np.random.default_rng(0))])
        x = np.zeros((5, 2))
        assert network.predict(x).shape == (5, 3)
        assert network.predict_classes(x).shape == (5,)
        proba = network.predict_proba(x)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(5))


class TestTrainNetwork:
    def test_input_validation(self):
        network = Sequential([Dense(2, 2)])
        with pytest.raises(ValueError):
            train_network(network, MeanSquaredError(), np.zeros((3, 2)),
                          np.zeros((4, 2)))
        with pytest.raises(ValueError):
            train_network(network, MeanSquaredError(), np.zeros((3, 2)),
                          np.zeros((3, 2)), epochs=0)

    def test_classification_reaches_high_accuracy(self):
        inputs, targets = make_classification_data()
        rng = np.random.default_rng(1)
        network = Sequential([Dense(2, 16, rng=rng), ReLU(),
                              Dense(16, 2, rng=rng)])
        history = train_network(network, SoftmaxCrossEntropy(), inputs, targets,
                                epochs=40, batch_size=16, seed=0)
        predictions = network.predict_classes(inputs)
        assert np.mean(predictions == targets) > 0.95
        assert history.train_loss[-1] < history.train_loss[0]

    def test_autoencoder_reconstruction_improves(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(120, 10))
        network = Sequential([Dense(10, 4, rng=rng), Tanh(),
                              Dense(4, 10, rng=rng)])
        loss = MeanSquaredError()
        initial = loss.value(network.predict(data), data)
        history = train_network(network, loss, data, data, epochs=60,
                                batch_size=20,
                                optimizer=Adam(network.parameters(),
                                               learning_rate=5e-3),
                                seed=0)
        final = loss.value(network.predict(data), data)
        assert final < initial * 0.8
        assert history.final_loss == history.train_loss[-1]

    def test_validation_loss_tracked(self):
        inputs, targets = make_classification_data(count=80)
        network = Sequential([Dense(2, 4, rng=np.random.default_rng(0)), ReLU(),
                              Dense(4, 2, rng=np.random.default_rng(1))])
        history = train_network(network, SoftmaxCrossEntropy(), inputs, targets,
                                epochs=5, validation=(inputs, targets), seed=0)
        assert len(history.validation_loss) == 5

    def test_history_requires_epochs(self):
        from repro.nn.network import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().final_loss
