"""Tests for the NumPy neural-network layers, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Conv1D, Dense, Dropout, Flatten, ReLU, Sigmoid, Tanh


def numerical_gradient(function, array, epsilon=1e-6):
    """Central-difference gradient of a scalar function w.r.t. an array."""
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = function()
        flat[i] = original - epsilon
        minus = function()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad


class TestDense:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dense(0, 4)
        layer = Dense(3, 4)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 5)))

    def test_forward_linear(self):
        layer = Dense(2, 3, rng=np.random.default_rng(0))
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.value + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_backward_requires_training_forward(self):
        layer = Dense(2, 2)
        layer.forward(np.zeros((1, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_gradient_check(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss():
            out = layer.forward(x, training=True)
            return 0.5 * np.sum((out - target) ** 2)

        out = layer.forward(x, training=True)
        grad_out = out - target
        layer.weight.zero_grad()
        layer.bias.zero_grad()
        grad_input = layer.backward(grad_out)

        np.testing.assert_allclose(
            layer.weight.grad, numerical_gradient(loss, layer.weight.value),
            atol=1e-5)
        np.testing.assert_allclose(
            layer.bias.grad, numerical_gradient(loss, layer.bias.value),
            atol=1e-5)
        np.testing.assert_allclose(grad_input, numerical_gradient(loss, x),
                                   atol=1e-5)


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh])
    def test_gradient_check(self, layer_cls):
        rng = np.random.default_rng(2)
        layer = layer_cls()
        x = rng.normal(size=(4, 6))
        target = rng.normal(size=(4, 6))

        def loss():
            return 0.5 * np.sum((layer.forward(x, training=True) - target) ** 2)

        out = layer.forward(x, training=True)
        grad_input = layer.backward(out - target)
        np.testing.assert_allclose(grad_input, numerical_gradient(loss, x),
                                   atol=1e-5)

    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_sigmoid_range(self):
        out = Sigmoid().forward(np.array([[-100.0, 0.0, 100.0]]))
        assert out[0, 0] < 1e-6
        assert out[0, 1] == pytest.approx(0.5)
        assert out[0, 2] > 1 - 1e-6

    def test_backward_before_forward_raises(self):
        for layer in (ReLU(), Sigmoid(), Tanh(), Flatten()):
            with pytest.raises(RuntimeError):
                layer.backward(np.zeros((1, 2)))


class TestDropout:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_inference_is_identity(self):
        layer = Dropout(0.5)
        x = np.ones((3, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_preserves_expectation(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200, 50))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        assert np.any(out == 0.0)

    def test_backward_masks_gradient(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)


class TestFlatten:
    def test_round_trip(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 4, 3)
        out = layer.forward(x, training=True)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


class TestConv1D:
    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            Conv1D(1, 2, kernel_size=2)

    def test_input_validation(self):
        layer = Conv1D(2, 3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 5, 4)))

    def test_output_shape_same_padding(self):
        layer = Conv1D(2, 5, kernel_size=3, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((4, 11, 2)))
        assert out.shape == (4, 11, 5)

    def test_matches_manual_convolution(self):
        layer = Conv1D(1, 1, kernel_size=3, rng=np.random.default_rng(0))
        layer.weight.value[:] = np.array([1.0, 2.0, 3.0]).reshape(3, 1, 1)
        layer.bias.value[:] = 0.5
        x = np.array([[[1.0], [2.0], [3.0]]])
        out = layer.forward(x)
        # position 0: 0*1 + 1*2 + 2*3 + 0.5 ; position 1: 1*1 + 2*2 + 3*3 + 0.5
        np.testing.assert_allclose(out[0, :, 0], [8.5, 14.5, 8.5])

    def test_gradient_check(self):
        rng = np.random.default_rng(3)
        layer = Conv1D(2, 3, kernel_size=3, rng=rng)
        x = rng.normal(size=(2, 6, 2))
        target = rng.normal(size=(2, 6, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x, training=True) - target) ** 2)

        out = layer.forward(x, training=True)
        layer.weight.zero_grad()
        layer.bias.zero_grad()
        grad_input = layer.backward(out - target)

        np.testing.assert_allclose(
            layer.weight.grad, numerical_gradient(loss, layer.weight.value),
            atol=1e-5)
        np.testing.assert_allclose(
            layer.bias.grad, numerical_gradient(loss, layer.bias.value),
            atol=1e-5)
        np.testing.assert_allclose(grad_input, numerical_gradient(loss, x),
                                   atol=1e-5)
