"""Tests for losses, optimisers and initialisers of the NN substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    MeanSquaredError,
    Parameter,
    SGD,
    SoftmaxCrossEntropy,
    glorot_uniform,
    he_uniform,
    softmax,
    zeros,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestMeanSquaredError:
    def test_value(self):
        loss = MeanSquaredError()
        assert loss.value(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]])) == \
            pytest.approx(2.5)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        loss = MeanSquaredError()
        predictions = rng.normal(size=(3, 4))
        targets = rng.normal(size=(3, 4))
        grad = loss.gradient(predictions, targets)
        eps = 1e-6
        numerical = np.zeros_like(predictions)
        for i in np.ndindex(predictions.shape):
            p = predictions.copy()
            p[i] += eps
            plus = loss.value(p, targets)
            p[i] -= 2 * eps
            minus = loss.value(p, targets)
            numerical[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad, numerical, atol=1e-6)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.value(logits, np.array([0, 1])) < 1e-3

    def test_uniform_prediction_log_n(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 3))
        assert loss.value(logits, np.array([0, 1, 2, 0])) == pytest.approx(np.log(3))

    def test_target_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.value(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(ValueError):
            loss.value(np.zeros((2, 3)), np.array([0, 3]))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(5, 4))
        targets = np.array([0, 1, 2, 3, 1])
        grad = loss.gradient(logits.copy(), targets)
        eps = 1e-6
        numerical = np.zeros_like(logits)
        for i in np.ndindex(logits.shape):
            p = logits.copy()
            p[i] += eps
            plus = loss.value(p, targets)
            p = logits.copy()
            p[i] -= eps
            minus = loss.value(p, targets)
            numerical[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad, numerical, atol=1e-5)


def quadratic_problem():
    """A parameter whose loss is ||value - target||^2 for optimiser tests."""
    target = np.array([1.0, -2.0, 3.0])
    parameter = Parameter(np.zeros(3))

    def step_gradient():
        parameter.zero_grad()
        parameter.grad += 2.0 * (parameter.value - target)

    return parameter, target, step_gradient


class TestOptimizers:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([])

    @pytest.mark.parametrize("factory", [
        lambda p: SGD([p], learning_rate=0.1),
        lambda p: SGD([p], learning_rate=0.05, momentum=0.9),
        lambda p: Adam([p], learning_rate=0.2),
    ])
    def test_converges_on_quadratic(self, factory):
        parameter, target, compute_grad = quadratic_problem()
        optimizer = factory(parameter)
        for _ in range(200):
            compute_grad()
            optimizer.step()
        np.testing.assert_allclose(parameter.value, target, atol=1e-2)

    def test_sgd_hyperparameter_validation(self):
        parameter = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            SGD([parameter], learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD([parameter], momentum=1.0)

    def test_adam_hyperparameter_validation(self):
        parameter = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            Adam([parameter], learning_rate=0.0)
        with pytest.raises(ValueError):
            Adam([parameter], beta1=1.0)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.array([10.0]))
        optimizer = SGD([parameter], learning_rate=0.1, weight_decay=0.5)
        parameter.zero_grad()
        optimizer.step()
        assert parameter.value[0] < 10.0

    def test_zero_grad(self):
        parameter = Parameter(np.zeros(3))
        parameter.grad += 5.0
        optimizer = SGD([parameter], learning_rate=0.1)
        optimizer.zero_grad()
        np.testing.assert_array_equal(parameter.grad, np.zeros(3))


class TestInitializers:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        assert glorot_uniform((3, 4), rng).shape == (3, 4)
        assert he_uniform((3, 4), rng).shape == (3, 4)
        assert zeros((5,), rng).shape == (5,)

    def test_glorot_bounds(self):
        rng = np.random.default_rng(0)
        values = glorot_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(values).max() <= limit

    def test_conv_fan_computation(self):
        rng = np.random.default_rng(0)
        values = he_uniform((3, 4, 8), rng)
        assert values.shape == (3, 4, 8)
        assert np.abs(values).max() <= np.sqrt(6.0 / 12)
