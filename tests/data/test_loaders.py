"""Tests for the dataset loaders and writers."""

from __future__ import annotations

import pytest

from repro.core.types import FingerprintDataset, SignalRecord
from repro.data.loaders import (
    iter_jsonl,
    load_jsonl,
    load_long_csv,
    load_wide_csv,
    save_jsonl,
    save_wide_csv,
)


@pytest.fixture()
def dataset():
    records = [
        SignalRecord(record_id="r1", rss={"WAP001": -45.0, "WAP002": -60.0},
                     floor=0, device="d1", timestamp=1.5),
        SignalRecord(record_id="r2", rss={"WAP002": -55.0, "WAP003": -70.0},
                     floor=2),
        SignalRecord(record_id="r3", rss={"WAP001": -48.0}),
    ]
    return FingerprintDataset(records=records, building_id="loader-test",
                              floor_names={0: "G", 2: "2F"},
                              metadata={"source": "unit-test"})


class TestJsonl:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        save_jsonl(dataset, path)
        loaded = load_jsonl(path)
        assert loaded.building_id == "loader-test"
        assert loaded.floor_names == {0: "G", 2: "2F"}
        assert loaded.metadata["source"] == "unit-test"
        assert len(loaded) == 3
        for original, restored in zip(dataset, loaded):
            assert restored.record_id == original.record_id
            assert restored.rss == original.rss
            assert restored.floor == original.floor
            assert restored.device == original.device

    def test_blank_lines_ignored(self, dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        save_jsonl(dataset, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_jsonl(path)) == 3

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "record", "record_id": "r1"\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_jsonl(path)

    def test_unknown_row_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown row type"):
            load_jsonl(path)


class TestIterJsonl:
    def test_streams_records_lazily(self, dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        save_jsonl(dataset, path)
        iterator = iter_jsonl(path)
        first = next(iterator)
        assert first.record_id == "r1"
        assert first.rss == dataset[0].rss
        rest = list(iterator)
        assert [r.record_id for r in rest] == ["r2", "r3"]

    def test_header_callback_and_skip(self, dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        save_jsonl(dataset, path)
        header: dict = {}
        records = list(iter_jsonl(path, on_header=header.update))
        assert header["building_id"] == "loader-test"
        assert len(records) == 3
        # Without a callback the header row is silently skipped.
        assert len(list(iter_jsonl(path))) == 3

    def test_headerless_file_accepted(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text('{"type": "record", "record_id": "x", '
                        '"rss": {"a": -40.0}}\n')
        records = list(iter_jsonl(path))
        assert len(records) == 1 and records[0].floor is None

    def test_load_jsonl_reuses_streaming_parser(self, dataset, tmp_path):
        """load_jsonl is a thin materialisation of iter_jsonl."""
        path = tmp_path / "data.jsonl"
        save_jsonl(dataset, path)
        streamed = list(iter_jsonl(path))
        loaded = load_jsonl(path)
        assert [r.record_id for r in streamed] == \
            [r.record_id for r in loaded.records]
        assert all(s.rss == m.rss for s, m in zip(streamed, loaded.records))

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "record"\n')
        with pytest.raises(ValueError, match="broken.jsonl:1"):
            list(iter_jsonl(path))


class TestWideCsv:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "wide.csv"
        save_wide_csv(dataset, path)
        loaded = load_wide_csv(path, record_id_column="RECORD_ID")
        assert len(loaded) == 3
        by_id = {r.record_id: r for r in loaded}
        assert by_id["r1"].rss == dataset[0].rss
        assert by_id["r1"].floor == 0
        assert by_id["r3"].floor is None

    def test_not_detected_sentinel_skipped(self, tmp_path):
        path = tmp_path / "uji.csv"
        path.write_text("WAP001,WAP002,FLOOR\n-50,100,1\n100,-70,2\n")
        loaded = load_wide_csv(path)
        assert loaded[0].rss == {"WAP001": -50.0}
        assert loaded[1].rss == {"WAP002": -70.0}
        assert loaded[0].floor == 1

    def test_rows_with_no_detections_dropped(self, tmp_path):
        path = tmp_path / "sparse.csv"
        path.write_text("WAP001,FLOOR\n100,1\n-60,0\n")
        loaded = load_wide_csv(path)
        assert len(loaded) == 1

    def test_missing_ap_columns(self, tmp_path):
        path = tmp_path / "noaps.csv"
        path.write_text("FOO,FLOOR\n1,2\n")
        with pytest.raises(ValueError, match="no AP columns"):
            load_wide_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty CSV"):
            load_wide_csv(path)


class TestLongCsv:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "long.csv"
        path.write_text(
            "record_id,mac,rss,floor\n"
            "r1,aa,-50,1\n"
            "r1,bb,-60,\n"
            "r2,aa,-55,0\n")
        loaded = load_long_csv(path)
        assert len(loaded) == 2
        by_id = {r.record_id: r for r in loaded}
        assert by_id["r1"].rss == {"aa": -50.0, "bb": -60.0}
        assert by_id["r1"].floor == 1
        assert by_id["r2"].floor == 0

    def test_conflicting_floors_rejected(self, tmp_path):
        path = tmp_path / "conflict.csv"
        path.write_text(
            "record_id,mac,rss,floor\n"
            "r1,aa,-50,1\n"
            "r1,bb,-60,2\n")
        with pytest.raises(ValueError, match="conflicting floors"):
            load_long_csv(path)

    def test_custom_column_names(self, tmp_path):
        path = tmp_path / "custom.csv"
        path.write_text("rid,bssid,level,storey\nx,aa,-40,3\n")
        loaded = load_long_csv(path, record_column="rid", mac_column="bssid",
                               rss_column="level", floor_column="storey")
        assert loaded[0].record_id == "x"
        assert loaded[0].floor == 3
