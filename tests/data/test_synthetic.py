"""Tests for the synthetic crowdsourced dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    AccessPoint,
    BuildingSpec,
    DevicePopulation,
    SyntheticBuilding,
    generate_building,
)


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_floors": 0},
        {"aps_per_floor": 0},
        {"records_per_floor": 0},
        {"ap_churn_fraction": 1.5},
    ])
    def test_building_spec(self, kwargs):
        with pytest.raises(ValueError):
            BuildingSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"num_devices": 0},
        {"max_macs_low": 0},
        {"max_macs_low": 10, "max_macs_high": 5},
        {"detection_probability_low": 0.0},
        {"detection_probability_low": 0.9, "detection_probability_high": 0.5},
    ])
    def test_device_population(self, kwargs):
        with pytest.raises(ValueError):
            DevicePopulation(**kwargs)

    def test_area(self):
        assert BuildingSpec(width_m=50.0, depth_m=20.0).area_m2 == 1000.0


class TestAccessPoint:
    def test_activity_window(self):
        ap = AccessPoint(mac="m", floor=0, x=0, y=0, z=0,
                         installed_at=0.2, removed_at=0.8)
        assert not ap.is_active(0.1)
        assert ap.is_active(0.5)
        assert not ap.is_active(0.9)

    def test_never_removed(self):
        ap = AccessPoint(mac="m", floor=0, x=0, y=0, z=0)
        assert ap.is_active(0.0) and ap.is_active(1.0)


@pytest.fixture(scope="module")
def small_spec():
    return BuildingSpec(building_id="gen-test", num_floors=3, width_m=40.0,
                        depth_m=25.0, aps_per_floor=15, records_per_floor=30,
                        devices=DevicePopulation(num_devices=8))


class TestGeneration:
    def test_record_counts_and_floors(self, small_spec):
        dataset = generate_building(small_spec, seed=0)
        assert len(dataset) == 3 * 30
        assert dataset.floors == [0, 1, 2]
        for floor in range(3):
            assert len(dataset.records_on_floor(floor)) == 30

    def test_every_record_nonempty_and_within_vocab(self, small_spec):
        building = SyntheticBuilding(small_spec, seed=0)
        dataset = building.generate()
        macs = {ap.mac for ap in building.access_points}
        for record in dataset:
            assert len(record) >= 1
            assert set(record.rss) <= macs
            assert all(v < 0 for v in record.rss.values())
            assert record.device is not None
            assert 0.0 <= record.timestamp <= 1.0

    def test_deterministic_given_seed(self, small_spec):
        a = generate_building(small_spec, seed=5)
        b = generate_building(small_spec, seed=5)
        assert [r.record_id for r in a] == [r.record_id for r in b]
        assert all(ra.rss == rb.rss for ra, rb in zip(a, b))

    def test_different_seeds_differ(self, small_spec):
        a = generate_building(small_spec, seed=1)
        b = generate_building(small_spec, seed=2)
        assert any(ra.rss != rb.rss for ra, rb in zip(a, b))

    def test_scan_cap_respected(self):
        spec = BuildingSpec(building_id="cap", num_floors=1, width_m=20.0,
                            depth_m=20.0, aps_per_floor=60, records_per_floor=40,
                            devices=DevicePopulation(num_devices=5,
                                                     max_macs_low=5,
                                                     max_macs_high=10,
                                                     detection_probability_low=0.95,
                                                     detection_probability_high=1.0))
        dataset = generate_building(spec, seed=0)
        assert max(len(r) for r in dataset) <= 10

    def test_metadata_populated(self, small_spec):
        dataset = generate_building(small_spec, seed=0)
        assert dataset.metadata["synthetic"] is True
        assert dataset.metadata["num_floors"] == 3
        assert dataset.metadata["area_m2"] == small_spec.area_m2
        assert dataset.building_id == "gen-test"
        assert dataset.floor_names[0] == "F1"

    def test_ap_churn_creates_inactive_windows(self):
        spec = BuildingSpec(building_id="churn", num_floors=2,
                            aps_per_floor=20, records_per_floor=10,
                            ap_churn_fraction=0.5)
        building = SyntheticBuilding(spec, seed=0)
        churned = [ap for ap in building.access_points
                   if ap.installed_at > 0 or ap.removed_at is not None]
        assert len(churned) == 2 * 10  # half of the APs on each floor

    def test_floor_signal_is_informative(self, small_spec):
        """Records should observe mostly same-floor APs (floor attenuation)."""
        building = SyntheticBuilding(small_spec, seed=0)
        dataset = building.generate()
        ap_floor = {ap.mac: ap.floor for ap in building.access_points}
        same_floor_fraction = np.mean([
            np.mean([ap_floor[m] == r.floor for m in r.rss]) for r in dataset])
        chance = 1.0 / small_spec.num_floors
        assert same_floor_fraction > chance + 0.1

    def test_device_heterogeneity_affects_record_sizes(self):
        spec = BuildingSpec(building_id="devices", num_floors=1, width_m=30.0,
                            depth_m=30.0, aps_per_floor=40,
                            records_per_floor=200,
                            devices=DevicePopulation(num_devices=20))
        dataset = generate_building(spec, seed=3)
        sizes_by_device: dict[str, list[int]] = {}
        for record in dataset:
            sizes_by_device.setdefault(record.device, []).append(len(record))
        means = [np.mean(sizes) for sizes in sizes_by_device.values()
                 if len(sizes) >= 5]
        assert max(means) - min(means) > 2.0
