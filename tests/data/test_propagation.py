"""Tests for the multi-floor propagation model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.propagation import PropagationModel, PropagationParameters


class TestParameters:
    @pytest.mark.parametrize("kwargs", [
        {"path_loss_exponent": 0.0},
        {"floor_attenuation_db": -1.0},
        {"horizontal_attenuation_db_per_m": -0.1},
        {"shadowing_sigma_db": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PropagationParameters(**kwargs)


class TestMeanRSS:
    def test_decreases_with_distance(self):
        model = PropagationModel()
        distances = np.array([1.0, 5.0, 20.0, 60.0])
        rss = model.mean_rss(distances, np.zeros(4))
        assert np.all(np.diff(rss) < 0)

    def test_decreases_with_floor_difference(self):
        model = PropagationModel()
        rss = model.mean_rss(np.full(4, 10.0), np.array([0, 1, 2, 3]),
                             horizontal_distance_m=np.full(4, 10.0))
        assert np.all(np.diff(rss) < 0)
        params = model.parameters
        assert rss[0] - rss[1] == pytest.approx(params.floor_attenuation_db)

    def test_reference_value(self):
        params = PropagationParameters(tx_power_dbm=18.0, reference_loss_db=40.0,
                                       path_loss_exponent=3.0,
                                       horizontal_attenuation_db_per_m=0.0)
        model = PropagationModel(params)
        assert model.mean_rss(np.array([1.0]), np.array([0]))[0] == pytest.approx(-22.0)
        assert model.mean_rss(np.array([10.0]), np.array([0]))[0] == pytest.approx(-52.0)

    def test_horizontal_attenuation_term(self):
        params = PropagationParameters(horizontal_attenuation_db_per_m=0.5)
        model = PropagationModel(params)
        near = model.mean_rss(np.array([10.0]), np.array([0]),
                              horizontal_distance_m=np.array([0.0]))[0]
        far = model.mean_rss(np.array([10.0]), np.array([0]),
                             horizontal_distance_m=np.array([20.0]))[0]
        assert near - far == pytest.approx(10.0)

    def test_sub_metre_distances_clamped(self):
        model = PropagationModel()
        close = model.mean_rss(np.array([0.01]), np.array([0]))
        at_one = model.mean_rss(np.array([1.0]), np.array([0]))
        assert close[0] == pytest.approx(at_one[0])


class TestSampling:
    def test_shadowing_adds_variance(self):
        model = PropagationModel(PropagationParameters(shadowing_sigma_db=6.0))
        rng = np.random.default_rng(0)
        samples = model.sample_rss(np.full(5000, 10.0), np.zeros(5000), rng)
        assert samples.std() == pytest.approx(6.0, rel=0.1)

    def test_device_bias_shifts_mean(self):
        model = PropagationModel(PropagationParameters(shadowing_sigma_db=0.0))
        rng = np.random.default_rng(0)
        base = model.sample_rss(np.array([10.0]), np.array([0]), rng)
        biased = model.sample_rss(np.array([10.0]), np.array([0]), rng,
                                  device_bias_db=7.0)
        assert biased[0] - base[0] == pytest.approx(7.0)

    def test_detectability_threshold(self):
        model = PropagationModel(PropagationParameters(noise_floor_dbm=-95.0))
        rss = np.array([-94.0, -95.0, -96.0])
        np.testing.assert_array_equal(model.is_detectable(rss),
                                      [True, True, False])
        np.testing.assert_array_equal(
            model.is_detectable(rss, sensitivity_offset_db=0.5),
            [True, False, False])
