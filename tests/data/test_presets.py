"""Tests for the dataset presets mirroring the paper's corpora."""

from __future__ import annotations

import pytest

from repro.data.presets import (
    dense_mall_floor,
    hong_kong_like_buildings,
    microsoft_like_campus,
    small_test_building,
    three_story_campus_building,
)


class TestMicrosoftLikeCampus:
    def test_building_count_and_heterogeneity(self):
        datasets = microsoft_like_campus(num_buildings=4, records_per_floor=10,
                                         seed=0)
        assert len(datasets) == 4
        floor_counts = {len(d.floors) for d in datasets}
        assert all(2 <= len(d.floors) <= 12 for d in datasets)
        assert len(floor_counts) >= 2  # heterogeneous heights
        assert len({d.building_id for d in datasets}) == 4

    def test_deterministic(self):
        a = microsoft_like_campus(num_buildings=2, records_per_floor=5, seed=3)
        b = microsoft_like_campus(num_buildings=2, records_per_floor=5, seed=3)
        assert [r.rss for r in a[0]][:5] == [r.rss for r in b[0]][:5]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            microsoft_like_campus(num_buildings=0)


class TestHongKongLikeBuildings:
    def test_five_facilities(self):
        datasets = hong_kong_like_buildings(records_per_floor=5, seed=1)
        assert len(datasets) == 5
        ids = {d.building_id for d in datasets}
        assert ids == {"hk-office-a", "hk-office-b", "hk-hospital",
                       "hk-mall-a", "hk-mall-b"}
        by_id = {d.building_id: d for d in datasets}
        assert len(by_id["hk-office-a"].floors) == 10
        assert len(by_id["hk-mall-a"].floors) == 4


class TestSingleBuildingPresets:
    def test_three_story_campus(self):
        dataset = three_story_campus_building(records_per_floor=20)
        assert dataset.floors == [0, 1, 2]
        assert len(dataset) == 60

    def test_dense_mall_floor_statistics(self):
        dataset = dense_mall_floor(num_records=300, num_aps=120, seed=3)
        assert len(dataset.floors) == 1
        assert len(dataset) == 300
        assert len(dataset.macs) > 60
        # Records are sparse relative to the floor's MAC vocabulary (Fig. 1a).
        mean_size = sum(len(r) for r in dataset) / len(dataset)
        assert mean_size < 0.5 * len(dataset.macs)

    def test_small_test_building_is_small(self):
        dataset = small_test_building(num_floors=2, records_per_floor=10,
                                      aps_per_floor=8)
        assert len(dataset) == 20
        assert len(dataset.macs) <= 16
