"""Tests for train/test splitting and label-budget sampling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import FingerprintDataset, SignalRecord
from repro.data.splits import (
    make_experiment_split,
    sample_labels,
    subsample_macs,
    train_test_split,
)


def build_dataset(per_floor=20, floors=3, macs_per_floor=5):
    records = []
    for floor in range(floors):
        for i in range(per_floor):
            rss = {f"f{floor}-m{j}": -50.0 - j for j in range(macs_per_floor)}
            records.append(SignalRecord(record_id=f"f{floor}-r{i}", rss=rss,
                                        floor=floor))
    return FingerprintDataset(records=records, building_id="split-test")


class TestTrainTestSplit:
    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            train_test_split(build_dataset(), train_ratio=1.0)

    def test_partition_is_disjoint_and_complete(self):
        dataset = build_dataset()
        train, test = train_test_split(dataset, train_ratio=0.7, seed=0)
        train_ids = {r.record_id for r in train}
        test_ids = {r.record_id for r in test}
        assert not train_ids & test_ids
        assert train_ids | test_ids == {r.record_id for r in dataset}

    def test_stratification_keeps_floors_in_both_parts(self):
        dataset = build_dataset(per_floor=10, floors=4)
        train, test = train_test_split(dataset, train_ratio=0.7, seed=1)
        assert {r.floor for r in train} == {0, 1, 2, 3}
        assert {r.floor for r in test} == {0, 1, 2, 3}

    def test_ratio_approximately_respected(self):
        dataset = build_dataset(per_floor=100, floors=2)
        train, test = train_test_split(dataset, train_ratio=0.7, seed=2)
        assert len(train) == pytest.approx(140, abs=2)
        assert len(test) == pytest.approx(60, abs=2)

    def test_unstratified_split(self):
        dataset = build_dataset(per_floor=10, floors=2)
        train, test = train_test_split(dataset, train_ratio=0.5, seed=0,
                                       stratify_by_floor=False)
        assert len(train) + len(test) == 20

    def test_deterministic_given_seed(self):
        dataset = build_dataset()
        first = train_test_split(dataset, seed=5)
        second = train_test_split(dataset, seed=5)
        assert [r.record_id for r in first[0]] == [r.record_id for r in second[0]]

    def test_empty_dataset(self):
        train, test = train_test_split(FingerprintDataset(), seed=0)
        assert train == [] and test == []


class TestSampleLabels:
    def test_budget_respected_per_floor(self):
        dataset = build_dataset(per_floor=20, floors=3)
        labels = sample_labels(list(dataset), labels_per_floor=4, seed=0)
        assert len(labels) == 12
        per_floor = {}
        for rid, floor in labels.items():
            per_floor.setdefault(floor, []).append(rid)
        assert all(len(v) == 4 for v in per_floor.values())

    def test_labels_match_ground_truth(self):
        dataset = build_dataset()
        labels = sample_labels(list(dataset), labels_per_floor=2, seed=0)
        truth = {r.record_id: r.floor for r in dataset}
        assert all(truth[rid] == floor for rid, floor in labels.items())

    def test_budget_larger_than_floor(self):
        dataset = build_dataset(per_floor=3, floors=2)
        labels = sample_labels(list(dataset), labels_per_floor=10, seed=0)
        assert len(labels) == 6

    def test_requires_ground_truth(self):
        records = [SignalRecord(record_id="r", rss={"a": -40.0})]
        with pytest.raises(ValueError):
            sample_labels(records, labels_per_floor=1)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            sample_labels(list(build_dataset()), labels_per_floor=0)


class TestSubsampleMacs:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            subsample_macs(build_dataset(), 0.0)

    def test_full_fraction_returns_same_dataset(self):
        dataset = build_dataset()
        assert subsample_macs(dataset, 1.0) is dataset

    def test_fraction_reduces_vocabulary(self):
        dataset = build_dataset(macs_per_floor=10)
        reduced = subsample_macs(dataset, 0.4, seed=0)
        assert len(reduced.macs) == pytest.approx(0.4 * len(dataset.macs), abs=1)
        assert set(reduced.macs) <= set(dataset.macs)

    def test_empty_records_dropped(self):
        dataset = build_dataset(macs_per_floor=2)
        reduced = subsample_macs(dataset, 0.2, seed=1)
        assert all(len(r) >= 1 for r in reduced)


class TestMakeExperimentSplit:
    def test_protocol_fields(self):
        dataset = build_dataset(per_floor=20, floors=3)
        split = make_experiment_split(dataset, train_ratio=0.7,
                                      labels_per_floor=4, seed=0)
        assert split.num_labeled == 12
        train_ids = {r.record_id for r in split.train_records}
        assert set(split.labels) <= train_ids
        assert not train_ids & {r.record_id for r in split.test_records}
        assert set(split.test_ground_truth().values()) == {0, 1, 2}

    def test_mac_fraction_applied(self):
        dataset = build_dataset(macs_per_floor=10)
        split = make_experiment_split(dataset, mac_fraction=0.3, seed=0)
        observed_macs = {m for r in split.train_records for m in r.rss}
        observed_macs |= {m for r in split.test_records for m in r.rss}
        assert len(observed_macs) <= 0.4 * 30

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_labels_always_within_training(self, floors, budget, seed):
        dataset = build_dataset(per_floor=8, floors=floors)
        split = make_experiment_split(dataset, labels_per_floor=budget, seed=seed)
        train_ids = {r.record_id for r in split.train_records}
        assert set(split.labels) <= train_ids
        labels_per_floor: dict[int, int] = {}
        for floor in split.labels.values():
            labels_per_floor[floor] = labels_per_floor.get(floor, 0) + 1
        assert all(v <= budget for v in labels_per_floor.values())
