"""Tests for dataset statistics (paper Fig. 1 and Fig. 9)."""

from __future__ import annotations

import pytest

from repro.core.types import FingerprintDataset, SignalRecord
from repro.data.stats import (
    EmpiricalCDF,
    building_summary,
    overlap_ratio_cdf,
    record_size_cdf,
    summarize_corpus,
)


def record(rid, macs, floor=None):
    return SignalRecord(record_id=rid, rss={m: -50.0 for m in macs}, floor=floor)


class TestEmpiricalCDF:
    def test_requires_observations(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(())

    def test_evaluate(self):
        cdf = EmpiricalCDF((1.0, 2.0, 3.0, 4.0))
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(2.0) == 0.5
        assert cdf.evaluate(10.0) == 1.0

    def test_quantiles_and_moments(self):
        cdf = EmpiricalCDF((1.0, 2.0, 3.0, 4.0))
        assert cdf.median == pytest.approx(2.5)
        assert cdf.mean == pytest.approx(2.5)
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_as_curve_monotone(self):
        cdf = EmpiricalCDF(tuple(float(x) for x in range(10)))
        curve = cdf.as_curve(points=20)
        ys = [y for _, y in curve]
        assert ys == sorted(ys)
        assert ys[-1] == 1.0


class TestRecordSizeCDF:
    def test_counts_macs_per_record(self):
        records = [record("r1", ["a"]), record("r2", ["a", "b", "c"])]
        cdf = record_size_cdf(records)
        assert cdf.values == (1.0, 3.0)

    def test_accepts_dataset(self, tiny_dataset):
        assert record_size_cdf(tiny_dataset).mean == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            record_size_cdf([])


class TestOverlapRatioCDF:
    def test_exact_enumeration(self):
        records = [record("r1", ["a", "b"]), record("r2", ["b", "c"]),
                   record("r3", ["x", "y"])]
        cdf = overlap_ratio_cdf(records)
        assert len(cdf.values) == 3
        assert max(cdf.values) == pytest.approx(1.0 / 3.0)
        assert min(cdf.values) == 0.0

    def test_sampled_when_too_many_pairs(self):
        records = [record(f"r{i}", [f"m{i % 7}", f"m{(i + 1) % 7}"])
                   for i in range(60)]
        cdf = overlap_ratio_cdf(records, max_pairs=100, seed=0)
        assert len(cdf.values) == 100
        assert all(0.0 <= v <= 1.0 for v in cdf.values)

    def test_needs_two_records(self):
        with pytest.raises(ValueError):
            overlap_ratio_cdf([record("r1", ["a"])])


class TestBuildingSummary:
    def test_single_building(self):
        dataset = FingerprintDataset(
            records=[record("r1", ["a", "b"], floor=0),
                     record("r2", ["b", "c"], floor=2)],
            building_id="b1", metadata={"area_m2": 1200.0})
        summary = building_summary(dataset)
        assert summary.building_id == "b1"
        assert summary.num_floors == 2
        assert summary.num_macs == 3
        assert summary.num_records == 2
        assert summary.area_m2 == 1200.0
        assert summary.as_row()["floors"] == 2

    def test_missing_area(self):
        dataset = FingerprintDataset(records=[record("r1", ["a"], floor=0)])
        assert building_summary(dataset).area_m2 is None

    def test_corpus_sorted_by_floors(self):
        tall = FingerprintDataset(
            records=[record(f"r{f}", ["a"], floor=f) for f in range(5)],
            building_id="tall")
        short = FingerprintDataset(
            records=[record(f"r{f}", ["a"], floor=f) for f in range(2)],
            building_id="short")
        summaries = summarize_corpus([tall, short])
        assert [s.building_id for s in summaries] == ["short", "tall"]
