"""Shared fixtures for the serving-subsystem tests.

The two-building registry is expensive (two GRAFICS trainings), so it is
session scoped and treated as read-only; tests that need to mutate a
registry (hot swap, eviction) clone it via
``serving_helpers.clone_registry``, which shares the trained models but not
the registration bookkeeping.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from serving_helpers import FakeClock  # noqa: E402

from repro import GraficsConfig, EmbeddingConfig  # noqa: E402
from repro.core.registry import MultiBuildingFloorService  # noqa: E402
from repro.data import make_experiment_split, small_test_building  # noqa: E402


@pytest.fixture()
def fake_clock() -> FakeClock:
    return FakeClock()


@pytest.fixture(scope="session")
def serving_corpus():
    """Two trained buildings plus their held-out probes and training data."""
    config = GraficsConfig(
        embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0))
    registry = MultiBuildingFloorService(config)
    held_out = {}
    training = {}
    for building_id, seed in (("bldg-north", 41), ("bldg-south", 42)):
        dataset = small_test_building(num_floors=3, records_per_floor=40,
                                      aps_per_floor=20, seed=seed,
                                      building_id=building_id)
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        registry.fit_building(dataset.subset(split.train_records), split.labels)
        held_out[building_id] = [r.without_floor() for r in split.test_records]
        training[building_id] = (dataset.subset(split.train_records),
                                 split.labels)
    return registry, held_out, training
