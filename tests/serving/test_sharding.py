"""Sharded-serving tests: placement, routing equality, byte-identical serving."""

from __future__ import annotations

import pytest

from serving_helpers import FakeClock, clone_registry, interleaved_probes

from repro import SignalRecord
from repro.core.inference import UnknownEnvironmentError
from repro.serving import (
    FloorServingService,
    MacInvertedRouter,
    ServingConfig,
    ShardedServingService,
    shard_index,
)


def sharded_service(registry, num_shards=4, clock=None, **config_kwargs):
    return ShardedServingService(registry=clone_registry(registry),
                                 config=ServingConfig(**config_kwargs),
                                 num_shards=num_shards,
                                 clock=clock or FakeClock())


def one_lock_service(registry, clock=None, **config_kwargs):
    return FloorServingService(registry=clone_registry(registry),
                               config=ServingConfig(**config_kwargs),
                               clock=clock or FakeClock())


class TestPlacement:
    def test_shard_index_is_stable_and_in_range(self):
        for n in (1, 2, 4, 7):
            for building_id in ("bldg-north", "bldg-south", "x", ""):
                index = shard_index(building_id, n)
                assert 0 <= index < n
                assert index == shard_index(building_id, n)  # deterministic

    def test_shard_index_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_index("bldg", 0)

    def test_buildings_distribute_across_shards(self, serving_corpus):
        registry, _, _ = serving_corpus
        service = sharded_service(registry, num_shards=4)
        placed = {b: service.shard_for(b).index for b in service.building_ids}
        assert set(placed) == set(registry.building_ids)
        for building_id, index in placed.items():
            assert building_id in service.shards[index].registry.building_ids
            for shard in service.shards:
                if shard.index != index:
                    assert building_id not in shard.registry.building_ids


class TestRoutingEquality:
    def test_sharded_router_matches_single_router(self, serving_corpus):
        registry, held_out, _ = serving_corpus
        service = sharded_service(registry, num_shards=3)
        reference = MacInvertedRouter.from_vocabularies(
            registry.vocabularies, min_overlap=registry.min_overlap)
        probes = interleaved_probes(held_out, per_building=10)
        assert (service.router.route_batch(probes)
                == reference.route_batch(probes))

    def test_tie_break_uses_global_registration_order(self):
        """Equal overlaps must fall to the earliest-registered building,
        even when the candidates live on different shards."""
        num_shards = 4
        first, second = "tie-a", "tie-b"
        assert shard_index(first, num_shards) != shard_index(second, num_shards)
        routers = {}
        for order, label in ((["x", "y"], "xy"), (["y", "x"], "yx")):
            router_shards = None
            # Build two sharded services registering the buildings in
            # opposite orders via the router alone.
            from repro.serving.sharding import Shard, ShardedRouter
            from repro.core.pipeline import GraficsConfig
            shards = [Shard(index=i, grafics_config=GraficsConfig(),
                            min_overlap=0.1, config=ServingConfig(),
                            cache_entries=16) for i in range(num_shards)]
            router = ShardedRouter(shards, min_overlap=0.1)
            names = {"x": first, "y": second}
            for key in order:
                router.add_building(names[key], ["m1", "m2", "m3"])
            routers[label] = router
        probe = SignalRecord(record_id="p", rss={"m1": -50.0, "m2": -60.0})
        assert routers["xy"].route(probe).building_id == first
        assert routers["yx"].route(probe).building_id == second

    def test_rejections_match_reference(self, serving_corpus):
        registry, _, _ = serving_corpus
        service = sharded_service(registry, num_shards=4)
        stranger = SignalRecord(record_id="alien",
                                rss={"never-seen-1": -50.0,
                                     "never-seen-2": -60.0})
        with pytest.raises(UnknownEnvironmentError):
            service.router.route(stranger)
        with pytest.raises(UnknownEnvironmentError):
            service.predict(stranger)


class TestByteIdenticalServing:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_predict_batch_equals_one_lock_reference(self, serving_corpus,
                                                     num_shards):
        registry, held_out, _ = serving_corpus
        probes = interleaved_probes(held_out, per_building=8)
        reference = one_lock_service(registry).predict_batch(probes)
        sharded = sharded_service(registry, num_shards=num_shards)
        assert sharded.predict_batch(probes) == reference
        # Warm-cache pass stays identical too.
        assert sharded.predict_batch(probes) == reference

    def test_predict_equals_reference_without_cache(self, serving_corpus):
        registry, held_out, _ = serving_corpus
        probes = interleaved_probes(held_out, per_building=6)
        reference = one_lock_service(
            registry, enable_cache=False).predict_batch(probes)
        sharded = sharded_service(registry, num_shards=4, enable_cache=False)
        assert [sharded.predict(p) for p in probes] == reference

    def test_micro_batched_path_equals_reference(self, serving_corpus):
        registry, held_out, _ = serving_corpus
        probes = interleaved_probes(held_out, per_building=6)
        reference = one_lock_service(registry).predict_batch(probes)
        by_id = {p.record_id: p for p in reference}

        service = sharded_service(registry, num_shards=4, max_batch_size=4)
        immediate = [service.submit(probe) for probe in probes]
        results = [r for r in immediate if r is not None] + service.drain()
        assert len(results) == len(probes)
        for result in results:
            assert result.ok
            assert result.prediction == by_id[result.record_id]

    def test_retrain_building_matches_one_lock_retrain(self, serving_corpus):
        registry, held_out, training = serving_corpus
        building_id = "bldg-north"
        dataset, labels = training[building_id]

        reference = one_lock_service(registry)
        reference.retrain_building(dataset, labels, warm_start=True)
        sharded = sharded_service(registry, num_shards=4)
        sharded.retrain_building(dataset, labels, warm_start=True)

        probes = held_out[building_id][:6]
        assert (sharded.predict_batch(probes)
                == reference.predict_batch(probes))


class TestLifecycle:
    def test_install_invalidates_shard_cache_and_updates_router(
            self, serving_corpus):
        registry, held_out, training = serving_corpus
        service = sharded_service(registry, num_shards=4)
        building_id = "bldg-south"
        probe = held_out[building_id][0]
        before = service.predict(probe)
        shard = service.shard_for(building_id)
        assert len(shard.cache) > 0

        dataset, labels = training[building_id]
        service.retrain_building(dataset, labels)
        assert shard.telemetry.counter("hot_swaps_total") == 1
        assert service.telemetry.gauge("last_swap_shard") == shard.index
        after = service.predict(probe)
        assert after.building_id == before.building_id

    def test_eviction_racing_dispatch_rejects_cleanly(self, serving_corpus):
        """A building vanishing between routing and dispatch must surface as
        the routing rejection it would have been, not a raw KeyError."""
        registry, held_out, _ = serving_corpus
        service = sharded_service(registry, num_shards=4)
        probe = held_out["bldg-north"][0]
        # Simulate the torn interleave: the model is gone from the shard,
        # but the router postings still attribute the record to it.
        service.shard_for("bldg-north").registry.remove_building("bldg-north")
        with pytest.raises(UnknownEnvironmentError, match="evicted"):
            service.predict(probe)

    def test_evict_building_rejects_queued_work(self, serving_corpus):
        registry, held_out, _ = serving_corpus
        service = sharded_service(registry, num_shards=4, max_batch_size=100)
        probe = held_out["bldg-north"][0]
        assert service.submit(probe) is None  # queued, batch not full
        service.evict_building("bldg-north")
        results = service.poll()
        assert len(results) == 1
        assert not results[0].ok and results[0].source == "rejected"
        assert "evicted" in results[0].error
        assert "bldg-north" not in service.building_ids

    def test_export_registry_round_trips_order_and_models(self,
                                                          serving_corpus):
        registry, held_out, _ = serving_corpus
        service = sharded_service(registry, num_shards=4)
        exported = service.export_registry()
        assert list(exported.vocabularies) == list(registry.vocabularies)
        probes = interleaved_probes(held_out, per_building=4)
        rebuilt = ShardedServingService(registry=exported, num_shards=4,
                                        clock=FakeClock())
        assert (rebuilt.predict_batch(probes)
                == service.predict_batch(probes))


class TestTelemetryAggregation:
    def test_counters_sum_across_shards(self, serving_corpus):
        registry, held_out, _ = serving_corpus
        service = sharded_service(registry, num_shards=4)
        probes = interleaved_probes(held_out, per_building=5)
        service.predict_batch(probes)
        snapshot = service.telemetry_snapshot()
        counters = snapshot["counters"]
        assert counters["requests_total"] == len(probes)
        assert counters["predictions_total"] == len(probes)
        shard_predictions = sum(
            shard.telemetry.counter("predictions_total")
            for shard in service.shards)
        assert shard_predictions == len(probes)
        assert snapshot["buildings"] == len(registry.building_ids)

    def test_per_shard_gauges_present_in_snapshot(self, serving_corpus):
        registry, held_out, _ = serving_corpus
        service = sharded_service(registry, num_shards=3, max_batch_size=100)
        service.submit(held_out["bldg-north"][0])
        snapshot = service.telemetry_snapshot()
        gauges = snapshot["gauges"]
        for index in range(3):
            assert f"shard{index}_queue_depth" in gauges
            assert f"shard{index}_cache_entries" in gauges
        queued_shard = service.shard_for("bldg-north").index
        assert gauges[f"shard{queued_shard}_queue_depth"] == 1
        assert snapshot["shards"][str(queued_shard)]["queue_depth"] == 1

    def test_cache_stats_aggregate(self, serving_corpus):
        registry, held_out, _ = serving_corpus
        service = sharded_service(registry, num_shards=4)
        probes = interleaved_probes(held_out, per_building=4)
        service.predict_batch(probes)
        service.predict_batch(probes)
        cache = service.telemetry_snapshot()["cache"]
        assert cache["misses"] == len(probes)
        assert cache["hits"] == len(probes)
        assert cache["hit_rate"] == 0.5
