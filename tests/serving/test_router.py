"""Router tests: inverted-index attribution must match the linear-scan rule."""

from __future__ import annotations

import random

import pytest
from serving_helpers import FakeClock, make_service

from repro import SignalRecord, UnknownEnvironmentError
from repro.serving import LinearScanRouter, MacInvertedRouter


def record(record_id: str, macs, rss: float = -60.0) -> SignalRecord:
    return SignalRecord(record_id=record_id, rss={m: rss for m in macs})


def build_pair(vocabularies: dict, min_overlap: float = 0.1):
    linear = LinearScanRouter(min_overlap=min_overlap)
    inverted = MacInvertedRouter(min_overlap=min_overlap)
    for building_id, vocabulary in vocabularies.items():
        linear.add_building(building_id, vocabulary)
        inverted.add_building(building_id, vocabulary)
    return linear, inverted


class TestValidation:
    def test_min_overlap_validated(self):
        with pytest.raises(ValueError):
            MacInvertedRouter(min_overlap=0.0)
        with pytest.raises(ValueError):
            MacInvertedRouter(min_overlap=1.5)

    def test_empty_router_rejects_queries(self):
        router = MacInvertedRouter()
        with pytest.raises(RuntimeError):
            router.route(record("r", ["m1"]))

    def test_empty_rss_rejected(self):
        router = MacInvertedRouter()
        router.add_building("b", ["m1"])
        probe = record("r", ["m1"])
        probe.rss.clear()  # defeat SignalRecord's constructor validation
        with pytest.raises(UnknownEnvironmentError, match="no RSS readings"):
            router.route(probe)

    def test_unknown_record_rejected(self):
        router = MacInvertedRouter()
        router.add_building("b", ["m1", "m2"])
        with pytest.raises(UnknownEnvironmentError, match="does not match"):
            router.route(record("alien", ["somewhere-else"]))

    def test_min_overlap_threshold_applied(self):
        router = MacInvertedRouter(min_overlap=0.5)
        router.add_building("b", ["m1"])
        # 1 of 3 MACs known -> overlap 0.33 < 0.5.
        with pytest.raises(UnknownEnvironmentError):
            router.route(record("r", ["m1", "x1", "x2"]))


class TestAttribution:
    def test_basic_attribution_and_overlap(self):
        router = MacInvertedRouter()
        router.add_building("a", ["m1", "m2", "m3"])
        router.add_building("b", ["m4", "m5"])
        decision = router.route(record("r", ["m1", "m2", "m4", "unknown"]))
        assert decision.building_id == "a"
        assert decision.overlap == pytest.approx(0.5)

    def test_tie_breaks_to_earliest_registered(self):
        # Both buildings fully contain the probe; registration order decides.
        router = MacInvertedRouter()
        router.add_building("late-alpha", ["m1", "m2", "m9"])
        router.add_building("aaa-early", ["m1", "m2"])  # lexically first, registered second
        decision = router.route(record("r", ["m1", "m2"]))
        assert decision.building_id == "late-alpha"

    def test_replacement_keeps_tie_break_position(self):
        router = MacInvertedRouter()
        router.add_building("first", ["m1", "m2"])
        router.add_building("second", ["m1", "m2"])
        # Retrain "first" with a changed vocabulary; it must stay first.
        router.add_building("first", ["m1", "m2", "m3"])
        assert router.building_ids == ["first", "second"]
        assert router.route(record("r", ["m1", "m2"])).building_id == "first"
        # Stale MACs of a replaced vocabulary must stop matching.
        router.add_building("second", ["m9"])
        assert router.route(record("q", ["m9"])).building_id == "second"
        assert router.vocabulary_for("second") == frozenset({"m9"})

    def test_remove_building(self):
        linear, inverted = build_pair({"a": ["m1"], "b": ["m1", "m2"]})
        for router in (linear, inverted):
            router.remove_building("a")
            assert router.building_ids == ["b"]
            assert router.route(record("r", ["m1"])).building_id == "b"
            with pytest.raises(KeyError):
                router.remove_building("a")

    def test_matches_linear_scan_on_random_corpora(self):
        rng = random.Random(7)
        shared = [f"shared-{i}" for i in range(12)]
        vocabularies = {}
        for b in range(25):
            own = [f"b{b:02d}-ap{i}" for i in range(rng.randint(5, 30))]
            vocabularies[f"building-{b:02d}"] = own + rng.sample(
                shared, rng.randint(0, len(shared)))
        linear, inverted = build_pair(vocabularies, min_overlap=0.2)

        all_macs = sorted({m for v in vocabularies.values() for m in v})
        for i in range(300):
            size = rng.randint(1, 20)
            macs = rng.sample(all_macs, size)
            if rng.random() < 0.3:
                macs += [f"noise-{i}-{j}" for j in range(rng.randint(1, 5))]
            probe = record(f"probe-{i}", macs)
            try:
                expected = linear.route(probe)
            except UnknownEnvironmentError:
                with pytest.raises(UnknownEnvironmentError):
                    inverted.route(probe)
                continue
            assert inverted.route(probe) == expected

    def test_route_batch(self):
        _, inverted = build_pair({"a": ["m1"], "b": ["m2"]})
        decisions = inverted.route_batch([record("r1", ["m1"]),
                                          record("r2", ["m2"])])
        assert [d.building_id for d in decisions] == ["a", "b"]


class TestHotSwapPostings:
    """Incremental posting updates must equal a from-scratch rebuild."""

    def test_incremental_updates_match_fresh_rebuild(self):
        rng = random.Random(3)
        alphabet = [f"ap-{i}" for i in range(40)]
        router = MacInvertedRouter()
        vocabularies: dict[str, list[str]] = {}
        for step in range(120):
            building_id = f"b{rng.randint(0, 9)}"
            action = rng.random()
            if action < 0.25 and building_id in vocabularies:
                router.remove_building(building_id)
                del vocabularies[building_id]
            else:
                # Fresh registration or hot swap with a changed vocabulary.
                vocabulary = rng.sample(alphabet, rng.randint(3, 12))
                router.add_building(building_id, vocabulary)
                vocabularies[building_id] = vocabulary
            if not vocabularies:
                continue
            fresh = MacInvertedRouter.from_vocabularies(
                {b: vocabularies[b] for b in router.building_ids})
            for i in range(10):
                probe = record(f"probe-{step}-{i}",
                               rng.sample(alphabet, rng.randint(1, 6)))
                try:
                    expected = fresh.route(probe)
                except UnknownEnvironmentError:
                    with pytest.raises(UnknownEnvironmentError):
                        router.route(probe)
                    continue
                assert router.route(probe) == expected

    def test_service_hot_swap_routes_new_vocabulary_immediately(
            self, serving_corpus):
        """Regression: a swap with changed MACs must route correctly at once."""
        registry, held_out, training = serving_corpus
        service = make_service(registry, FakeClock())
        old_vocabulary = service.router.vocabulary_for("bldg-north")
        kept = sorted(old_vocabulary)[: len(old_vocabulary) // 2]
        replaced = [f"{mac}-replacement" for mac in
                    sorted(old_vocabulary)[len(old_vocabulary) // 2:]]

        model = service.registry.model_for("bldg-north")
        service.install_building("bldg-north", model,
                                 vocabulary=kept + replaced)

        # New MACs route to the swapped building with no rebuild in between.
        probe = record("new-vocab-probe", replaced[:3])
        decision = service.router.route(probe)
        assert decision.building_id == "bldg-north"
        assert decision.overlap == 1.0
        # Dropped MACs must stop matching the swapped building.
        with pytest.raises(UnknownEnvironmentError):
            service.router.route(record(
                "stale-probe", sorted(old_vocabulary - frozenset(kept))[:3]))
        # Surviving MACs still route, and the tie-break position is kept.
        assert service.router.building_ids[0] == "bldg-north"
        assert service.router.route(
            record("kept-probe", kept[:3])).building_id == "bldg-north"
