"""Lock-light cold serving path: concurrency, byte-identity, cache guard.

Cold predictions (cache misses) are now computed *outside* the serving
lock, which is only sound because online inference became mutation-free:
the engine stages probe records on a ``GraphOverlay`` instead of writing to
the shared model graph.  These tests pin the properties the restructure
must preserve:

* cold predicts racing a background retrain + hot swap on the same shard
  return predictions byte-identical to the sequential schedule;
* a prediction computed against a model that was swapped out mid-flight is
  still returned but never cached (the stale-put guard);
* serving-path predictions leave the model graph's version untouched, so
  the version-keyed sampler cache survives cold traffic.
"""

from __future__ import annotations

import threading

import pytest
from serving_helpers import clone_registry, interleaved_probes

from repro.core.embedding.trainer import _SAMPLER_CACHE, clear_sampler_cache
from repro.core.inference import UnknownEnvironmentError
from repro.serving import (
    FloorServingService,
    ServingConfig,
    ShardedServingService,
)

THREADS = 4
ROUNDS = 12
RETRAINS = 3


def cold_config(**kwargs) -> ServingConfig:
    """Every predict recomputes: the pure cold path."""
    return ServingConfig(enable_cache=False, **kwargs)


def make_cold_sharded(registry, num_shards=1) -> ShardedServingService:
    return ShardedServingService(registry=clone_registry(registry),
                                 config=cold_config(), num_shards=num_shards)


class TestColdPredictsRacingHotSwaps:
    """Satellite: cold predicts vs background retrain + hot swap, one shard."""

    @pytest.mark.parametrize("make_service", [
        pytest.param(
            lambda registry: make_cold_sharded(registry, num_shards=1),
            id="sharded-single-shard"),
        pytest.param(
            lambda registry: FloorServingService(
                registry=clone_registry(registry), config=cold_config()),
            id="one-lock"),
    ])
    def test_byte_identical_to_sequential_schedule(self, serving_corpus,
                                                   make_service):
        registry, held_out, training = serving_corpus
        service = make_service(registry)
        probes = interleaved_probes(held_out, per_building=4)

        # The sequential schedule: the same probes served with no
        # concurrency and no swaps.  Retrains below are cold fits of the
        # same data with the same seeded config, so every swapped-in model
        # is byte-identical to the one it replaces and the sequential
        # reference stays valid across the whole race.
        reference = make_cold_sharded(registry).predict_batch(probes)

        errors: list[Exception] = []
        start_barrier = threading.Barrier(THREADS + 1)
        stop = threading.Event()

        def hammer() -> None:
            try:
                start_barrier.wait(timeout=60.0)
                for _ in range(ROUNDS):
                    predictions = service.predict_batch(probes)
                    # Exact equality: floors, distances and overlaps are
                    # byte-for-byte the sequential schedule's.
                    assert predictions == reference
            except Exception as error:  # noqa: BLE001 — surfaced after join
                errors.append(error)
            finally:
                stop.set()

        threads = [threading.Thread(target=hammer) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        start_barrier.wait(timeout=60.0)

        # At least one swap per building is guaranteed to overlap the
        # hammering; further rounds run while any thread is still going.
        swaps = 0
        for building_id, (dataset, labels) in training.items():
            service.retrain_building(dataset, labels)
            swaps += 1
        while not stop.is_set() and swaps < RETRAINS * len(training):
            for building_id, (dataset, labels) in training.items():
                service.retrain_building(dataset, labels)
                swaps += 1
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors, errors[0]
        assert swaps >= len(training)   # the race actually raced

        # And the dust-settled service still serves the reference bytes.
        assert service.predict_batch(probes) == reference


class TestFreshlyLoadedModelConcurrentFirstPredicts:
    def test_concurrent_first_predicts_after_registry_load(self, serving_corpus,
                                                           tmp_path):
        """A persistence-rebuilt graph still has dirty degrees; the first
        predictions — now unlocked — must not race the lazy flush."""
        from repro.core.persistence import load_registry, save_registry

        registry, held_out, _ = serving_corpus
        save_registry(clone_registry(registry), tmp_path / "reg")
        service = FloorServingService(registry=load_registry(tmp_path / "reg"),
                                      config=cold_config())
        probes = interleaved_probes(held_out, per_building=2)
        reference = clone_registry(registry).predict_batch(probes)

        errors: list[Exception] = []
        barrier = threading.Barrier(THREADS)

        def first_predicts() -> None:
            try:
                barrier.wait(timeout=30.0)
                assert service.predict_batch(probes) == reference
            except Exception as error:  # noqa: BLE001 — surfaced after join
                errors.append(error)

        threads = [threading.Thread(target=first_predicts)
                   for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors[0]


class TestStaleCachePutGuard:
    def test_mid_flight_swap_skips_cache_put(self, serving_corpus):
        """A prediction computed by a swapped-out model is returned, not
        cached — the follow-up predict is served by the new model."""
        registry, held_out, training = serving_corpus
        service = FloorServingService(registry=clone_registry(registry),
                                      config=ServingConfig(enable_cache=True))
        building_id = "bldg-north"
        probe = held_out[building_id][0]
        dataset, labels = training[building_id]

        # A replacement model trained on a shifted window: predictions may
        # legitimately differ from the original model's.
        replacement_source = FloorServingService(
            registry=clone_registry(registry))
        replacement = replacement_source.retrain_building(
            dataset.subset(dataset.records[2:]),
            {k: v for k, v in labels.items()
             if k in {r.record_id for r in dataset.records[2:]}},
        )

        old_model = service.model_for(building_id)
        original_predict_batch = old_model.predict_batch
        installed = []

        def swapping_predict_batch(records, **kwargs):
            # Fires during the unlocked compute phase: the install takes
            # the service lock while this predict is in flight, which only
            # works because the compute phase dropped it.
            if not installed:
                installed.append(True)
                service.install_building(building_id, replacement)
            return original_predict_batch(records, **kwargs)

        old_model.predict_batch = swapping_predict_batch
        try:
            raced = service.predict(probe)
        finally:
            old_model.predict_batch = original_predict_batch

        # The raced request was served by the model that planned it...
        sequential = clone_registry(registry).predict(probe)
        assert raced == sequential
        # ...but its prediction was not cached: the follow-up is computed
        # by (and byte-identical to) the newly installed model.
        follow_up = service.predict(probe)
        reference = FloorServingService(
            registry=clone_registry(registry), config=cold_config())
        reference.install_building(building_id, replacement)
        assert follow_up == reference.predict(probe)


class TestBatchOverlappingSwapRejection:
    def test_unattributable_batch_rejects_instead_of_crashing(self,
                                                              serving_corpus):
        """A released batch whose (possibly swapped) model can no longer
        attribute its records surfaces as rejected results — the exception
        must not escape submit/drain and lose the sibling results."""
        registry, held_out, _ = serving_corpus
        service = FloorServingService(
            registry=clone_registry(registry),
            config=ServingConfig(enable_cache=False, max_batch_size=2))
        building_id = "bldg-north"
        probes = held_out[building_id][:2]
        model = service.model_for(building_id)
        original = model.predict_batch

        def unattributable(records, **kwargs):
            raise UnknownEnvironmentError(
                "records no longer attributable after swap")

        model.predict_batch = unattributable
        try:
            assert service.submit(probes[0]) is None
            # Fills the batch of 2: dispatched inline, rejection path taken.
            assert service.submit(probes[1]) is None
            results = service.drain()
        finally:
            model.predict_batch = original

        assert len(results) == 2
        assert all(not r.ok and r.source == "rejected" for r in results)
        assert all("attributable" in r.error for r in results)
        # The service is healthy afterwards: the same records serve fine.
        assert all(p is not None
                   for p in service.predict_batch(probes))


class TestServingLeavesModelStateUntouched:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_sampler_cache()
        yield
        clear_sampler_cache()

    @pytest.mark.parametrize("make_service", [
        pytest.param(lambda registry: make_cold_sharded(registry, 2),
                     id="sharded"),
        pytest.param(
            lambda registry: FloorServingService(
                registry=clone_registry(registry), config=cold_config()),
            id="one-lock"),
    ])
    def test_no_version_bump_and_sampler_cache_survival(self, serving_corpus,
                                                        make_service):
        registry, held_out, _ = serving_corpus
        service = make_service(registry)
        probes = interleaved_probes(held_out, per_building=3)
        versions = {building_id: service.model_for(building_id).graph.version
                    for building_id in service.building_ids}

        service.predict_batch(probes)           # warm anything warmable
        hits_before = _SAMPLER_CACHE.hits
        misses_before = _SAMPLER_CACHE.misses
        for probe in probes:
            service.predict(probe)
        service.predict_batch(probes)

        for building_id in service.building_ids:
            assert (service.model_for(building_id).graph.version
                    == versions[building_id])
        # No cold predict evicted or repopulated a sampler-cache entry
        # (overlay samplers are built outside the cache entirely).
        assert _SAMPLER_CACHE.misses == misses_before
        assert _SAMPLER_CACHE.hits == hits_before
