"""Prediction-cache tests: fingerprints, LRU eviction, TTL expiry, stats."""

from __future__ import annotations

import pytest

from repro import SignalRecord
from repro.serving import PredictionCache, fingerprint_key

from serving_helpers import FakeClock


def record(record_id: str, rss: dict) -> SignalRecord:
    return SignalRecord(record_id=record_id, rss=rss)


class TestFingerprintKey:
    def test_mac_order_is_canonicalised(self):
        a = record("a", {"m1": -50.0, "m2": -60.0})
        b = record("b", {"m2": -60.0, "m1": -50.0})
        assert fingerprint_key("bldg", a) == fingerprint_key("bldg", b)

    def test_record_id_does_not_participate(self):
        a = record("user-1", {"m1": -50.0})
        b = record("user-2", {"m1": -50.0})
        assert fingerprint_key("bldg", a) == fingerprint_key("bldg", b)

    def test_quantisation_merges_subquantum_noise(self):
        a = record("a", {"m1": -50.2})
        b = record("b", {"m1": -49.9})
        c = record("c", {"m1": -50.6})
        assert fingerprint_key("bldg", a, quantum=1.0) == \
            fingerprint_key("bldg", b, quantum=1.0)
        assert fingerprint_key("bldg", a, quantum=1.0) != \
            fingerprint_key("bldg", c, quantum=1.0)

    def test_building_distinguishes_keys(self):
        a = record("a", {"m1": -50.0})
        assert fingerprint_key("east", a) != fingerprint_key("west", a)

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError):
            fingerprint_key("bldg", record("a", {"m1": -50.0}), quantum=0.0)


class TestPredictionCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            PredictionCache(max_entries=0)
        with pytest.raises(ValueError):
            PredictionCache(ttl_seconds=0.0)

    def test_hit_and_miss_counters(self):
        cache = PredictionCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", "value")
        assert cache.get("k") == "value"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = PredictionCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = PredictionCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put("k", "value")
        clock.advance(9.99)
        assert cache.get("k") == "value"
        clock.advance(0.02)
        assert cache.get("k") is None
        assert cache.expirations == 1
        assert "k" not in cache

    def test_put_refreshes_ttl(self):
        clock = FakeClock()
        cache = PredictionCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put("k", "old")
        clock.advance(8.0)
        cache.put("k", "new")
        clock.advance(8.0)
        assert cache.get("k") == "new"

    def test_invalidate_building(self):
        cache = PredictionCache(max_entries=8)
        cache.put("k1", 1, building_id="east")
        cache.put("k2", 2, building_id="west")
        cache.put("k3", 3, building_id="east")
        assert cache.invalidate_building("east") == 2
        assert cache.get("k1") is None and cache.get("k3") is None
        assert cache.get("k2") == 2
        assert cache.invalidations == 2

    def test_stats_snapshot(self):
        cache = PredictionCache(max_entries=8)
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
