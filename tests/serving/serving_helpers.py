"""Helpers shared by the serving-subsystem tests (imported, not fixtures)."""

from __future__ import annotations

from repro.core.registry import MultiBuildingFloorService
from repro.serving import FloorServingService, ServingConfig


class FakeClock:
    """A manually advanced monotonic clock for deterministic TTL/deadlines."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def clone_registry(registry: MultiBuildingFloorService) -> MultiBuildingFloorService:
    """A registry sharing the trained models but with private bookkeeping."""
    clone = MultiBuildingFloorService(registry.config,
                                      min_overlap=registry.min_overlap)
    for building_id, vocabulary in registry.vocabularies.items():
        clone.install_model(building_id, registry.model_for(building_id),
                            vocabulary=vocabulary)
    return clone


def make_service(registry, clock, **config_kwargs) -> FloorServingService:
    return FloorServingService(registry=clone_registry(registry),
                               config=ServingConfig(**config_kwargs),
                               clock=clock)


def interleaved_probes(held_out, per_building: int = 6):
    """Probes alternating between buildings, to exercise grouped dispatch."""
    columns = [records[:per_building] for records in held_out.values()]
    return [record for group in zip(*columns) for record in group]
