"""Telemetry tests: counters, histograms, timing and snapshot export."""

from __future__ import annotations

import pytest

from repro.serving import LatencyHistogram, ServingTelemetry

from serving_helpers import FakeClock


class TestLatencyHistogram:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=[])
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=[0.2, 0.1])

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-0.1)

    def test_empty_snapshot(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50"] == 0.0
        assert snapshot["min"] == 0.0

    def test_counts_and_mean(self):
        histogram = LatencyHistogram(bounds=[0.01, 0.1, 1.0])
        for value in (0.005, 0.05, 0.5):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(0.185)
        assert histogram.min == pytest.approx(0.005)
        assert histogram.max == pytest.approx(0.5)

    def test_percentiles_are_monotone_and_conservative(self):
        histogram = LatencyHistogram(bounds=[0.01, 0.1, 1.0])
        for _ in range(98):
            histogram.record(0.005)
        histogram.record(0.5)
        histogram.record(0.05)
        p50, p95, p99 = (histogram.percentile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= p95 <= p99
        assert p50 == pytest.approx(0.01)   # bucket upper bound >= true 0.005
        assert p99 == pytest.approx(0.1)

    def test_overflow_bucket_reports_observed_max(self):
        histogram = LatencyHistogram(bounds=[0.01])
        histogram.record(7.5)
        assert histogram.percentile(0.99) == pytest.approx(7.5)

    def test_merge_combines_counts_and_extremes(self):
        left = LatencyHistogram(bounds=[0.01, 0.1, 1.0])
        right = LatencyHistogram(bounds=[0.01, 0.1, 1.0])
        for value in (0.005, 0.05):
            left.record(value)
        for value in (0.5, 2.0):
            right.record(value)
        left.merge(right)
        assert left.count == 4
        assert left.min == pytest.approx(0.005)
        assert left.max == pytest.approx(2.0)
        assert left.mean == pytest.approx((0.005 + 0.05 + 0.5 + 2.0) / 4)
        assert left.percentile(0.99) == pytest.approx(2.0)

    def test_merge_with_empty_histogram_is_identity(self):
        histogram = LatencyHistogram()
        histogram.record(0.05)
        before = histogram.snapshot()
        histogram.merge(LatencyHistogram())
        assert histogram.snapshot() == before

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            LatencyHistogram(bounds=[0.01]).merge(LatencyHistogram(bounds=[0.1]))


class TestServingTelemetry:
    def test_counters(self):
        telemetry = ServingTelemetry(clock=FakeClock())
        telemetry.increment("requests_total")
        telemetry.increment("requests_total", 4)
        assert telemetry.counter("requests_total") == 5
        assert telemetry.counter("never-touched") == 0

    def test_time_context_manager_uses_injected_clock(self):
        clock = FakeClock()
        telemetry = ServingTelemetry(clock=clock)
        with telemetry.time("request_seconds"):
            clock.advance(0.25)
        histogram = telemetry.histogram("request_seconds")
        assert histogram.count == 1
        assert histogram.total == pytest.approx(0.25)

    def test_snapshot_structure_and_throughput(self):
        clock = FakeClock()
        telemetry = ServingTelemetry(clock=clock)
        telemetry.increment("predictions_total", 50)
        telemetry.observe("request_seconds", 0.002)
        clock.advance(10.0)
        snapshot = telemetry.snapshot()
        assert snapshot["uptime_seconds"] == pytest.approx(10.0)
        assert snapshot["throughput_rps"] == pytest.approx(5.0)
        assert snapshot["counters"]["predictions_total"] == 50
        assert snapshot["latency"]["request_seconds"]["count"] == 1

    def test_gauges_overwrite_and_export(self):
        telemetry = ServingTelemetry(clock=FakeClock())
        telemetry.set_gauge("stream_window_records", 128)
        telemetry.set_gauge("stream_window_records", 96)  # down is fine
        assert telemetry.gauge("stream_window_records") == 96.0
        assert telemetry.gauge("never-set", default=-1.0) == -1.0
        snapshot = telemetry.snapshot()
        assert snapshot["gauges"] == {"stream_window_records": 96.0}

    def test_merged_snapshot_sums_counters_and_histograms(self):
        clock = FakeClock()
        aggregate = ServingTelemetry(clock=clock)
        shard_a = ServingTelemetry(clock=clock)
        shard_b = ServingTelemetry(clock=clock)
        aggregate.increment("requests_total", 10)
        shard_a.increment("predictions_total", 6)
        shard_b.increment("predictions_total", 4)
        shard_a.observe("batch_seconds", 0.002)
        shard_b.observe("batch_seconds", 0.004)
        shard_a.set_gauge("shard0_queue_depth", 2)
        clock.advance(2.0)

        merged = aggregate.merged_snapshot([shard_a, shard_b])
        assert merged["counters"]["requests_total"] == 10
        assert merged["counters"]["predictions_total"] == 10
        assert merged["latency"]["batch_seconds"]["count"] == 2
        assert merged["gauges"]["shard0_queue_depth"] == 2.0
        assert merged["throughput_rps"] == pytest.approx(5.0)
        # Merging must not mutate the participants.
        assert shard_a.histogram("batch_seconds").count == 1
        assert aggregate.counter("predictions_total") == 0

    def test_increment_is_thread_safe(self):
        import threading
        telemetry = ServingTelemetry(clock=FakeClock())

        def bump():
            for _ in range(5000):
                telemetry.increment("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.counter("n") == 20000
