"""Process-pool cold path: pickle seams, byte-identity, lifecycle.

The compute pool's whole contract is "same bytes, more cores": plan and
commit stay in-process, the engine work crosses a process boundary, and
nothing about the predictions may change.  These tests pin that down from
three directions — the pickle seams the pool rides on (model snapshots,
serve plans, computed outputs), byte-identity of every serving mode
against the in-process path, and the pool's operational surface
(config gating, telemetry, worker restart, close).
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from serving_helpers import clone_registry, interleaved_probes, make_service  # noqa: E402

from repro.core.pipeline import GRAFICS  # noqa: E402
from repro.serving import (  # noqa: E402
    ComputePool,
    FloorServingService,
    ServingConfig,
    ShardedServingService,
    WorkerCrashError,
)
from repro.serving.service import _ServePlan  # noqa: E402

# Workers are started with fork throughout (milliseconds instead of a full
# interpreter start per worker); the dedicated spawn test below covers the
# default start method's pickle discipline end to end.
FORK = {"compute_workers": 2, "compute_start_method": "fork"}

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="compute-pool tests drive the fork start method")


def fitted_model(serving_corpus, building_id="bldg-north", **fit_kwargs):
    registry, _, training = serving_corpus
    dataset, labels = training[building_id]
    return GRAFICS(registry.config).fit(dataset, labels, **fit_kwargs)


# --------------------------------------------------------------------------
# Satellite: pickle round-trip regression suite
# --------------------------------------------------------------------------
class TestPickleRoundTrips:
    def test_model_snapshot_predicts_byte_identically(self, serving_corpus):
        """A pickled model is a faithful snapshot: same prediction bytes."""
        _, held_out, _ = serving_corpus
        model = fitted_model(serving_corpus)
        probes = held_out["bldg-north"][:10]
        expected = model.predict_batch(list(probes), independent=True)
        clone = pickle.loads(pickle.dumps(model))
        got = clone.predict_batch(list(probes), independent=True)
        assert pickle.dumps(got) == pickle.dumps(expected)

    def test_delta_sampler_snapshot_predicts_byte_identically(
            self, serving_corpus):
        """The delta-mode sampler state survives the snapshot too."""
        _, held_out, _ = serving_corpus
        model = fitted_model(serving_corpus, sampler_mode="delta")
        assert model.config.sampler_mode == "delta"
        probes = held_out["bldg-north"][:10]
        expected = model.predict_batch(list(probes), independent=True)
        clone = pickle.loads(pickle.dumps(model))
        got = clone.predict_batch(list(probes), independent=True)
        assert pickle.dumps(got) == pickle.dumps(expected)

    def test_serve_plan_round_trips(self, serving_corpus):
        """``_ServePlan`` — the object pinning compute to its snapshots —
        survives pickling with its model still predicting identically."""
        _, held_out, _ = serving_corpus
        model = fitted_model(serving_corpus)
        plan = _ServePlan(misses=[("bldg-north", model, [0, 2, 3])],
                          keys={1: "bldg-north|fp"}, served=4)
        clone = pickle.loads(pickle.dumps(plan))
        assert [(b, positions) for b, _, positions in clone.misses] == \
               [("bldg-north", [0, 2, 3])]
        assert clone.keys == plan.keys
        assert clone.served == plan.served
        probes = held_out["bldg-north"][:5]
        assert pickle.dumps(
            clone.misses[0][1].predict_batch(list(probes), independent=True)
        ) == pickle.dumps(model.predict_batch(list(probes), independent=True))

    def test_outputs_round_trip(self, serving_corpus):
        """Computed predictions come back through a pickle unchanged."""
        _, held_out, _ = serving_corpus
        model = fitted_model(serving_corpus)
        outputs = model.predict_batch(list(held_out["bldg-north"][:8]),
                                      independent=True)
        clone = pickle.loads(pickle.dumps(outputs))
        for original, restored in zip(outputs, clone):
            assert pickle.dumps(restored) == pickle.dumps(original)

    def test_spawn_context_round_trip(self, serving_corpus):
        """The default spawn start method — fresh interpreter, nothing
        inherited — computes byte-identical predictions from a shipped
        snapshot.  This is the satellite's named case: everything the
        worker needs must arrive through the pickle, or this test fails."""
        _, held_out, _ = serving_corpus
        model = fitted_model(serving_corpus)
        probes = held_out["bldg-north"][:6]
        expected = model.predict_batch(list(probes), independent=True)
        with ComputePool(1, start_method="spawn") as pool:
            got = pool.compute("bldg-north", model, probes)
        assert pickle.dumps(got) == pickle.dumps(expected)


# --------------------------------------------------------------------------
# Acceptance: pooled serving is byte-identical in every mode
# --------------------------------------------------------------------------
class TestPoolIdentity:
    def test_predict_and_predict_batch_identical(self, serving_corpus,
                                                 fake_clock):
        registry, held_out, _ = serving_corpus
        probes = interleaved_probes(held_out, per_building=8)
        control = make_service(registry, fake_clock, enable_cache=False)
        expected = control.predict_batch(probes)
        with make_service(registry, fake_clock, enable_cache=False,
                          **FORK) as pooled:
            assert pickle.dumps(pooled.predict_batch(probes)) == \
                   pickle.dumps(expected)
            singles = [pooled.predict(p) for p in probes[:4]]
            assert pickle.dumps(singles) == pickle.dumps(expected[:4])

    def test_identity_with_cache_enabled(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        probes = interleaved_probes(held_out, per_building=6)
        control = make_service(registry, fake_clock)
        with make_service(registry, fake_clock, **FORK) as pooled:
            # Two passes: the second is served from each service's cache,
            # which must have been filled with identical entries.
            for _ in range(2):
                assert pickle.dumps(pooled.predict_batch(probes)) == \
                       pickle.dumps(control.predict_batch(probes))

    def test_micro_batched_identical(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        probes = interleaved_probes(held_out, per_building=8)
        control = make_service(registry, fake_clock, max_batch_size=4)
        with make_service(registry, fake_clock, max_batch_size=4,
                          **FORK) as pooled:
            for service in (control, pooled):
                for probe in probes:
                    service.submit(probe)
            expected = {r.record_id: r for r in control.drain()}
            got = {r.record_id: r for r in pooled.drain()}
            assert got.keys() == expected.keys()
            for record_id, result in got.items():
                assert result.prediction == expected[record_id].prediction
                assert result.source == expected[record_id].source

    def test_delta_sampler_mode_identical(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        _, _, training = serving_corpus
        delta_registry = clone_registry(registry)
        for building_id, (dataset, labels) in training.items():
            delta_model = GRAFICS(registry.config).fit(
                dataset, labels, sampler_mode="delta")
            delta_registry.install_model(
                building_id, delta_model, vocabulary=frozenset(dataset.macs))
        probes = interleaved_probes(held_out, per_building=6)
        control = FloorServingService(
            clone_registry(delta_registry),
            ServingConfig(enable_cache=False))
        with FloorServingService(
                clone_registry(delta_registry),
                ServingConfig(enable_cache=False, **FORK)) as pooled:
            assert pickle.dumps(pooled.predict_batch(probes)) == \
                   pickle.dumps(control.predict_batch(probes))

    def test_identity_across_hot_swap(self, serving_corpus, fake_clock):
        """A swap bumps the generation: post-swap pooled predictions match
        a control service that swapped the same model in-process."""
        registry, held_out, _ = serving_corpus
        probes = held_out["bldg-north"][:8]
        replacement = fitted_model(serving_corpus, sampler_mode="delta")
        control = make_service(registry, fake_clock, enable_cache=False)
        with make_service(registry, fake_clock, enable_cache=False,
                          **FORK) as pooled:
            assert pickle.dumps(pooled.predict_batch(probes)) == \
                   pickle.dumps(control.predict_batch(probes))
            ships_before = pooled.telemetry.counter(
                "compute_pool_snapshot_ships_total")
            for service in (control, pooled):
                service.install_building("bldg-north", replacement)
            assert pickle.dumps(pooled.predict_batch(probes)) == \
                   pickle.dumps(control.predict_batch(probes))
            # The swapped model had to ship — the old generation is dead.
            assert pooled.telemetry.counter(
                "compute_pool_snapshot_ships_total") > ships_before

    def test_sharded_service_identical(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        probes = interleaved_probes(held_out, per_building=8)
        control = make_service(registry, fake_clock, enable_cache=False)
        expected = control.predict_batch(probes)
        with ShardedServingService(
                clone_registry(registry),
                ServingConfig(enable_cache=False, **FORK),
                num_shards=2, clock=fake_clock) as sharded:
            assert pickle.dumps(sharded.predict_batch(probes)) == \
                   pickle.dumps(expected)
            for probe in probes:
                sharded.submit(probe)
            by_id = {r.record_id: r.prediction for r in sharded.drain()}
            assert all(by_id[e.record_id] == e for e in expected)


# --------------------------------------------------------------------------
# Operational surface: config gating, telemetry, restart, close
# --------------------------------------------------------------------------
class TestPoolLifecycle:
    def test_compute_workers_zero_means_no_pool(self, serving_corpus,
                                                fake_clock):
        registry, held_out, _ = serving_corpus
        service = make_service(registry, fake_clock)
        assert service.compute_pool is None
        service.predict(held_out["bldg-north"][0])
        assert "compute_pool" not in service.telemetry_snapshot()
        service.close()  # no-op, must not raise

    def test_config_validation(self):
        with pytest.raises(ValueError, match="compute_workers"):
            ServingConfig(compute_workers=-1)
        with pytest.raises(ValueError, match="compute_start_method"):
            ServingConfig(compute_start_method="fork")
        with pytest.raises(ValueError):
            ComputePool(0)
        with pytest.raises(ValueError, match="start method"):
            ComputePool(1, start_method="no-such-method")

    def test_dispatch_and_ship_counters(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        probes = held_out["bldg-north"][:6]
        with make_service(registry, fake_clock, enable_cache=False,
                          **FORK) as service:
            service.predict_batch(probes)
            counters = service.telemetry_snapshot()["counters"]
            assert counters["compute_pool_dispatch_total"] >= 1
            ships = counters["compute_pool_snapshot_ships_total"]
            assert ships >= 1
            service.predict_batch(probes)
            counters = service.telemetry_snapshot()["counters"]
            # Same generation: the snapshot is already on the workers.
            assert counters["compute_pool_snapshot_ships_total"] == ships
            assert service.telemetry_snapshot()["gauges"][
                "compute_pool_queue_depth"] == 0
            stats = service.telemetry_snapshot()["compute_pool"]
            assert stats["workers"] == 2
            assert stats["start_method"] == "fork"
            # The counters and the queue-depth gauge ride the service
            # telemetry, so they surface on /metrics with no extra wiring.
            exposition = service.telemetry.to_prometheus_text()
            for name in ("compute_pool_dispatch_total",
                         "compute_pool_snapshot_ships_total",
                         "compute_pool_queue_depth"):
                assert name in exposition

    def test_worker_restart_after_external_kill(self, serving_corpus,
                                                fake_clock):
        registry, held_out, _ = serving_corpus
        probes = held_out["bldg-north"][:6]
        with make_service(registry, fake_clock, enable_cache=False,
                          compute_workers=1,
                          compute_start_method="fork") as service:
            expected = service.predict_batch(probes)
            victim = service.compute_pool._workers[0].process
            os.kill(victim.pid, 9)
            deadline = time.monotonic() + 10.0
            while (service.telemetry.counter(
                    "compute_pool_worker_restarts_total") == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert service.telemetry.counter(
                "compute_pool_worker_restarts_total") == 1
            # The respawned worker has an empty snapshot cache; the model
            # re-ships and predictions are unchanged.
            assert pickle.dumps(service.predict_batch(probes)) == \
                   pickle.dumps(expected)

    def test_close_is_idempotent_and_fails_late_compute(self, serving_corpus,
                                                        fake_clock):
        registry, held_out, _ = serving_corpus
        service = make_service(registry, fake_clock, enable_cache=False,
                               **FORK)
        service.predict(held_out["bldg-north"][0])
        pool = service.compute_pool
        service.close()
        service.close()
        model = registry.model_for("bldg-north")
        with pytest.raises(WorkerCrashError, match="closed"):
            pool.compute("bldg-north", model, held_out["bldg-north"][:2])
