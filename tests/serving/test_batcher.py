"""Micro-batcher tests: size trigger, deadline trigger, drain, bookkeeping."""

from __future__ import annotations

import pytest

from repro.serving import MicroBatcher

from serving_helpers import FakeClock


class TestValidation:
    def test_max_batch_size_validated(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0)

    def test_max_delay_validated(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_delay_seconds=-1.0)


class TestSizeTrigger:
    def test_batch_released_at_max_size(self):
        batcher = MicroBatcher(max_batch_size=3, max_delay_seconds=10.0,
                               clock=FakeClock())
        assert batcher.enqueue("east", "r1") is None
        assert batcher.enqueue("east", "r2") is None
        batch = batcher.enqueue("east", "r3")
        assert batch is not None
        assert batch.building_id == "east"
        assert batch.items == ("r1", "r2", "r3")
        assert batch.reason == "size"
        assert batcher.pending_count == 0
        assert batcher.flushes_by_reason["size"] == 1

    def test_buildings_batch_independently(self):
        batcher = MicroBatcher(max_batch_size=2, max_delay_seconds=10.0,
                               clock=FakeClock())
        assert batcher.enqueue("east", "e1") is None
        assert batcher.enqueue("west", "w1") is None
        assert batcher.pending_by_building() == {"east": 1, "west": 1}
        batch = batcher.enqueue("east", "e2")
        assert batch.building_id == "east"
        assert batcher.pending_by_building() == {"west": 1}


class TestDeadlineTrigger:
    def test_due_after_max_delay(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=10, max_delay_seconds=0.05,
                               clock=clock)
        batcher.enqueue("east", "r1")
        clock.advance(0.02)
        batcher.enqueue("east", "r2")
        assert batcher.due() == []  # oldest item is only 0.02s old
        clock.advance(0.03)  # oldest item now exactly at the deadline
        batches = batcher.due()
        assert len(batches) == 1
        assert batches[0].items == ("r1", "r2")
        assert batches[0].reason == "deadline"
        assert batcher.flushes_by_reason["deadline"] == 1

    def test_deadline_counts_from_oldest_item(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=10, max_delay_seconds=0.05,
                               clock=clock)
        batcher.enqueue("east", "r1")
        clock.advance(0.04)
        # A fresh arrival must not reset the oldest item's deadline.
        batcher.enqueue("east", "r2")
        clock.advance(0.01)
        assert len(batcher.due()) == 1

    def test_next_deadline(self):
        clock = FakeClock(start=100.0)
        batcher = MicroBatcher(max_batch_size=10, max_delay_seconds=0.05,
                               clock=clock)
        assert batcher.next_deadline() is None
        batcher.enqueue("east", "r1")
        assert batcher.next_deadline() == pytest.approx(100.05)


class TestDrain:
    def test_drain_releases_everything(self):
        batcher = MicroBatcher(max_batch_size=10, max_delay_seconds=10.0,
                               clock=FakeClock())
        batcher.enqueue("east", "e1")
        batcher.enqueue("west", "w1")
        batcher.enqueue("west", "w2")
        batches = {b.building_id: b for b in batcher.drain()}
        assert batches["east"].items == ("e1",)
        assert batches["west"].items == ("w1", "w2")
        assert all(b.reason == "drain" for b in batches.values())
        assert batcher.pending_count == 0
        assert batcher.drain() == []

    def test_enqueued_total(self):
        batcher = MicroBatcher(max_batch_size=10, clock=FakeClock())
        batcher.enqueue("east", "e1")
        batcher.enqueue("east", "e2")
        assert batcher.enqueued_total == 2
