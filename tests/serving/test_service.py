"""FloorServingService tests: equality with the sequential reference path,
micro-batched intake, cache hit semantics, rejection handling and hot swap."""

from __future__ import annotations

import pytest

from repro import SignalRecord
from repro.core.persistence import load_model
from repro.serving import FloorServingService, ServingConfig

from serving_helpers import interleaved_probes, make_service


class TestSequentialEquality:
    def test_predict_batch_identical_to_sequential_reference(self, serving_corpus,
                                                             fake_clock):
        """The acceptance criterion: serving output == sequential registry output."""
        registry, held_out, _ = serving_corpus
        probes = interleaved_probes(held_out, per_building=8)
        reference = [registry.predict(record) for record in probes]

        service = make_service(registry, fake_clock)
        assert service.predict_batch(probes) == reference
        # A warm second pass (all cache hits) must return the same thing.
        assert service.predict_batch(probes) == reference
        assert service.telemetry.counter("cache_hits_total") == len(probes)

    def test_predict_batch_identical_with_cache_disabled(self, serving_corpus,
                                                         fake_clock):
        registry, held_out, _ = serving_corpus
        probes = interleaved_probes(held_out, per_building=4)
        reference = [registry.predict(record) for record in probes]
        service = make_service(registry, fake_clock, enable_cache=False)
        assert service.predict_batch(probes) == reference
        assert service.telemetry.counter("cache_hits_total") == 0

    def test_single_predict_matches_reference(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        probe = next(iter(held_out.values()))[0]
        service = make_service(registry, fake_clock)
        assert service.predict(probe) == registry.predict(probe)

    def test_registry_grouped_batch_identical_to_sequential(self, serving_corpus):
        """Satellite: grouped MultiBuildingFloorService.predict_batch == sequential."""
        registry, held_out, _ = serving_corpus
        probes = interleaved_probes(held_out, per_building=5)
        sequential = [registry.predict(record) for record in probes]
        assert registry.predict_batch(probes) == sequential


class TestCacheSemantics:
    def test_equal_fingerprint_served_from_cache(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        probe = next(iter(held_out.values()))[0]
        service = make_service(registry, fake_clock)
        first = service.predict(probe)

        twin = SignalRecord(record_id="twin-of-" + probe.record_id,
                            rss=dict(probe.rss))
        second = service.predict(twin)
        assert service.telemetry.counter("cache_hits_total") == 1
        assert second.record_id == "twin-of-" + probe.record_id
        assert (second.building_id, second.floor, second.distance) == \
            (first.building_id, first.floor, first.distance)
        # The cached result is exactly what the reference path would compute.
        assert second == registry.predict(twin)

    def test_ttl_expiry_forces_recompute(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        probe = next(iter(held_out.values()))[0]
        service = make_service(registry, fake_clock, cache_ttl_seconds=30.0)
        service.predict(probe)
        fake_clock.advance(31.0)
        service.predict(probe)
        assert service.telemetry.counter("cache_hits_total") == 0
        assert service.cache.expirations == 1


class TestMicroBatchedIntake:
    def test_size_triggered_dispatch(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        building_id, probes = next(iter(held_out.items()))
        service = make_service(registry, fake_clock, max_batch_size=3,
                               enable_cache=False)
        assert service.submit(probes[0]) is None
        assert service.submit(probes[1]) is None
        assert service.pending_count == 2
        assert service.submit(probes[2]) is None  # triggers inline dispatch
        results = service.poll()
        assert [r.record_id for r in results] == \
            [p.record_id for p in probes[:3]]
        assert all(r.ok and r.source == "batch" for r in results)
        assert all(r.prediction.building_id == building_id for r in results)
        assert service.telemetry.counter("batch_flush_size_total") == 1
        # Byte-identical to the sequential reference, like the sync path.
        assert [r.prediction for r in results] == \
            [registry.predict(p) for p in probes[:3]]

    def test_deadline_triggered_dispatch(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        probes = next(iter(held_out.values()))
        service = make_service(registry, fake_clock, max_batch_size=100,
                               max_delay_seconds=0.05)
        service.submit(probes[0])
        assert service.poll() == []  # deadline not reached yet
        fake_clock.advance(0.06)
        results = service.poll()
        assert len(results) == 1 and results[0].ok
        assert service.telemetry.counter("batch_flush_deadline_total") == 1

    def test_drain_flushes_everything(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        service = make_service(registry, fake_clock, max_batch_size=100)
        submitted = []
        for probes in held_out.values():
            for probe in probes[:4]:
                service.submit(probe)
                submitted.append(probe.record_id)
        results = service.drain()
        assert sorted(r.record_id for r in results) == sorted(submitted)
        assert service.pending_count == 0
        assert service.telemetry.counter("batch_flush_drain_total") == 2

    def test_cache_hit_returns_immediately(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        probe = next(iter(held_out.values()))[0]
        service = make_service(registry, fake_clock)
        service.predict(probe)  # warm the cache
        result = service.submit(SignalRecord(record_id="resubmit",
                                             rss=dict(probe.rss)))
        assert result is not None and result.source == "cache"
        assert result.prediction.record_id == "resubmit"
        assert service.pending_count == 0

    def test_rejected_record_reported_not_queued(self, serving_corpus, fake_clock):
        registry, _, _ = serving_corpus
        service = make_service(registry, fake_clock)
        alien = SignalRecord(record_id="alien", rss={"mars-ap": -50.0})
        result = service.submit(alien)
        assert result is not None and not result.ok
        assert result.source == "rejected"
        assert "does not match" in result.error
        assert service.pending_count == 0
        assert service.telemetry.counter("rejections_total") == 1


class TestBuildingLifecycle:
    def test_retrain_building_hot_swap_via_persistence(self, serving_corpus,
                                                       fake_clock, tmp_path):
        registry, held_out, training = serving_corpus
        building_id = "bldg-north"
        dataset, labels = training[building_id]
        probes = held_out[building_id][:5]
        service = make_service(registry, fake_clock)
        service.predict_batch(probes)  # warm the cache for this building
        assert len(service.cache) == len(probes)

        model_path = tmp_path / "north.npz"
        swapped = service.retrain_building(dataset, labels,
                                           model_path=model_path)
        assert model_path.is_file()
        assert service.telemetry.counter("hot_swaps_total") == 1
        # The hot swap invalidated every cached entry of that building.
        assert len(service.cache) == 0

        # What serves now is exactly what a restart would load from disk.
        restored = load_model(model_path)
        expected = [restored.predict(p) for p in probes]
        served = service.predict_batch(probes)
        assert [p.floor for p in served] == [e.floor for e in expected]
        assert [p.distance for p in served] == [e.distance for e in expected]
        assert swapped is service.registry.model_for(building_id)

    def test_hot_swap_reroutes_queued_requests(self, serving_corpus, fake_clock):
        """A request queued before a swap must not keep its stale routing
        decision: it is re-routed against the post-swap vocabulary."""
        registry, held_out, training = serving_corpus
        service = make_service(registry, fake_clock, max_batch_size=100,
                               enable_cache=False)
        building_id = service.building_ids[0]
        probe = held_out[building_id][0]
        assert service.submit(probe) is None
        dataset, labels = training[building_id]
        service.retrain_building(dataset, labels)
        # Still queued (same vocabulary -> routes to the same building) and
        # dispatchable against the new model.
        assert service.pending_count == 1
        results = service.drain()
        assert len(results) == 1 and results[0].ok
        assert results[0].prediction == registry.predict(probe)

        # A swap that shrinks the vocabulary below min_overlap rejects the
        # queued request instead of serving it with a stale decision.
        assert service.submit(probe) is None
        tiny_vocab = ["not-a-real-ap"]
        service.install_building(building_id,
                                 registry.model_for(building_id),
                                 vocabulary=tiny_vocab)
        assert service.pending_count == 0
        rejected = service.drain()
        assert len(rejected) == 1 and not rejected[0].ok
        assert rejected[0].source == "rejected"

    def test_swap_preserves_routing_tie_break_order(self, serving_corpus,
                                                    fake_clock):
        registry, held_out, training = serving_corpus
        service = make_service(registry, fake_clock)
        order_before = service.router.building_ids
        dataset, labels = training[order_before[0]]
        service.retrain_building(dataset, labels)
        assert service.router.building_ids == order_before

    def test_evict_building(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        service = make_service(registry, fake_clock)
        victim, survivor = service.building_ids[0], service.building_ids[1]
        service.evict_building(victim)
        assert service.building_ids == [survivor]
        assert victim not in service.router.building_ids

    def test_evict_rejects_pending_requests(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        service = make_service(registry, fake_clock, max_batch_size=100)
        victim = service.building_ids[0]
        probe = held_out[victim][0]
        assert service.submit(probe) is None
        service.evict_building(victim)
        assert service.pending_count == 0
        results = service.drain()
        assert len(results) == 1
        assert not results[0].ok and results[0].source == "rejected"
        assert "evicted" in results[0].error

    def test_invalid_rss_quantum_fails_fast(self):
        with pytest.raises(ValueError, match="rss_quantum"):
            ServingConfig(rss_quantum=0.0)

    def test_fit_building_registers_for_routing(self, serving_corpus, fake_clock):
        registry, held_out, training = serving_corpus
        building_id = "bldg-south"
        dataset, labels = training[building_id]
        service = FloorServingService(config=ServingConfig(),
                                      grafics_config=registry.config,
                                      clock=fake_clock)
        assert service.building_ids == []
        service.fit_building(dataset, labels)
        probe = held_out[building_id][0]
        assert service.predict(probe).building_id == building_id

    def test_telemetry_snapshot_shape(self, serving_corpus, fake_clock):
        registry, held_out, _ = serving_corpus
        service = make_service(registry, fake_clock)
        probes = interleaved_probes(held_out, per_building=2)
        with pytest.raises(Exception):
            service.predict(SignalRecord(record_id="alien",
                                         rss={"nowhere": -40.0}))
        service.predict_batch(probes)
        snapshot = service.telemetry_snapshot()
        assert snapshot["buildings"] == 2
        assert snapshot["counters"]["predictions_total"] == len(probes)
        assert snapshot["counters"]["rejections_total"] == 1
        assert snapshot["cache"]["misses"] == len(probes)
        assert "batch_seconds" in snapshot["latency"]
        assert snapshot["pending"] == {}


class TestRetrainSamplerMode:
    def test_retrain_building_records_sampler_mode(self, serving_corpus,
                                                   fake_clock):
        """``retrain_building(sampler_mode="delta")`` must land the mode on
        the hot-swapped model, so its cold predictions run the composed
        delta sampler from the first post-swap request."""
        registry, held_out, training = serving_corpus
        building_id = "bldg-north"
        dataset, labels = training[building_id]
        service = make_service(registry, fake_clock)
        swapped = service.retrain_building(dataset, labels,
                                           sampler_mode="delta")
        assert swapped.config.sampler_mode == "delta"
        assert service.registry.model_for(building_id) is swapped
        # The delta-mode model still serves that building's probes.
        prediction = service.predict(held_out[building_id][0])
        assert prediction.floor is not None
