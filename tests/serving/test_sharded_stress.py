"""Concurrency stress: serving threads hammer predict during hot swaps.

The assertions target the three ways a torn swap would manifest:

* a reader observing a half-installed building (prediction referencing a
  model/vocabulary mix, or an engine crash mid-swap);
* cache or router state inconsistent with the installed model after the
  dust settles (stale cache entries surviving an install, router postings
  diverging from the registry vocabulary);
* per-shard telemetry counters that no longer add up to the work done.
"""

from __future__ import annotations

import threading

from serving_helpers import clone_registry, interleaved_probes

from repro.serving import ShardedServingService
from repro.stream import RetrainExecutor

THREADS = 4
ROUNDS = 30
SWAPS_PER_BUILDING = 3


def test_predicts_stay_consistent_while_executor_hot_swaps(serving_corpus):
    registry, held_out, training = serving_corpus
    service = ShardedServingService(registry=clone_registry(registry),
                                    num_shards=4)
    executor = RetrainExecutor(service, max_workers=2)
    probes = interleaved_probes(held_out, per_building=6)
    floors_by_building = {
        building_id: {record.floor for record in dataset.records
                      if record.floor is not None}
        for building_id, (dataset, _) in training.items()}

    errors: list[Exception] = []
    served = [0] * THREADS
    start_barrier = threading.Barrier(THREADS + 1)

    def hammer(slot: int) -> None:
        try:
            start_barrier.wait(timeout=60.0)
            for _ in range(ROUNDS):
                for prediction in service.predict_batch(probes):
                    served[slot] += 1
                    # A torn read would pair a building with a floor (or a
                    # model) it never had; every prediction must be fully
                    # consistent with *some* installed model of its building.
                    assert prediction.building_id in floors_by_building
                    assert (prediction.floor
                            in floors_by_building[prediction.building_id])
                    assert prediction.distance >= 0.0
        except Exception as error:  # noqa: BLE001 — surfaced after join
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(slot,))
               for slot in range(THREADS)]
    for thread in threads:
        thread.start()
    start_barrier.wait(timeout=60.0)

    # Hot-swap every building several times while the hammering runs.
    for _ in range(SWAPS_PER_BUILDING):
        for building_id, (dataset, labels) in training.items():
            executor.submit(building_id, dataset, labels,
                            trigger="stress", warm_start=True)
        assert executor.join(timeout=120.0)
    completions = executor.drain_completed()
    executor.shutdown()

    for thread in threads:
        thread.join(timeout=120.0)
    assert not errors, errors[0]

    # Every submitted swap either installed or was fenced as stale.
    assert len(completions) == SWAPS_PER_BUILDING * len(training)
    assert all(c.swapped or c.stale for c in completions)
    swapped = sum(c.swapped for c in completions)
    assert swapped >= len(training)  # each building swapped at least once

    # Router and registry agree per building after the dust settles.
    for building_id in service.building_ids:
        assert (service.router.vocabulary_for(building_id)
                == service.vocabulary_for(building_id))

    # Post-swap cache consistency: a fresh predict must equal a cache-free
    # predict on the final installed models (no stale entry survived).
    reference = ShardedServingService(registry=service.export_registry(),
                                      num_shards=4)
    assert service.predict_batch(probes) == reference.predict_batch(probes)

    # Telemetry sums: per-shard counters add up to the work performed.
    snapshot = service.telemetry_snapshot()
    counters = snapshot["counters"]
    total_served = sum(served) + len(probes)  # + the consistency check above
    assert counters["predictions_total"] == total_served
    assert (sum(shard.telemetry.counter("predictions_total")
                for shard in service.shards) == total_served)
    assert (counters["cache_hits_total"] + counters["cache_misses_total"]
            == total_served)
    assert (sum(shard.telemetry.counter("hot_swaps_total")
                for shard in service.shards) == swapped)
