"""Tests for the micro/macro classification metrics (paper Section VI-A)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    ConfusionMatrix,
    evaluate_predictions,
    macro_f_score,
    micro_f_score,
)


class TestConfusionMatrix:
    def test_from_labels(self):
        cm = ConfusionMatrix.from_labels([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(cm.counts, [[1, 1], [0, 2]])
        np.testing.assert_array_equal(cm.true_positives(), [1, 2])
        np.testing.assert_array_equal(cm.false_positives(), [0, 1])
        np.testing.assert_array_equal(cm.false_negatives(), [1, 0])
        np.testing.assert_array_equal(cm.support(), [2, 2])

    def test_explicit_floor_list(self):
        cm = ConfusionMatrix.from_labels([2], [2], floors=[0, 1, 2])
        assert cm.counts.shape == (3, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfusionMatrix.from_labels([0], [0, 1])
        with pytest.raises(ValueError):
            ConfusionMatrix.from_labels([], [])
        with pytest.raises(ValueError):
            ConfusionMatrix(floors=(0, 1), counts=np.zeros((3, 3)))


class TestEvaluatePredictions:
    def test_perfect_prediction(self):
        truth = {"a": 0, "b": 1, "c": 2}
        report = evaluate_predictions(truth, dict(truth))
        assert report.micro_f == 1.0
        assert report.macro_f == 1.0
        assert report.accuracy == 1.0

    def test_hand_computed_example(self):
        # Floor 0: 2 samples, one correct; floor 1: 2 samples, both predicted 0/1.
        truth = {"a": 0, "b": 0, "c": 1, "d": 1}
        predicted = {"a": 0, "b": 1, "c": 1, "d": 1}
        report = evaluate_predictions(truth, predicted)
        # Per floor: P0 = 1/1, R0 = 1/2; P1 = 2/3, R1 = 2/2.
        per_floor = report.per_floor()
        assert per_floor[0]["precision"] == pytest.approx(1.0)
        assert per_floor[0]["recall"] == pytest.approx(0.5)
        assert per_floor[1]["precision"] == pytest.approx(2 / 3)
        assert per_floor[1]["recall"] == pytest.approx(1.0)
        assert report.micro_f == pytest.approx(0.75)
        macro_p = (1.0 + 2 / 3) / 2
        macro_r = (0.5 + 1.0) / 2
        assert report.macro_f == pytest.approx(2 * macro_p * macro_r
                                               / (macro_p + macro_r))

    def test_micro_equals_accuracy_for_single_label(self):
        truth = {"a": 0, "b": 1, "c": 2, "d": 1}
        predicted = {"a": 1, "b": 1, "c": 2, "d": 0}
        report = evaluate_predictions(truth, predicted)
        assert report.micro_f == pytest.approx(report.accuracy)
        assert report.micro_precision == pytest.approx(report.micro_recall)

    def test_missing_predictions_rejected(self):
        with pytest.raises(ValueError):
            evaluate_predictions({"a": 0, "b": 1}, {"a": 0})

    def test_extra_predictions_ignored(self):
        report = evaluate_predictions({"a": 0}, {"a": 0, "zzz": 5})
        assert report.micro_f == 1.0

    def test_shortcut_functions(self):
        truth = {"a": 0, "b": 1}
        predicted = {"a": 0, "b": 0}
        assert micro_f_score(truth, predicted) == pytest.approx(0.5)
        assert 0.0 <= macro_f_score(truth, predicted) <= 1.0

    def test_as_dict_keys(self):
        report = evaluate_predictions({"a": 0}, {"a": 0})
        row = report.as_dict()
        assert set(row) == {"micro_precision", "micro_recall", "micro_f",
                            "macro_precision", "macro_recall", "macro_f",
                            "accuracy"}

    def test_unpredicted_floor_macro_penalty(self):
        """A floor never predicted still counts in the macro average."""
        truth = {"a": 0, "b": 1, "c": 1}
        predicted = {"a": 1, "b": 1, "c": 1}
        report = evaluate_predictions(truth, predicted)
        assert report.macro_recall == pytest.approx(0.5)
        assert report.macro_f < report.micro_f + 1e-9


class TestMetricProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=4),
                              st.integers(min_value=0, max_value=4)),
                    min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_bounds_and_symmetry(self, pairs):
        truth = {f"r{i}": t for i, (t, _) in enumerate(pairs)}
        predicted = {f"r{i}": p for i, (_, p) in enumerate(pairs)}
        report = evaluate_predictions(truth, predicted)
        for value in report.as_dict().values():
            assert 0.0 <= value <= 1.0
        # Micro precision == recall == accuracy for single-label multi-class.
        assert report.micro_precision == pytest.approx(report.micro_recall)
        assert report.micro_f == pytest.approx(report.accuracy)
        if all(t == p for t, p in pairs):
            assert report.macro_f == 1.0
