"""Tests for cluster-separation metrics and the experiment harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import FloorClassifier
from repro.core.types import FingerprintDataset, SignalRecord
from repro.evaluation.experiment import (
    ExperimentProtocol,
    compare_methods,
    format_table,
    run_corpus,
    run_repeated,
    run_single_trial,
)
from repro.evaluation.separation import (
    evaluate_separation,
    intra_inter_distance_ratio,
    nearest_neighbor_purity,
    silhouette_score,
)


def blob_data(seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal([0, 0], 0.2, size=(20, 2))
    b = rng.normal([8, 8], 0.2, size=(20, 2))
    embeddings = np.vstack([a, b])
    labels = [0] * 20 + [1] * 20
    return embeddings, labels


def mixed_data(seed=0):
    rng = np.random.default_rng(seed)
    embeddings = rng.normal(size=(40, 2))
    labels = [0, 1] * 20
    return embeddings, labels


class TestSeparationMetrics:
    def test_separated_blobs_score_well(self):
        embeddings, labels = blob_data()
        assert silhouette_score(embeddings, labels) > 0.8
        assert intra_inter_distance_ratio(embeddings, labels) < 0.2
        assert nearest_neighbor_purity(embeddings, labels) == 1.0

    def test_mixed_data_scores_poorly(self):
        embeddings, labels = mixed_data()
        assert silhouette_score(embeddings, labels) < 0.2
        assert intra_inter_distance_ratio(embeddings, labels) > 0.8
        assert nearest_neighbor_purity(embeddings, labels) < 0.8

    def test_separated_better_than_mixed(self):
        good = evaluate_separation("good", *blob_data())
        bad = evaluate_separation("bad", *mixed_data())
        assert good.silhouette > bad.silhouette
        assert good.intra_inter_ratio < bad.intra_inter_ratio
        assert good.nn_purity >= bad.nn_purity
        assert good.as_row()["method"] == "good"

    def test_validation(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((3, 2)), [0, 0, 0])
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((1, 2)), [0])
        with pytest.raises(ValueError):
            nearest_neighbor_purity(np.zeros((4, 2)), [0, 0, 1, 1], k=0)


class MajorityLabelClassifier(FloorClassifier):
    """Trivial classifier used to exercise the harness deterministically."""

    name = "majority"

    def __init__(self) -> None:
        self._floor = None

    def fit(self, train_records, labels):
        labels = self.check_labels(train_records, labels)
        values = list(labels.values())
        self._floor = max(set(values), key=values.count)
        return self

    def predict(self, records):
        return {r.record_id: self._floor for r in records}


def toy_dataset(per_floor=12, floors=3):
    records = []
    for floor in range(floors):
        for i in range(per_floor):
            records.append(SignalRecord(
                record_id=f"f{floor}-r{i}",
                rss={f"f{floor}-m{j}": -50.0 - j for j in range(4)},
                floor=floor))
    return FingerprintDataset(records=records, building_id="toy")


class TestExperimentHarness:
    def test_protocol_overrides(self):
        protocol = ExperimentProtocol(labels_per_floor=4)
        changed = protocol.with_overrides(labels_per_floor=10, train_ratio=0.5)
        assert changed.labels_per_floor == 10
        assert changed.train_ratio == 0.5
        assert protocol.labels_per_floor == 4  # original untouched

    def test_run_single_trial_report(self):
        report = run_single_trial(MajorityLabelClassifier, toy_dataset(),
                                  ExperimentProtocol(), seed=0)
        # Majority classifier gets roughly one floor in three right.
        assert 0.2 <= report.micro_f <= 0.5

    def test_run_repeated_aggregates(self):
        result = run_repeated("majority", MajorityLabelClassifier, toy_dataset(),
                              ExperimentProtocol(repetitions=3))
        assert result.trials == 3
        assert 0.0 <= result.micro_f <= 1.0
        assert result.micro_f_std >= 0.0
        assert result.as_row()["method"] == "majority"

    def test_run_corpus_averages_buildings(self):
        datasets = [toy_dataset(), toy_dataset(per_floor=8, floors=2)]
        result = run_corpus("majority", MajorityLabelClassifier, datasets,
                            ExperimentProtocol(repetitions=2))
        assert result.trials == 4

    def test_run_corpus_requires_datasets(self):
        with pytest.raises(ValueError):
            run_corpus("majority", MajorityLabelClassifier, [],
                       ExperimentProtocol())

    def test_compare_methods(self):
        results = compare_methods({"m1": MajorityLabelClassifier,
                                   "m2": MajorityLabelClassifier},
                                  [toy_dataset()],
                                  ExperimentProtocol(repetitions=1))
        assert [r.method for r in results] == ["m1", "m2"]


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_columns(self):
        rows = [{"method": "GRAFICS", "micro_f": 0.96},
                {"method": "SAE", "micro_f": 0.5}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "GRAFICS" in lines[2]
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]
