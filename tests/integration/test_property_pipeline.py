"""Property-based integration tests over randomly generated record sets.

These tests assert structural invariants of the whole pipeline (it runs, it
predicts only known floors, labeled records keep their floor) rather than
accuracy, so they hold for arbitrary — even adversarial — inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GRAFICS, GraficsConfig, EmbeddingConfig, SignalRecord

FAST = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=10.0,
                                               batch_size=64, seed=0))


@st.composite
def random_building(draw):
    """A random small multi-floor record set with per-floor MAC pools."""
    num_floors = draw(st.integers(min_value=2, max_value=3))
    per_floor = draw(st.integers(min_value=4, max_value=8))
    shared_macs = [f"shared-{i}" for i in range(draw(st.integers(0, 3)))]
    records = []
    for floor in range(num_floors):
        floor_macs = [f"f{floor}-m{i}" for i in range(6)]
        for r in range(per_floor):
            pool = floor_macs + shared_macs
            size = draw(st.integers(min_value=1, max_value=len(pool)))
            chosen = draw(st.permutations(pool))[:size]
            rss = {m: float(draw(st.integers(min_value=-95, max_value=-35)))
                   for m in chosen}
            records.append(SignalRecord(record_id=f"f{floor}-r{r}", rss=rss,
                                        floor=floor))
    return records


class TestPipelineProperties:
    @given(random_building(), st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_fit_and_transductive_labels_are_valid(self, records, budget, seed):
        rng = np.random.default_rng(seed)
        by_floor: dict[int, list[SignalRecord]] = {}
        for record in records:
            by_floor.setdefault(record.floor, []).append(record)
        labels = {}
        for floor, floor_records in by_floor.items():
            picks = rng.choice(len(floor_records),
                               size=min(budget, len(floor_records)),
                               replace=False)
            for p in picks:
                labels[floor_records[int(p)].record_id] = floor

        model = GRAFICS(FAST).fit(records, labels)
        assignments = model.training_floor_assignments()

        # Every training record gets a virtual label drawn from the real floors.
        assert set(assignments) == {r.record_id for r in records}
        assert set(assignments.values()) <= set(by_floor)
        # Labeled records always keep their own label (clustering constraint).
        for rid, floor in labels.items():
            assert assignments[rid] == floor
        # The number of clusters equals the number of labeled samples.
        assert model.cluster_model.num_clusters == len(labels)

    @given(random_building())
    @settings(max_examples=10, deadline=None)
    def test_online_prediction_returns_known_floor(self, records):
        labels = {}
        seen_floors = set()
        for record in records:
            if record.floor not in seen_floors:
                labels[record.record_id] = record.floor
                seen_floors.add(record.floor)
        model = GRAFICS(FAST).fit(records, labels)

        # Build an online sample out of MACs that exist in the training graph.
        template = records[-1]
        online = SignalRecord(record_id="online-probe", rss=dict(template.rss))
        prediction = model.predict(online)
        assert prediction.floor in set(seen_floors)
        # Non-persistent prediction leaves the graph unchanged.
        assert model.graph.num_records == len(records)
