"""Integration tests exercising the full GRAFICS workflow across modules."""

from __future__ import annotations

import pytest

from repro import GRAFICS, GraficsConfig, EmbeddingConfig, SignalRecord
from repro.core.weighting import OffsetWeight
from repro.data import (
    make_experiment_split,
    sample_labels,
    small_test_building,
    subsample_macs,
    train_test_split,
)
from repro.evaluation import evaluate_predictions


FAST = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=60.0, seed=0))


class TestFullWorkflow:
    def test_paper_protocol_reaches_high_f_scores(self, small_building):
        """70/30 split, 4 labels per floor, online inference, micro/macro F."""
        split = make_experiment_split(small_building, train_ratio=0.7,
                                      labels_per_floor=4, seed=1)
        model = GRAFICS(FAST).fit(list(split.train_records), split.labels)
        predicted = {p.record_id: p.floor for p in model.predict_batch(
            [r.without_floor() for r in split.test_records])}
        report = evaluate_predictions(split.test_ground_truth(), predicted)
        assert report.micro_f > 0.85
        assert report.macro_f > 0.85

    def test_more_labels_never_needed_for_ceiling(self, small_building):
        """With 20 labels per floor GRAFICS should also be near ceiling."""
        split = make_experiment_split(small_building, labels_per_floor=20, seed=2)
        model = GRAFICS(FAST).fit(list(split.train_records), split.labels)
        predicted = {p.record_id: p.floor for p in model.predict_batch(
            [r.without_floor() for r in split.test_records])}
        report = evaluate_predictions(split.test_ground_truth(), predicted)
        assert report.micro_f > 0.85

    def test_mac_subsampling_degrades_gracefully(self, small_building):
        """Fig. 17: fewer available MACs should not collapse accuracy to chance."""
        reduced = subsample_macs(small_building, 0.5, seed=0)
        train, test = train_test_split(reduced, seed=0)
        labels = sample_labels(train, labels_per_floor=4, seed=0)
        model = GRAFICS(FAST).fit(train, labels)
        predicted = {p.record_id: p.floor for p in model.predict_batch(
            [r.without_floor() for r in test])}
        truth = {r.record_id: r.floor for r in test}
        report = evaluate_predictions(truth, predicted)
        assert report.micro_f > 0.6

    def test_online_inference_with_new_macs_and_ap_churn(self, trained_grafics,
                                                         small_split):
        """New samples may contain never-seen MACs (AP installation)."""
        base = small_split.test_records[0]
        sample = SignalRecord(
            record_id="churn-sample",
            rss={**dict(base.rss), "newly-installed-ap-1": -60.0,
                 "newly-installed-ap-2": -70.0})
        prediction = trained_grafics.predict(sample)
        assert prediction.floor == base.floor

    def test_ap_removal_then_training_still_works(self, small_building):
        """Dropping an AP from the environment is handled by graph rebuild."""
        removed_mac = small_building.macs[0]
        pruned = small_building.restrict_macs(
            [m for m in small_building.macs if m != removed_mac])
        split = make_experiment_split(pruned, labels_per_floor=4, seed=3)
        model = GRAFICS(FAST).fit(list(split.train_records), split.labels)
        assert model.is_fitted
        assert not model.graph.has_node(
            __import__("repro.core.graph", fromlist=["NodeKind"]).NodeKind.MAC,
            removed_mac)

    def test_weight_offset_choice_is_robust(self, small_building):
        """Section VI-D: different valid offsets give similar performance."""
        split = make_experiment_split(small_building, labels_per_floor=4, seed=0)
        scores = []
        for offset in (110.0, 120.0, 130.0):
            config = GraficsConfig(
                weight_function=OffsetWeight(offset=offset),
                embedding=EmbeddingConfig(samples_per_edge=60.0, seed=0))
            model = GRAFICS(config).fit(list(split.train_records), split.labels)
            predicted = {p.record_id: p.floor for p in model.predict_batch(
                [r.without_floor() for r in split.test_records])}
            scores.append(evaluate_predictions(split.test_ground_truth(),
                                               predicted).micro_f)
        assert max(scores) - min(scores) < 0.15

    def test_persisted_online_samples_grow_the_model(self, small_building):
        split = make_experiment_split(small_building, labels_per_floor=4, seed=5)
        model = GRAFICS(FAST).fit(list(split.train_records), split.labels)
        before = model.graph.num_records
        batch = [r.without_floor() for r in split.test_records[:5]]
        model.predict_batch(batch, persist=True)
        assert model.graph.num_records == before + 5
        # A later prediction can lean on the newly persisted records.
        later = split.test_records[6].without_floor()
        prediction = model.predict(later)
        assert prediction.floor in model.cluster_model.floors


class TestCrossBuildingIsolation:
    def test_models_are_independent_per_building(self):
        building_a = small_test_building(num_floors=2, records_per_floor=30,
                                         aps_per_floor=15, seed=21,
                                         building_id="bldg-a")
        building_b = small_test_building(num_floors=3, records_per_floor=30,
                                         aps_per_floor=15, seed=22,
                                         building_id="bldg-b")
        split_a = make_experiment_split(building_a, labels_per_floor=4, seed=0)
        split_b = make_experiment_split(building_b, labels_per_floor=4, seed=0)
        model_a = GRAFICS(FAST).fit(list(split_a.train_records), split_a.labels)
        model_b = GRAFICS(FAST).fit(list(split_b.train_records), split_b.labels)
        assert set(model_a.cluster_model.floors) == {0, 1}
        assert set(model_b.cluster_model.floors) == {0, 1, 2}
        # A record from building B shares no MAC with building A's model.
        foreign = split_b.test_records[0].without_floor()
        with pytest.raises(Exception):
            model_a.predict(foreign)
