"""Tests for the edge-weight functions (paper Eq. 1–2 and Fig. 16)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weighting import (
    ClippedOffsetWeight,
    OffsetWeight,
    PowerWeight,
    get_weight_function,
)


class TestOffsetWeight:
    def test_paper_default(self):
        f = OffsetWeight()
        assert f(-66.0) == pytest.approx(54.0)
        assert f(-120.0 + 1e-9) > 0

    def test_custom_offset(self):
        assert OffsetWeight(offset=100.0)(-40.0) == pytest.approx(60.0)

    def test_preserves_rss_differences(self):
        f = OffsetWeight()
        assert f(-40.0) - f(-70.0) == pytest.approx(30.0)

    def test_validate_rejects_non_positive(self):
        with pytest.raises(ValueError):
            OffsetWeight(offset=50.0).validate(-60.0)

    @given(st.floats(min_value=-119.0, max_value=-1.0))
    @settings(max_examples=50)
    def test_positive_over_valid_rss_range(self, rss):
        assert OffsetWeight()(rss) > 0


class TestPowerWeight:
    def test_dbm_to_milliwatt(self):
        g = PowerWeight()
        assert g(-30.0) == pytest.approx(1e-3)
        assert g(0.0) == pytest.approx(1.0)

    def test_squashes_differences(self):
        """The paper's Fig. 16 rationale: g makes typical RSS nearly equal."""
        g = PowerWeight()
        f = OffsetWeight()
        g_spread = g(-40.0) - g(-90.0)
        f_spread = f(-40.0) - f(-90.0)
        assert g_spread < 1e-3
        assert f_spread == pytest.approx(50.0)

    @given(st.floats(min_value=-120.0, max_value=0.0))
    @settings(max_examples=50)
    def test_always_positive(self, rss):
        assert PowerWeight()(rss) > 0


class TestClippedOffsetWeight:
    def test_clips_below_offset(self):
        w = ClippedOffsetWeight(offset=120.0, min_weight=1.0)
        assert w(-127.0) == 1.0
        assert w(-60.0) == pytest.approx(60.0)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_weight_function("offset"), OffsetWeight)
        assert isinstance(get_weight_function("power"), PowerWeight)
        assert isinstance(get_weight_function("clipped-offset"), ClippedOffsetWeight)

    def test_kwargs_forwarded(self):
        f = get_weight_function("offset", offset=110.0)
        assert f(-10.0) == pytest.approx(100.0)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown weight function"):
            get_weight_function("nope")
