"""Tests for the end-to-end GRAFICS pipeline and online inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GRAFICS, GraficsConfig, SignalRecord, UnknownEnvironmentError
from repro.core.embedding import ELINEEmbedder, EmbeddingConfig, LINEEmbedder
from repro.core.graph import NodeKind
from repro.core.weighting import PowerWeight


def record(rid, rss, floor=None):
    return SignalRecord(record_id=rid, rss=rss, floor=floor)


class TestGraficsConfig:
    def test_embedding_dimension_override(self):
        config = GraficsConfig(embedding_dimension=16)
        assert config.resolved_embedding_config().dimension == 16

    def test_no_override_when_equal(self):
        config = GraficsConfig(embedding_dimension=8,
                               embedding=EmbeddingConfig(dimension=8))
        assert config.resolved_embedding_config() is config.embedding

    @pytest.mark.parametrize("name, expected", [
        ("eline", ELINEEmbedder),
        ("line", LINEEmbedder),
        ("line-first", LINEEmbedder),
        ("line-combined", LINEEmbedder),
    ])
    def test_make_embedder(self, name, expected):
        embedder = GraficsConfig(embedder=name).make_embedder()
        assert isinstance(embedder, expected)

    def test_unknown_embedder(self):
        with pytest.raises(ValueError):
            GraficsConfig(embedder="deepwalk").make_embedder()

    def test_custom_weight_function(self):
        config = GraficsConfig(weight_function=PowerWeight())
        assert isinstance(config.weight_function, PowerWeight)


class TestFitValidation:
    def test_empty_records(self):
        with pytest.raises(ValueError):
            GRAFICS().fit([])

    def test_requires_some_labels(self):
        records = [record("r1", {"a": -40.0}), record("r2", {"a": -42.0})]
        with pytest.raises(ValueError):
            GRAFICS().fit(records, labels={})

    def test_labels_must_reference_training_records(self):
        records = [record("r1", {"a": -40.0})]
        with pytest.raises(ValueError):
            GRAFICS().fit(records, labels={"zzz": 0})

    def test_labels_default_to_record_floors(self, fast_config):
        records = [
            record("r1", {"a": -40.0, "b": -45.0}, floor=0),
            record("r2", {"a": -42.0, "b": -48.0}, floor=0),
            record("r3", {"c": -40.0, "d": -45.0}, floor=1),
            record("r4", {"c": -42.0, "d": -48.0}, floor=1),
        ]
        model = GRAFICS(fast_config).fit(records)
        assert model.is_fitted
        assert sorted(model.cluster_model.floors) == [0, 1]

    def test_unfitted_model_raises(self):
        model = GRAFICS()
        with pytest.raises(RuntimeError):
            model.predict(record("x", {"a": -40.0}))
        with pytest.raises(RuntimeError):
            model.training_summary()


class TestFittedModel:
    def test_training_summary(self, trained_grafics, small_split):
        summary = trained_grafics.training_summary()
        assert summary["num_records"] == len(small_split.train_records)
        assert summary["num_clusters"] == len(small_split.labels)
        assert summary["embedder"] == "eline"
        assert summary["embedding_dimension"] == 8

    def test_training_assignments_cover_all_records(self, trained_grafics,
                                                    small_split):
        assignments = trained_grafics.training_floor_assignments()
        assert set(assignments) == {r.record_id for r in small_split.train_records}
        floors = set(r.floor for r in small_split.train_records)
        assert set(assignments.values()) <= floors

    def test_labeled_records_keep_their_floor(self, trained_grafics, small_split):
        assignments = trained_grafics.training_floor_assignments()
        for rid, floor in small_split.labels.items():
            assert assignments[rid] == floor

    def test_training_assignments_mostly_correct(self, trained_grafics,
                                                 small_split):
        assignments = trained_grafics.training_floor_assignments()
        truth = small_split.train_ground_truth()
        accuracy = np.mean([assignments[r] == truth[r] for r in truth])
        assert accuracy > 0.8

    def test_record_embedding_shape(self, trained_grafics, small_split):
        rid = small_split.train_records[0].record_id
        assert trained_grafics.record_embedding(rid).shape == (8,)


class TestOnlineInference:
    def test_predict_batch_accuracy(self, trained_grafics, small_split):
        test_records = [r.without_floor() for r in small_split.test_records]
        truth = small_split.test_ground_truth()
        predictions = trained_grafics.predict_batch(test_records)
        assert len(predictions) == len(test_records)
        accuracy = np.mean([p.floor == truth[p.record_id] for p in predictions])
        assert accuracy > 0.8

    def test_single_predict_returns_prediction(self, trained_grafics, small_split):
        sample = small_split.test_records[0].without_floor()
        prediction = trained_grafics.predict(sample)
        assert prediction.record_id == sample.record_id
        assert prediction.floor in trained_grafics.cluster_model.floors
        assert prediction.distance >= 0
        assert prediction.embedding.shape == (8,)

    def test_non_persistent_prediction_restores_graph(self, trained_grafics,
                                                      small_split):
        records_before = trained_grafics.graph.num_records
        macs_before = trained_grafics.graph.num_macs
        sample = SignalRecord(
            record_id="transient-sample",
            rss={**dict(list(small_split.test_records[0].rss.items())[:3]),
                 "never-seen-mac": -70.0})
        trained_grafics.predict(sample, persist=False)
        assert trained_grafics.graph.num_records == records_before
        assert trained_grafics.graph.num_macs == macs_before
        assert not trained_grafics.graph.has_node(NodeKind.RECORD,
                                                  "transient-sample")

    def test_persistent_prediction_keeps_record(self, small_split, fast_config):
        model = GRAFICS(fast_config)
        model.fit(list(small_split.train_records), small_split.labels)
        before = model.graph.num_records
        sample = small_split.test_records[1].without_floor()
        model.predict(sample, persist=True)
        assert model.graph.num_records == before + 1
        assert model.engine.embedding.has_record(sample.record_id)

    def test_out_of_building_sample_rejected(self, trained_grafics):
        alien = record("alien", {"mac-from-another-town": -50.0})
        with pytest.raises(UnknownEnvironmentError):
            trained_grafics.predict(alien)

    def test_duplicate_online_id_rejected(self, trained_grafics, small_split):
        existing = small_split.train_records[0]
        with pytest.raises(ValueError):
            trained_grafics.predict(existing)

    def test_predict_floors_array(self, trained_grafics, small_split):
        records = [r.without_floor() for r in small_split.test_records[:5]]
        floors = trained_grafics.predict_floors(records)
        assert floors.shape == (5,)
        assert set(floors.tolist()) <= set(trained_grafics.cluster_model.floors)

    def test_empty_batch(self, trained_grafics):
        assert trained_grafics.predict_batch([]) == []
