"""Tests for the GraphOverlay delta view (mutation-free online inference).

The overlay's contract is exact equivalence: every composed view must match
— bit for bit — what the same reads would return on a base graph that had
the staged records added directly, while the base graph itself stays
untouched.  These tests pin that equivalence (including a hypothesis sweep
over random staging patterns), the commit replay, and the guard rails.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import BipartiteGraph, NodeKind, build_graph
from repro.core.overlay import GraphOverlay, StaleOverlayError
from repro.core.types import SignalRecord


def record(rid, rss):
    return SignalRecord(record_id=rid, rss=rss)


def base_records(n=8):
    return [record(f"r{i}", {f"m{j}": -50.0 - j
                             for j in range(i % 3, i % 3 + 4)})
            for i in range(n)]


def probe_records():
    """Staged records mixing known MACs, new MACs and shared new MACs."""
    return [
        record("p0", {"m0": -55.0, "m2": -60.0}),
        record("p1", {"m1": -48.0, "fresh-a": -70.0}),
        record("p2", {"fresh-a": -66.0, "fresh-b": -72.0, "m4": -51.0}),
    ]


@pytest.fixture()
def graph():
    return build_graph(base_records())


def mutated_twin(probes):
    """A graph that had the probes added directly (the legacy behaviour)."""
    twin = build_graph(base_records())
    for probe in probes:
        twin.add_record(probe)
    return twin


class TestStaging:
    def test_indices_allocated_past_base_capacity(self, graph):
        overlay = GraphOverlay(graph)
        base_capacity = graph.index_capacity
        node = overlay.add_record(record("p0", {"m0": -55.0, "nu": -60.0}))
        assert node.index == base_capacity
        assert overlay.get_node(NodeKind.MAC, "nu").index == base_capacity + 1
        assert overlay.index_capacity == base_capacity + 2
        assert overlay.base_capacity == base_capacity

    def test_same_indices_as_direct_mutation(self, graph):
        probes = probe_records()
        overlay = GraphOverlay(graph)
        for probe in probes:
            overlay.add_record(probe)
        twin = mutated_twin(probes)
        assert overlay.index_capacity == twin.index_capacity
        assert overlay.record_index_map() == twin.record_index_map()
        assert overlay.mac_index_map() == twin.mac_index_map()

    def test_base_graph_untouched(self, graph):
        version = graph.version
        num_nodes, num_edges = graph.num_nodes, graph.num_edges
        overlay = GraphOverlay(graph)
        for probe in probe_records():
            overlay.add_record(probe)
        assert graph.version == version
        assert graph.num_nodes == num_nodes
        assert graph.num_edges == num_edges
        assert not graph.has_node(NodeKind.RECORD, "p0")
        assert not graph.has_node(NodeKind.MAC, "fresh-a")

    def test_lookups_resolve_base_and_delta(self, graph):
        overlay = GraphOverlay(graph)
        overlay.add_record(record("p0", {"m0": -55.0, "nu": -60.0}))
        assert overlay.has_node(NodeKind.RECORD, "r0")
        assert overlay.has_node(NodeKind.RECORD, "p0")
        assert overlay.has_node(NodeKind.MAC, "nu")
        assert not overlay.has_node(NodeKind.RECORD, "absent")
        assert (overlay.get_node(NodeKind.MAC, "m0").index
                == graph.get_node(NodeKind.MAC, "m0").index)
        assert overlay.node_at(overlay.base_capacity).key == "p0"
        assert overlay.num_edges == graph.num_edges + 2
        assert overlay.num_nodes == graph.num_nodes + 2
        assert [n.key for n in overlay.delta_mac_nodes()] == ["nu"]

    def test_duplicate_record_rejected(self, graph):
        overlay = GraphOverlay(graph)
        with pytest.raises(ValueError, match="already in the graph"):
            overlay.add_record(record("r0", {"m0": -50.0}))
        overlay.add_record(record("p0", {"m0": -55.0}))
        with pytest.raises(ValueError, match="already in the graph"):
            overlay.add_record(record("p0", {"m1": -55.0}))


class TestComposedViews:
    def test_degree_array_matches_mutated_twin(self, graph):
        probes = probe_records()
        overlay = GraphOverlay(graph)
        for probe in probes:
            overlay.add_record(probe)
        np.testing.assert_array_equal(overlay.degree_array(),
                                      mutated_twin(probes).degree_array())

    def test_incident_edges_delta_restriction_matches_twin(self, graph):
        probes = probe_records()
        overlay = GraphOverlay(graph)
        for probe in probes:
            overlay.add_record(probe)
        twin = mutated_twin(probes)
        new_indices = np.array(
            [overlay.get_node(NodeKind.RECORD, p.record_id).index
             for p in probes]
            + [n.index for n in overlay.delta_mac_nodes()])
        for arrays, twin_arrays in zip(
                overlay.incident_edge_arrays(new_indices),
                twin.incident_edge_arrays(new_indices)):
            np.testing.assert_array_equal(arrays, twin_arrays)

    def test_incident_edges_mixed_restriction_matches_twin(self, graph):
        """Restrictions that include base nodes take the general path."""
        probes = probe_records()
        overlay = GraphOverlay(graph)
        for probe in probes:
            overlay.add_record(probe)
        twin = mutated_twin(probes)
        mixed = np.array([
            graph.get_node(NodeKind.RECORD, "r1").index,
            graph.get_node(NodeKind.MAC, "m0").index,
            overlay.get_node(NodeKind.RECORD, "p2").index,
        ])
        for arrays, twin_arrays in zip(overlay.incident_edge_arrays(mixed),
                                       twin.incident_edge_arrays(mixed)):
            np.testing.assert_array_equal(arrays, twin_arrays)

    def test_unknown_mac_indices_compose(self, graph):
        overlay = GraphOverlay(graph)
        for probe in probe_records():
            overlay.add_record(probe)
        known = graph.mac_vocabulary() - {"m0"}
        expected = sorted([graph.get_node(NodeKind.MAC, "m0").index,
                           overlay.get_node(NodeKind.MAC, "fresh-a").index,
                           overlay.get_node(NodeKind.MAC, "fresh-b").index])
        assert sorted(overlay.unknown_mac_indices(known)) == expected
        full = known | {"m0", "fresh-a", "fresh-b"}
        assert overlay.unknown_mac_indices(full) == []


class TestCommit:
    def test_commit_replays_identically(self, graph):
        probes = probe_records()
        overlay = GraphOverlay(graph)
        for probe in probes:
            overlay.add_record(probe)
        overlay.commit()
        twin = mutated_twin(probes)
        assert graph.record_index_map() == twin.record_index_map()
        assert graph.mac_index_map() == twin.mac_index_map()
        assert graph.num_edges == twin.num_edges
        np.testing.assert_array_equal(graph.degree_array(),
                                      twin.degree_array())
        for arrays, twin_arrays in zip(graph.edge_arrays(),
                                       twin.edge_arrays()):
            np.testing.assert_array_equal(arrays, twin_arrays)

    def test_commit_is_terminal(self, graph):
        overlay = GraphOverlay(graph)
        overlay.add_record(record("p0", {"m0": -55.0}))
        overlay.commit()
        with pytest.raises(StaleOverlayError):
            overlay.commit()
        with pytest.raises(StaleOverlayError):
            overlay.add_record(record("p1", {"m0": -52.0}))
        with pytest.raises(StaleOverlayError):
            overlay.degree_array()

    def test_stale_after_base_mutation(self, graph):
        overlay = GraphOverlay(graph)
        overlay.add_record(record("p0", {"m0": -55.0}))
        graph.add_record(record("interloper", {"m0": -45.0}))
        with pytest.raises(StaleOverlayError):
            overlay.degree_array()
        with pytest.raises(StaleOverlayError):
            overlay.add_record(record("p1", {"m1": -52.0}))
        with pytest.raises(StaleOverlayError):
            overlay.commit()


@st.composite
def staged_probes(draw):
    """Random staged records over a key space straddling base and new MACs."""
    count = draw(st.integers(1, 5))
    probes = []
    for i in range(count):
        macs = draw(st.lists(
            st.sampled_from([f"m{j}" for j in range(6)]
                            + [f"x{j}" for j in range(4)]),
            min_size=1, max_size=5, unique=True))
        probes.append(record(
            f"p{i}", {mac: -40.0 - draw(st.integers(0, 50)) for mac in macs}))
    return probes


class TestOverlayEquivalenceProperty:
    @given(staged_probes())
    @settings(max_examples=40, deadline=None)
    def test_views_match_mutated_twin(self, probes):
        graph = build_graph(base_records())
        overlay = GraphOverlay(graph)
        for probe in probes:
            overlay.add_record(probe)
        twin = mutated_twin(probes)

        np.testing.assert_array_equal(overlay.degree_array(),
                                      twin.degree_array())
        assert overlay.record_index_map() == twin.record_index_map()
        assert overlay.mac_index_map() == twin.mac_index_map()
        assert overlay.num_edges == twin.num_edges
        new_indices = np.array(
            [overlay.get_node(NodeKind.RECORD, p.record_id).index
             for p in probes]
            + [n.index for n in overlay.delta_mac_nodes()])
        for arrays, twin_arrays in zip(
                overlay.incident_edge_arrays(new_indices),
                twin.incident_edge_arrays(new_indices)):
            np.testing.assert_array_equal(arrays, twin_arrays)

        # Committing produces the twin exactly.
        overlay.commit()
        np.testing.assert_array_equal(graph.degree_array(),
                                      twin.degree_array())
        for arrays, twin_arrays in zip(graph.edge_arrays(),
                                       twin.edge_arrays()):
            np.testing.assert_array_equal(arrays, twin_arrays)


class TestGraphFastViews:
    """The satellite graph caches the overlay fast path rides on."""

    def test_num_edges_counter_matches_recount(self, graph):
        assert graph.num_edges == sum(
            1 for _ in graph.edges())
        graph.add_record(record("extra", {"m0": -50.0, "zz": -60.0}))
        assert graph.num_edges == sum(1 for _ in graph.edges())
        graph.remove_record("extra", prune_orphaned_macs=True)
        assert graph.num_edges == sum(1 for _ in graph.edges())

    def test_mac_vocabulary_cached_per_version(self, graph):
        first = graph.mac_vocabulary()
        assert first is graph.mac_vocabulary()      # cached object
        assert first == frozenset(graph.mac_index_map())
        graph.add_record(record("extra", {"brand-new": -60.0}))
        second = graph.mac_vocabulary()
        assert second is not first
        assert "brand-new" in second

    def test_index_maps_cached_per_version(self, graph):
        first = graph.mac_index_map()
        assert first is graph.mac_index_map()
        records_first = graph.record_index_map()
        assert records_first is graph.record_index_map()
        graph.add_record(record("extra", {"m0": -60.0}))
        assert graph.mac_index_map() is not first
        assert graph.record_index_map() is not records_first
        assert "extra" in graph.record_index_map()

    def test_unknown_mac_indices(self, graph):
        assert graph.unknown_mac_indices(graph.mac_vocabulary()) == []
        known = graph.mac_vocabulary() - {"m1", "m3"}
        expected = {graph.get_node(NodeKind.MAC, "m1").index,
                    graph.get_node(NodeKind.MAC, "m3").index}
        assert set(graph.unknown_mac_indices(known)) == expected


def test_empty_base_graph_overlay():
    graph = BipartiteGraph()
    overlay = GraphOverlay(graph)
    node = overlay.add_record(record("p0", {"a": -50.0, "b": -60.0}))
    assert node.index == 0
    assert overlay.num_edges == 2
    degrees = overlay.degree_array()
    assert degrees.shape == (3,)
    overlay.commit()
    assert graph.num_records == 1
