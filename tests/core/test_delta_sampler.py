"""Tests for the delta-composed negative sampler and ``sampler_mode``.

The delta sampler (PR 8) replaces the per-predict O(V) negative alias
rebuild of the online cold path with a composition of the base graph's
version-cached table and a tiny table over the overlay-affected indices.
The load-bearing guarantee, pinned by a hypothesis property here, is that
the *composed per-index probabilities equal a full rebuild's exactly* —
same floats, not merely close — under arbitrary stage/commit churn.  The
RNG consumption differs, which is why the mode is an explicit opt-in
(``sampler_mode="delta"``) rather than a silent swap.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GRAFICS, GraficsConfig, EmbeddingConfig
from repro.core.embedding.sampler import (
    DeltaNegativeSampler,
    NegativeSampler,
    SamplerCache,
    unigram_power_distribution,
    validate_sampler_mode,
)
from repro.core.embedding.trainer import clear_sampler_cache
from repro.core.graph import build_graph
from repro.core.overlay import GraphOverlay
from repro.core.types import SignalRecord
from repro.data import make_experiment_split, three_story_campus_building
from repro.obs import runtime as obs_runtime

KNOWN_MACS = [f"m{i}" for i in range(6)]


def record(rid, rss):
    return SignalRecord(record_id=rid, rss=rss)


def base_graph():
    records = [record(f"r{i}", {KNOWN_MACS[j]: -45.0 - 3.0 * j
                                for j in range(i % 3, i % 3 + 3)})
               for i in range(8)]
    return build_graph(records)


def full_rebuild_probabilities(overlay) -> np.ndarray:
    """Per-index probabilities of ``NegativeSampler(overlay.degree_array())``."""
    weights = unigram_power_distribution(overlay.degree_array())
    live = np.flatnonzero(weights > 0)
    compact = weights[live]
    expanded = np.zeros(overlay.index_capacity, dtype=np.float64)
    expanded[live] = compact / compact.sum()
    return expanded


@st.composite
def staged_record_batches(draw):
    """0–3 records mixing known (boundary) and brand-new MACs.

    Degenerate shapes are first-class citizens: an empty batch (no staged
    node at all) and all-boundary records (only known MACs, no new node
    on the MAC side) both have dedicated branches in the sampler.
    """
    count = draw(st.integers(min_value=0, max_value=3))
    records = []
    for i in range(count):
        known = draw(st.lists(st.sampled_from(KNOWN_MACS),
                              min_size=0, max_size=4, unique=True))
        fresh = draw(st.lists(st.integers(min_value=0, max_value=4),
                              min_size=0, max_size=3, unique=True))
        macs = known + [f"new{j}" for j in fresh]
        if not macs:
            macs = [KNOWN_MACS[i % len(KNOWN_MACS)]]
        rss = {mac: -40.0 - float(draw(st.integers(0, 30))) for mac in macs}
        records.append(record(f"staged{i}", rss))
    return records


class TestComposedDistribution:
    @given(first=staged_record_batches(), second=staged_record_batches())
    @settings(max_examples=40, deadline=None)
    def test_probabilities_equal_full_rebuild_under_churn(self, first, second):
        """Composed probabilities == full rebuild, exactly, across commits.

        Stage a batch, compare; commit it into the base; stage another
        batch on the *mutated* base (version bump → cache invalidation and
        re-priming) and compare again.  Equality is exact float equality:
        the composition reuses the cached base weight vector verbatim and
        recomputes only the patched entries, so there is no tolerance to
        hide behind.
        """
        graph = base_graph()
        cache = SamplerCache()
        for tag, batch in (("a", first), ("b", second)):
            overlay = GraphOverlay(graph)
            for staged in batch:
                overlay.add_record(record(f"{tag}-{staged.record_id}",
                                          staged.rss))
            sampler = cache.delta_negative_sampler(overlay)
            np.testing.assert_array_equal(
                sampler.probabilities, full_rebuild_probabilities(overlay))
            overlay.commit()

    def test_no_staged_delta_falls_back_to_base(self):
        graph = base_graph()
        overlay = GraphOverlay(graph)
        sampler = SamplerCache().delta_negative_sampler(overlay)
        assert sampler.delta_size == 0
        np.testing.assert_array_equal(
            sampler.probabilities, full_rebuild_probabilities(overlay))
        draws = sampler.sample(64, 4, np.random.default_rng(0))
        assert draws.shape == (64, 4)

    def test_all_boundary_batch(self):
        """A record observing only known MACs patches no new-node weight."""
        graph = base_graph()
        overlay = GraphOverlay(graph)
        overlay.add_record(record("probe", {m: -50.0 for m in KNOWN_MACS[:3]}))
        sampler = SamplerCache().delta_negative_sampler(overlay)
        np.testing.assert_array_equal(
            sampler.probabilities, full_rebuild_probabilities(overlay))

    def test_empirical_distribution_tracks_probabilities(self):
        graph = base_graph()
        overlay = GraphOverlay(graph)
        overlay.add_record(record("probe", {"m0": -50.0, "newA": -55.0}))
        sampler = SamplerCache().delta_negative_sampler(overlay)
        rng = np.random.default_rng(3)
        counts = np.zeros(overlay.index_capacity)
        for _ in range(40):
            np.add.at(counts, sampler.sample(512, 4, rng).ravel(), 1.0)
        empirical = counts / counts.sum()
        np.testing.assert_allclose(empirical, sampler.probabilities,
                                   atol=5e-3)
        # Zero-probability indices must never be drawn.
        assert counts[sampler.probabilities == 0.0].sum() == 0.0

    def test_all_live_base_indices_patched_disables_base_branch(self):
        """The rejection loop must be unreachable when every live base
        index is patched — otherwise it could never terminate."""
        degrees = np.array([1.0, 2.0])
        base_weights = unigram_power_distribution(degrees)
        stub = SimpleNamespace(base_capacity=2, index_capacity=3)
        patch = (np.array([0, 1, 2], dtype=np.int64),
                 np.array([3.0, 4.0, 5.0]))
        sampler = DeltaNegativeSampler(
            stub, NegativeSampler(degrees), base_weights,
            float(base_weights.sum()), patch=patch)
        assert sampler._base_mass == 0.0
        draws = sampler.sample(256, 2, np.random.default_rng(1))
        patched_weights = unigram_power_distribution(patch[1])
        expected = np.zeros(3)
        expected[:] = patched_weights / patched_weights.sum()
        np.testing.assert_array_equal(sampler.probabilities, expected)
        assert set(np.unique(draws).tolist()) <= {0, 1, 2}


class TestDeltaMemo:
    def test_identical_patch_returns_memoised_sampler(self):
        graph = base_graph()
        cache = SamplerCache()
        probe = record("probe", {"m0": -50.0, "newA": -60.0})
        first_overlay = GraphOverlay(graph)
        first_overlay.add_record(probe)
        second_overlay = GraphOverlay(graph)
        second_overlay.add_record(probe)
        first = cache.delta_negative_sampler(first_overlay)
        second = cache.delta_negative_sampler(second_overlay)
        assert second is first

    def test_different_patch_builds_fresh(self):
        graph = base_graph()
        cache = SamplerCache()
        one = GraphOverlay(graph)
        one.add_record(record("a", {"m0": -50.0}))
        other = GraphOverlay(graph)
        other.add_record(record("a", {"m0": -70.0}))
        assert (cache.delta_negative_sampler(one)
                is not cache.delta_negative_sampler(other))

    def test_base_mutation_invalidates_memo(self):
        graph = base_graph()
        cache = SamplerCache()
        probe = record("probe", {"m0": -50.0})
        overlay = GraphOverlay(graph)
        overlay.add_record(probe)
        first = cache.delta_negative_sampler(overlay)
        graph.add_record(record("committed", {"m1": -48.0}))
        fresh_overlay = GraphOverlay(graph)
        fresh_overlay.add_record(probe)
        assert cache.delta_negative_sampler(fresh_overlay) is not first

    def test_hit_and_rebuild_counters(self):
        clear_sampler_cache()
        tracer, metrics = obs_runtime.enable()
        try:
            dataset = three_story_campus_building(records_per_floor=10,
                                                  seed=7)
            split = make_experiment_split(dataset, labels_per_floor=4,
                                          seed=0)
            model = GRAFICS(GraficsConfig(
                allow_unreachable_clusters=True)).fit(
                    list(split.train_records), split.labels)
            delta_model = model.with_sampler_mode("delta")
            probe = split.test_records[0].without_floor()
            engine = delta_model.engine
            engine.predict(probe)
            assert metrics.counter("delta_sampler_rebuilds_total") >= 1
            hits_before = metrics.counter("delta_sampler_hits_total")
            engine.predict(probe)
            assert metrics.counter("delta_sampler_hits_total") > hits_before
        finally:
            obs_runtime.disable()
            clear_sampler_cache()


class TestSamplerModePlumbing:
    def test_embedding_config_validates_mode(self):
        assert EmbeddingConfig(sampler_mode="delta").sampler_mode == "delta"
        with pytest.raises(ValueError):
            EmbeddingConfig(sampler_mode="bogus")
        with pytest.raises(ValueError):
            validate_sampler_mode("bogus")

    def test_grafics_config_override_resolves(self):
        config = GraficsConfig(sampler_mode="delta")
        assert config.resolved_embedding_config().sampler_mode == "delta"
        assert GraficsConfig().resolved_embedding_config().sampler_mode \
            == "exact"

    def test_with_sampler_mode_clone_shares_fitted_state(self):
        dataset = three_story_campus_building(records_per_floor=10, seed=7)
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        model = GRAFICS(GraficsConfig(allow_unreachable_clusters=True)).fit(
            list(split.train_records), split.labels)
        clone = model.with_sampler_mode("delta")
        assert clone is not model
        assert clone.config.sampler_mode == "delta"
        assert model.config.sampler_mode is None
        assert clone.graph is model.graph
        assert clone.embedding is model.embedding
        with pytest.raises(ValueError):
            model.with_sampler_mode("bogus")

    def test_fit_records_sampler_mode(self):
        dataset = three_story_campus_building(records_per_floor=10, seed=7)
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        model = GRAFICS(GraficsConfig(allow_unreachable_clusters=True)).fit(
            list(split.train_records), split.labels, sampler_mode="delta")
        assert model.config.sampler_mode == "delta"


class TestDeltaModeServing:
    @pytest.fixture(scope="class")
    def campus(self):
        clear_sampler_cache()
        dataset = three_story_campus_building(records_per_floor=40, seed=7)
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        model = GRAFICS(GraficsConfig(
            embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0),
            allow_unreachable_clusters=True)).fit(
                list(split.train_records), split.labels)
        return model, split

    def test_exact_mode_unchanged_by_delta_machinery(self, campus):
        """Byte-identity guard: the exact engine's predictions must not
        depend on whether a delta engine has run (shared caches, scratch)."""
        model, split = campus
        probe = split.test_records[0].without_floor()
        clear_sampler_cache()
        before = model.engine.predict(probe)
        delta_engine = model.with_sampler_mode("delta").engine
        delta_engine.predict(probe)
        after = model.engine.predict(probe)
        assert after.floor == before.floor
        assert after.distance == before.distance
        np.testing.assert_array_equal(after.embedding, before.embedding)

    def test_delta_predictions_deterministic(self, campus):
        model, split = campus
        engine = model.with_sampler_mode("delta").engine
        probe = split.test_records[1].without_floor()
        first = engine.predict(probe)
        second = engine.predict(probe)
        assert first.floor == second.floor
        assert first.distance == second.distance
        np.testing.assert_array_equal(first.embedding, second.embedding)

    def test_floor_accuracy_parity_on_campus_preset(self, campus):
        """Same noise distribution → same floor-identification quality.

        Scored over the whole test split; the gate allows at most one
        borderline record of slack in the delta mode's disfavour (the RNG
        streams differ, so individual marginal records may flip either
        way — the distribution, and therefore the accuracy, must not
        move).
        """
        model, split = campus
        delta_model = model.with_sampler_mode("delta")
        probes = [(r.without_floor(), r.floor) for r in split.test_records]
        exact_hits = sum(model.predict(p).floor == floor
                         for p, floor in probes)
        delta_hits = sum(delta_model.predict(p).floor == floor
                         for p, floor in probes)
        assert delta_hits >= exact_hits - 1

    def test_engine_scratch_buffers_reused(self, campus):
        model, split = campus
        engine = model.engine
        probe = split.test_records[2].without_floor()
        for _ in range(3):
            engine.predict(probe)
        scratch = engine._scratch.edges
        assert scratch is not None
        assert scratch.reuses >= 1
