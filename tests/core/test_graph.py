"""Tests for the bipartite graph model (paper Section IV-A)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import BipartiteGraph, NodeKind, build_graph
from repro.core.types import SignalRecord
from repro.core.weighting import OffsetWeight


def record(rid, rss, floor=None):
    return SignalRecord(record_id=rid, rss=rss, floor=floor)


class TestConstruction:
    def test_build_from_records(self, tiny_records):
        graph = build_graph(tiny_records)
        assert graph.num_records == 6
        assert graph.num_macs == 6
        assert graph.num_edges == sum(len(r) for r in tiny_records)

    def test_build_from_dataset(self, tiny_dataset):
        graph = build_graph(tiny_dataset)
        assert graph.num_records == len(tiny_dataset)

    def test_edge_weights_use_weight_function(self):
        graph = build_graph([record("r1", {"a": -66.0})],
                            weight_function=OffsetWeight(offset=120.0))
        assert graph.edge_weight("a", "r1") == pytest.approx(54.0)

    def test_duplicate_record_rejected(self):
        graph = build_graph([record("r1", {"a": -40.0})])
        with pytest.raises(ValueError):
            graph.add_record(record("r1", {"b": -40.0}))

    def test_shared_macs_create_shared_nodes(self):
        graph = build_graph([record("r1", {"a": -40.0}),
                             record("r2", {"a": -50.0})])
        assert graph.num_macs == 1
        mac_node = graph.get_node(NodeKind.MAC, "a")
        assert graph.degree(mac_node.index) == 2

    def test_invalid_rss_raises(self):
        graph = BipartiteGraph(weight_function=OffsetWeight(offset=50.0))
        with pytest.raises(ValueError):
            graph.add_record(record("r1", {"a": -80.0}))


class TestQueries:
    def test_get_missing_node(self, tiny_records):
        graph = build_graph(tiny_records)
        with pytest.raises(KeyError):
            graph.get_node(NodeKind.MAC, "zzz")
        with pytest.raises(KeyError):
            graph.node_at(10_000)

    def test_edge_weight_missing(self, tiny_records):
        graph = build_graph(tiny_records)
        with pytest.raises(KeyError):
            graph.edge_weight("m1", "b0")

    def test_neighbors_and_degrees(self, tiny_records):
        graph = build_graph(tiny_records)
        node = graph.get_node(NodeKind.RECORD, "a0")
        neighbors = graph.neighbors(node.index)
        assert len(neighbors) == 2
        assert graph.degree(node.index) == 2
        assert graph.weighted_degree(node.index) == pytest.approx(sum(neighbors.values()))

    def test_total_weight_matches_sum_of_edges(self, tiny_records):
        graph = build_graph(tiny_records)
        assert graph.total_weight == pytest.approx(
            sum(e.weight for e in graph.edges()))

    def test_edge_arrays_alignment(self, tiny_records):
        graph = build_graph(tiny_records)
        sources, targets, weights = graph.edge_arrays()
        assert sources.shape == targets.shape == weights.shape
        for s, t, w in zip(sources, targets, weights):
            assert graph.node_at(int(s)).kind is NodeKind.MAC
            assert graph.node_at(int(t)).kind is NodeKind.RECORD
            assert w > 0

    def test_degree_array_covers_capacity(self, tiny_records):
        graph = build_graph(tiny_records)
        degrees = graph.degree_array()
        assert degrees.shape == (graph.index_capacity,)
        assert degrees.sum() == pytest.approx(2 * graph.total_weight)

    def test_index_maps(self, tiny_records):
        graph = build_graph(tiny_records)
        assert set(graph.record_index_map()) == {r.record_id for r in tiny_records}
        assert set(graph.mac_index_map()) == {"m1", "m2", "m3", "m4", "m5", "m6"}

    def test_connected_components(self, tiny_records):
        graph = build_graph(tiny_records)
        components = graph.connected_components()
        # Floors 0 and 1 use disjoint MAC sets, so there are two components.
        assert len(components) == 2
        assert sorted(len(c) for c in components) == [6, 6]

    def test_to_networkx(self, tiny_records):
        nx_graph = build_graph(tiny_records).to_networkx()
        assert nx_graph.number_of_nodes() == 12
        assert nx_graph.number_of_edges() == sum(len(r) for r in tiny_records)


class TestMutation:
    def test_remove_record(self, tiny_records):
        graph = build_graph(tiny_records)
        edges_before = graph.num_edges
        graph.remove_record("a0")
        assert graph.num_records == 5
        assert graph.num_edges == edges_before - 2
        assert not graph.has_node(NodeKind.RECORD, "a0")

    def test_remove_mac_models_ap_removal(self, tiny_records):
        graph = build_graph(tiny_records)
        graph.remove_mac("m2")
        assert not graph.has_node(NodeKind.MAC, "m2")
        node = graph.get_node(NodeKind.RECORD, "a1")
        assert graph.degree(node.index) == 1

    def test_indices_not_reused_after_removal(self, tiny_records):
        graph = build_graph(tiny_records)
        capacity_before = graph.index_capacity
        graph.remove_record("a0")
        new_node = graph.add_record(record("c0", {"m1": -44.0}))
        assert new_node.index >= capacity_before

    def test_incremental_add_creates_new_macs(self, tiny_records):
        graph = build_graph(tiny_records)
        graph.add_record(record("new", {"m1": -50.0, "brand-new-mac": -60.0}))
        assert graph.has_node(NodeKind.MAC, "brand-new-mac")
        assert graph.num_records == 7


@st.composite
def random_records(draw):
    macs = "abcdefgh"
    count = draw(st.integers(min_value=1, max_value=12))
    records = []
    for i in range(count):
        size = draw(st.integers(min_value=1, max_value=len(macs)))
        chosen = draw(st.permutations(list(macs)))[:size]
        rss = {m: float(draw(st.integers(min_value=-100, max_value=-30)))
               for m in chosen}
        records.append(record(f"r{i}", rss))
    return records


class TestGraphProperties:
    @given(random_records())
    @settings(max_examples=40, deadline=None)
    def test_counts_consistent(self, records):
        graph = build_graph(records)
        assert graph.num_records == len(records)
        assert graph.num_edges == sum(len(r) for r in records)
        all_macs = {m for r in records for m in r.rss}
        assert graph.num_macs == len(all_macs)
        # Weighted degree of each record node equals the sum of its weights.
        weight = OffsetWeight()
        for r in records:
            node = graph.get_node(NodeKind.RECORD, r.record_id)
            expected = sum(weight(v) for v in r.rss.values())
            assert graph.weighted_degree(node.index) == pytest.approx(expected)

    @given(random_records())
    @settings(max_examples=20, deadline=None)
    def test_removal_restores_counts(self, records):
        graph = build_graph(records)
        target = records[0]
        graph.remove_record(target.record_id)
        assert graph.num_records == len(records) - 1
        assert graph.num_edges == sum(len(r) for r in records) - len(target)
