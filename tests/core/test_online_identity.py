"""Byte-identity of mutation-free online inference vs the legacy path.

Before this PR, every online prediction mutated the shared graph: the probe
record was inserted, embedded against the frozen model and removed again.
The overlay-based engine must reproduce that path's output *byte for byte*
— same floors, same distances, same embedding bytes — for every mode
(single predicts, ``independent`` batches, joint batches, ``persist`` on
and off) on the campus preset.  The reference below *is* the legacy
implementation, re-enacted through the still-supported mutate-the-graph
route (``BipartiteGraph.add_record`` + generic ``embed_new_nodes``), so a
regression in any composed overlay view or in the RNG consumption order
shows up as a byte mismatch here.

Also pinned: the satellite regressions — non-persisting predictions no
longer bump ``BipartiteGraph.version``, and the version-keyed
``SamplerCache`` entry survives a sequence of cold predicts instead of
being evicted by each one.
"""

from __future__ import annotations

import pytest

from repro.core import GRAFICS, GraficsConfig
from repro.core.embedding import EmbeddingConfig
from repro.core.embedding.trainer import (
    _SAMPLER_CACHE,
    EdgeSamplingTrainer,
    ObjectiveTerms,
    clear_sampler_cache,
)
from repro.core.graph import NodeKind
from repro.core.inference import FloorPrediction
from repro.data import make_experiment_split, three_story_campus_building

CONFIG = GraficsConfig(embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0),
                       allow_unreachable_clusters=True)


def legacy_predict_group(model: GRAFICS, records, persist=False):
    """The pre-overlay online path: mutate, embed, classify, restore.

    A faithful re-enactment of the historical ``_predict_group`` using the
    public mutating graph API and the generic ``embed_new_nodes`` (which
    still serves the mutated-graph case unchanged).
    """
    engine = model.engine
    graph, embedding = engine.graph, engine.embedding
    known_macs = set(graph.mac_index_map())
    for record in records:
        assert not graph.has_node(NodeKind.RECORD, record.record_id)
        assert set(record.rss) & known_macs

    added_macs = []
    for record in records:
        for mac in record.rss:
            if not graph.has_node(NodeKind.MAC, mac):
                added_macs.append(mac)
        graph.add_record(record)

    new_ids = [record.record_id for record in records]
    enlarged = engine.embedder.embed_new_nodes(graph, embedding, new_ids)

    predictions = []
    for record in records:
        vector = enlarged.record_vector(record.record_id)
        floor, distance = engine.cluster_model.predict_with_distance(vector)
        predictions.append(FloorPrediction(record_id=record.record_id,
                                           floor=floor, distance=distance,
                                           embedding=vector.copy()))
    if persist:
        engine.embedding = enlarged
    else:
        for record in records:
            graph.remove_record(record.record_id)
        for mac in added_macs:
            node = graph.get_node(NodeKind.MAC, mac)
            if graph.degree(node.index) == 0:
                graph.remove_mac(mac)
    return predictions


def legacy_predict_batch(model, records, persist=False, independent=False):
    if independent:
        return [legacy_predict_group(model, [record], persist=persist)[0]
                for record in records]
    return legacy_predict_group(model, list(records), persist=persist)


def assert_identical(new_predictions, legacy_predictions):
    assert len(new_predictions) == len(legacy_predictions)
    for new, old in zip(new_predictions, legacy_predictions):
        assert new.record_id == old.record_id
        assert new.floor == old.floor
        assert new.distance == old.distance
        assert new.embedding.tobytes() == old.embedding.tobytes()


@pytest.fixture(scope="module")
def campus_split():
    dataset = three_story_campus_building(records_per_floor=40, seed=7)
    return make_experiment_split(dataset, labels_per_floor=4, seed=0)


def fit_campus(campus_split) -> GRAFICS:
    """A deterministic fit — two calls produce byte-identical models."""
    return GRAFICS(CONFIG).fit(list(campus_split.train_records),
                               campus_split.labels)


@pytest.fixture(scope="module")
def probes(campus_split):
    return [r.without_floor() for r in campus_split.test_records[:8]]


class TestByteIdentityToLegacyPath:
    """Acceptance: all predict modes byte-identical to the pre-PR code."""

    def test_single_predicts(self, campus_split, probes):
        model_new, model_old = fit_campus(campus_split), fit_campus(campus_split)
        new = [model_new.predict(p) for p in probes]
        old = [legacy_predict_group(model_old, [p])[0] for p in probes]
        assert_identical(new, old)

    def test_independent_batch(self, campus_split, probes):
        model_new, model_old = fit_campus(campus_split), fit_campus(campus_split)
        assert_identical(
            model_new.predict_batch(probes, independent=True),
            legacy_predict_batch(model_old, probes, independent=True))

    def test_joint_batch(self, campus_split, probes):
        model_new, model_old = fit_campus(campus_split), fit_campus(campus_split)
        assert_identical(model_new.predict_batch(probes),
                         legacy_predict_batch(model_old, probes))

    def test_persist_single_then_follow_ups(self, campus_split, probes):
        model_new, model_old = fit_campus(campus_split), fit_campus(campus_split)
        assert_identical(
            [model_new.predict(p, persist=True) for p in probes[:3]],
            legacy_predict_batch(model_old, probes[:3], persist=True,
                                 independent=True))
        # The committed graph + embedding serve follow-ups identically.
        assert_identical(
            model_new.predict_batch(probes[3:], independent=True),
            legacy_predict_batch(model_old, probes[3:], independent=True))
        assert (model_new.graph.record_index_map()
                == model_old.graph.record_index_map())
        assert (model_new.graph.mac_index_map()
                == model_old.graph.mac_index_map())

    def test_persist_joint_batch(self, campus_split, probes):
        model_new, model_old = fit_campus(campus_split), fit_campus(campus_split)
        assert_identical(model_new.predict_batch(probes[:4], persist=True),
                         legacy_predict_batch(model_old, probes[:4],
                                              persist=True))
        assert_identical([model_new.predict(probes[5])],
                         [legacy_predict_group(model_old, [probes[5]])[0]])

    def test_repeated_predicts_stay_identical(self, campus_split, probes):
        """Repeat predictions of one record never drift (no hidden state)."""
        model = fit_campus(campus_split)
        first = model.predict(probes[0])
        for _ in range(3):
            again = model.predict(probes[0])
            assert again.floor == first.floor
            assert again.distance == first.distance
            assert again.embedding.tobytes() == first.embedding.tobytes()


class TestMutationFreeRegression:
    """Satellite: no version bumps, sampler-cache entries survive predicts."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_sampler_cache()
        yield
        clear_sampler_cache()

    def test_cold_predicts_do_not_bump_version(self, campus_split, probes):
        model = fit_campus(campus_split)
        version = model.graph.version
        for probe in probes:
            model.predict(probe)
        model.predict_batch(probes, independent=True)
        model.predict_batch(probes)
        assert model.graph.version == version

    def test_sampler_cache_survives_cold_predicts(self, campus_split, probes):
        model = fit_campus(campus_split)
        terms = ObjectiveTerms(second_order=True, symmetric=True)
        config = CONFIG.resolved_embedding_config()
        # Populate the cache for the model's graph at its current version.
        EdgeSamplingTrainer(model.graph, config, terms)
        misses_before = _SAMPLER_CACHE.misses
        hits_before = _SAMPLER_CACHE.hits

        for probe in probes[:4]:
            model.predict(probe)

        # Pre-PR behaviour: each predict bumped the version twice (insert +
        # restore), so this second construction missed every time.  Now the
        # entry is still live and served as a hit, with no new misses.
        trainer = EdgeSamplingTrainer(model.graph, config, terms)
        assert _SAMPLER_CACHE.misses == misses_before
        assert _SAMPLER_CACHE.hits > hits_before
        assert trainer._edge_sampler is _SAMPLER_CACHE.edge_sampler(model.graph)

    def test_predicts_do_not_grow_index_capacity(self, campus_split, probes):
        """The legacy path retired one index per transient record; the
        overlay path allocates past the base capacity without consuming it."""
        model = fit_campus(campus_split)
        capacity = model.graph.index_capacity
        for probe in probes:
            model.predict(probe)
        assert model.graph.index_capacity == capacity
