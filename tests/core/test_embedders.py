"""Tests for the LINE and E-LINE embedders (paper Section IV-B, V-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.embedding import ELINEEmbedder, EmbeddingConfig, LINEEmbedder
from repro.core.graph import build_graph
from repro.core.types import SignalRecord


def record(rid, rss, floor=None):
    return SignalRecord(record_id=rid, rss=rss, floor=floor)


FAST = EmbeddingConfig(samples_per_edge=30.0, seed=0, batch_size=128)


@pytest.fixture(scope="module")
def two_floor_graph():
    """Two 'floors' with internally-overlapping but mutually-disjoint MAC sets."""
    records = []
    for i in range(8):
        records.append(record(f"f0-{i}", {f"a{j}": -50.0 - j
                                          for j in range(i % 3, i % 3 + 3)}))
        records.append(record(f"f1-{i}", {f"b{j}": -50.0 - j
                                          for j in range(i % 3, i % 3 + 3)}))
    return build_graph(records)


class TestLINEEmbedder:
    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            LINEEmbedder(order="third")

    @pytest.mark.parametrize("order", ["first", "second", "combined"])
    def test_fit_produces_addressable_embeddings(self, two_floor_graph, order):
        embedding = LINEEmbedder(FAST, order=order).fit(two_floor_graph)
        assert embedding.dimension == FAST.dimension
        vec = embedding.record_vector("f0-0")
        assert vec.shape == (FAST.dimension,)
        assert embedding.mac_vector("a0").shape == (FAST.dimension,)
        assert np.isfinite(vec).all()

    def test_unknown_record_raises(self, two_floor_graph):
        embedding = LINEEmbedder(FAST).fit(two_floor_graph)
        with pytest.raises(KeyError):
            embedding.record_vector("missing")
        with pytest.raises(KeyError):
            embedding.mac_vector("missing")


class TestELINEEmbedder:
    def test_fit_separates_disjoint_floors(self, two_floor_graph):
        config = EmbeddingConfig(samples_per_edge=150.0, seed=0, dropout=0.0)
        embedding = ELINEEmbedder(config).fit(two_floor_graph)
        f0 = embedding.record_matrix([f"f0-{i}" for i in range(8)])
        f1 = embedding.record_matrix([f"f1-{i}" for i in range(8)])
        within = np.linalg.norm(f0 - f0.mean(axis=0), axis=1).mean()
        between = np.linalg.norm(f0.mean(axis=0) - f1.mean(axis=0))
        assert between > within

    def test_record_matrix_row_alignment(self, two_floor_graph):
        embedding = ELINEEmbedder(FAST).fit(two_floor_graph)
        ids = ["f0-0", "f1-3", "f0-5"]
        matrix = embedding.record_matrix(ids)
        for row, rid in zip(matrix, ids):
            np.testing.assert_array_equal(row, embedding.record_vector(rid))

    def test_training_loss_recorded(self, two_floor_graph):
        embedding = ELINEEmbedder(FAST).fit(two_floor_graph)
        assert len(embedding.training_loss) > 0
        assert all(np.isfinite(embedding.training_loss))


class TestIncrementalEmbedding:
    def test_embed_new_nodes_keeps_existing_frozen(self, two_floor_graph):
        embedder = ELINEEmbedder(FAST)
        embedding = embedder.fit(two_floor_graph)
        old_vector = embedding.record_vector("f0-0").copy()

        new_record = record("online-1", {"a0": -55.0, "a1": -60.0})
        two_floor_graph.add_record(new_record)
        try:
            enlarged = embedder.embed_new_nodes(two_floor_graph, embedding,
                                                ["online-1"])
            assert enlarged.has_record("online-1")
            np.testing.assert_array_equal(enlarged.record_vector("f0-0"),
                                          old_vector)
            assert np.isfinite(enlarged.record_vector("online-1")).all()
            # The original embedding object is untouched.
            assert not embedding.has_record("online-1")
        finally:
            two_floor_graph.remove_record("online-1")

    def test_new_record_lands_near_its_neighborhood(self, two_floor_graph):
        config = EmbeddingConfig(samples_per_edge=150.0, seed=0, dropout=0.0)
        embedder = ELINEEmbedder(config)
        embedding = embedder.fit(two_floor_graph)
        new_record = record("online-2", {"a0": -50.0, "a1": -52.0, "a2": -54.0})
        two_floor_graph.add_record(new_record)
        try:
            enlarged = embedder.embed_new_nodes(two_floor_graph, embedding,
                                                ["online-2"])
            vec = enlarged.record_vector("online-2")
            f0_centroid = enlarged.record_matrix(
                [f"f0-{i}" for i in range(8)]).mean(axis=0)
            f1_centroid = enlarged.record_matrix(
                [f"f1-{i}" for i in range(8)]).mean(axis=0)
            assert np.linalg.norm(vec - f0_centroid) < np.linalg.norm(vec - f1_centroid)
        finally:
            two_floor_graph.remove_record("online-2")

    def test_embed_new_nodes_validation(self, two_floor_graph):
        embedder = ELINEEmbedder(FAST)
        embedding = embedder.fit(two_floor_graph)
        with pytest.raises(ValueError):
            embedder.embed_new_nodes(two_floor_graph, embedding, ["f0-0"])
        with pytest.raises(ValueError):
            embedder.embed_new_nodes(two_floor_graph, embedding, ["not-there"])

    def test_empty_new_ids_is_noop(self, two_floor_graph):
        embedder = ELINEEmbedder(FAST)
        embedding = embedder.fit(two_floor_graph)
        assert embedder.embed_new_nodes(two_floor_graph, embedding, []) is embedding


class TestWarmStart:
    """Warm-start initialisation for continuous-learning retrains."""

    def test_warm_start_is_deterministic(self, two_floor_graph):
        embedder = ELINEEmbedder(FAST)
        previous = embedder.fit(two_floor_graph)
        once = ELINEEmbedder(FAST).fit(two_floor_graph, warm_start=previous)
        twice = ELINEEmbedder(FAST).fit(two_floor_graph, warm_start=previous)
        assert np.array_equal(once.ego, twice.ego)
        assert np.array_equal(once.context, twice.context)

    def test_warm_start_changes_initialisation(self, two_floor_graph):
        embedder = ELINEEmbedder(FAST)
        previous = embedder.fit(two_floor_graph)
        cold = ELINEEmbedder(FAST).fit(two_floor_graph)
        warm = ELINEEmbedder(FAST).fit(two_floor_graph, warm_start=previous)
        assert not np.array_equal(cold.ego, warm.ego)

    def test_surviving_nodes_start_from_previous_vectors(self, two_floor_graph):
        from repro.core.embedding.trainer import EdgeSamplingTrainer, ObjectiveTerms

        embedder = ELINEEmbedder(FAST)
        previous = embedder.fit(two_floor_graph)
        trainer = EdgeSamplingTrainer(two_floor_graph, FAST,
                                      ObjectiveTerms(second_order=True))
        ego, context = trainer.initial_embeddings(warm_start=previous)
        for record_id, row in previous.record_index.items():
            assert np.array_equal(ego[row], previous.ego[row])
            assert np.array_equal(context[row], previous.context[row])

    def test_new_nodes_keep_random_initialisation(self, two_floor_graph):
        """A node absent from the previous embedding draws a fresh vector."""
        from repro.core.embedding.trainer import EdgeSamplingTrainer, ObjectiveTerms
        from repro.core.graph import build_graph as rebuild

        embedder = ELINEEmbedder(FAST)
        previous = embedder.fit(two_floor_graph)
        enlarged = rebuild(
            [record(n.key, {m: -50.0 for m in ("a0", "a1")})
             for n in two_floor_graph.record_nodes()]
            + [record("brand-new", {"a0": -40.0, "never-seen": -45.0})])
        trainer = EdgeSamplingTrainer(enlarged, FAST,
                                      ObjectiveTerms(second_order=True))
        ego, _ = trainer.initial_embeddings(warm_start=previous)
        new_index = enlarged.record_index_map()["brand-new"]
        scale = FAST.init_scale / FAST.dimension
        assert np.all(np.abs(ego[new_index]) <= scale)
        assert not np.array_equal(ego[new_index], np.zeros(FAST.dimension))

    def test_dimension_mismatch_rejected(self, two_floor_graph):
        previous = ELINEEmbedder(FAST).fit(two_floor_graph)
        smaller = EmbeddingConfig(dimension=4, samples_per_edge=30.0, seed=0)
        with pytest.raises(ValueError, match="dimension"):
            ELINEEmbedder(smaller).fit(two_floor_graph, warm_start=previous)

    def test_line_supports_warm_start_too(self, two_floor_graph):
        previous = LINEEmbedder(FAST).fit(two_floor_graph)
        warm = LINEEmbedder(FAST).fit(two_floor_graph, warm_start=previous)
        assert warm.dimension == previous.dimension
