"""Tests for model persistence and the multi-building service."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GRAFICS, GraficsConfig, EmbeddingConfig, UnknownEnvironmentError
from repro.core.persistence import load_model, save_model
from repro.core.registry import MultiBuildingFloorService
from repro.core.weighting import PowerWeight
from repro.data import make_experiment_split, sample_labels, small_test_building


class TestPersistence:
    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_model(GRAFICS(), tmp_path / "model.npz")

    def test_round_trip_preserves_predictions(self, trained_grafics, small_split,
                                               tmp_path):
        path = tmp_path / "grafics.npz"
        save_model(trained_grafics, path)
        restored = load_model(path)

        assert restored.is_fitted
        assert restored.cluster_model.num_clusters == \
            trained_grafics.cluster_model.num_clusters
        assert restored.graph.num_records == trained_grafics.graph.num_records
        assert restored.graph.num_edges == trained_grafics.graph.num_edges

        # Training-record embeddings survive (up to row reordering).
        some_id = small_split.train_records[0].record_id
        np.testing.assert_allclose(restored.record_embedding(some_id),
                                   trained_grafics.record_embedding(some_id))

        # Online predictions from the restored model match the original.
        probes = [r.without_floor() for r in small_split.test_records[:10]]
        original = [p.floor for p in trained_grafics.predict_batch(probes)]
        reloaded = [p.floor for p in restored.predict_batch(probes)]
        agreement = np.mean([a == b for a, b in zip(original, reloaded)])
        assert agreement >= 0.9

    def test_custom_weight_function_round_trip(self, small_split, tmp_path):
        config = GraficsConfig(
            weight_function=PowerWeight(),
            embedding=EmbeddingConfig(samples_per_edge=15.0, seed=0))
        model = GRAFICS(config).fit(list(small_split.train_records),
                                    small_split.labels)
        path = tmp_path / "power.npz"
        save_model(model, path)
        restored = load_model(path)
        assert isinstance(restored.config.weight_function, PowerWeight)

    def test_unknown_custom_weight_function_rejected(self, small_split, tmp_path):
        from repro.core.weighting import WeightFunction

        class Odd(WeightFunction):
            def __call__(self, rss: float) -> float:
                return abs(rss)

        config = GraficsConfig(
            weight_function=Odd(),
            embedding=EmbeddingConfig(samples_per_edge=15.0, seed=0))
        model = GRAFICS(config).fit(list(small_split.train_records),
                                    small_split.labels)
        with pytest.raises(ValueError, match="custom weight function"):
            save_model(model, tmp_path / "custom.npz")


class TestMultiBuildingFloorService:
    @pytest.fixture(scope="class")
    def service(self):
        config = GraficsConfig(
            embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0))
        service = MultiBuildingFloorService(config)
        held_out = {}
        for building_id, seed in (("bldg-east", 31), ("bldg-west", 32)):
            dataset = small_test_building(num_floors=3, records_per_floor=40,
                                          aps_per_floor=20, seed=seed,
                                          building_id=building_id)
            split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
            training = dataset.subset(split.train_records)
            service.fit_building(training, split.labels)
            held_out[building_id] = list(split.test_records)
        service._held_out = held_out  # stashed for the tests below
        return service

    def test_min_overlap_validation(self):
        with pytest.raises(ValueError):
            MultiBuildingFloorService(min_overlap=0.0)

    def test_building_ids(self, service):
        assert service.building_ids == ["bldg-east", "bldg-west"]
        assert service.model_for("bldg-east").is_fitted
        with pytest.raises(KeyError):
            service.model_for("nowhere")

    def test_identify_building(self, service):
        for building_id, records in service._held_out.items():
            probe = records[0].without_floor()
            identified, overlap = service.identify_building(probe)
            assert identified == building_id
            assert overlap > 0.5

    def test_predict_routes_to_correct_building(self, service):
        for building_id, records in service._held_out.items():
            probes = records[:8]
            predictions = service.predict_batch(
                [p.without_floor() for p in probes])
            assert all(p.building_id == building_id for p in predictions)
            assert all(p.mac_overlap > 0.5 for p in predictions)
            floor_accuracy = np.mean([prediction.floor == probe.floor
                                      for prediction, probe
                                      in zip(predictions, probes)])
            assert floor_accuracy > 0.6

    def test_unknown_environment_rejected(self, service):
        from repro import SignalRecord

        alien = SignalRecord(record_id="alien", rss={"mars-ap": -50.0})
        with pytest.raises(UnknownEnvironmentError):
            service.predict(alien)

    def test_empty_service_rejects_queries(self):
        from repro import SignalRecord

        service = MultiBuildingFloorService()
        with pytest.raises(RuntimeError):
            service.identify_building(SignalRecord(record_id="x",
                                                   rss={"a": -40.0}))

    def test_fit_corpus_requires_labels_per_building(self):
        service = MultiBuildingFloorService()
        dataset = small_test_building(num_floors=2, records_per_floor=10,
                                      aps_per_floor=8, building_id="lonely")
        with pytest.raises(ValueError, match="no labels provided"):
            service.fit_corpus([dataset], {})

    def test_predict_batch(self, service):
        records = service._held_out["bldg-east"]
        probes = [r.without_floor() for r in records[2:6]]
        predictions = service.predict_batch(probes)
        assert len(predictions) == 4
        assert all(p.building_id == "bldg-east" for p in predictions)
