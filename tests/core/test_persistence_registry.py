"""Tests for model persistence and the multi-building service."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GRAFICS, GraficsConfig, EmbeddingConfig, UnknownEnvironmentError
from repro.core.persistence import load_model, load_registry, save_model, save_registry
from repro.core.registry import MultiBuildingFloorService
from repro.core.weighting import PowerWeight
from repro.data import make_experiment_split, small_test_building


class TestPersistence:
    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_model(GRAFICS(), tmp_path / "model.npz")

    def test_round_trip_preserves_predictions(self, trained_grafics, small_split,
                                               tmp_path):
        path = tmp_path / "grafics.npz"
        save_model(trained_grafics, path)
        restored = load_model(path)

        assert restored.is_fitted
        assert restored.cluster_model.num_clusters == \
            trained_grafics.cluster_model.num_clusters
        assert restored.graph.num_records == trained_grafics.graph.num_records
        assert restored.graph.num_edges == trained_grafics.graph.num_edges

        # Training-record embeddings survive (up to row reordering).
        some_id = small_split.train_records[0].record_id
        np.testing.assert_allclose(restored.record_embedding(some_id),
                                   trained_grafics.record_embedding(some_id))

        # Online predictions from the restored model match the original.
        probes = [r.without_floor() for r in small_split.test_records[:10]]
        original = [p.floor for p in trained_grafics.predict_batch(probes)]
        reloaded = [p.floor for p in restored.predict_batch(probes)]
        agreement = np.mean([a == b for a, b in zip(original, reloaded)])
        assert agreement >= 0.9

    def test_custom_weight_function_round_trip(self, small_split, tmp_path):
        config = GraficsConfig(
            weight_function=PowerWeight(),
            embedding=EmbeddingConfig(samples_per_edge=15.0, seed=0))
        model = GRAFICS(config).fit(list(small_split.train_records),
                                    small_split.labels)
        path = tmp_path / "power.npz"
        save_model(model, path)
        restored = load_model(path)
        assert isinstance(restored.config.weight_function, PowerWeight)

    def test_unknown_custom_weight_function_rejected(self, small_split, tmp_path):
        from repro.core.weighting import WeightFunction

        class Odd(WeightFunction):
            def __call__(self, rss: float) -> float:
                return abs(rss)

        config = GraficsConfig(
            weight_function=Odd(),
            embedding=EmbeddingConfig(samples_per_edge=15.0, seed=0))
        model = GRAFICS(config).fit(list(small_split.train_records),
                                    small_split.labels)
        with pytest.raises(ValueError, match="custom weight function"):
            save_model(model, tmp_path / "custom.npz")


@pytest.fixture(scope="module")
def service():
    config = GraficsConfig(
        embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0))
    service = MultiBuildingFloorService(config)
    held_out = {}
    for building_id, seed in (("bldg-east", 31), ("bldg-west", 32)):
        dataset = small_test_building(num_floors=3, records_per_floor=40,
                                      aps_per_floor=20, seed=seed,
                                      building_id=building_id)
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        training = dataset.subset(split.train_records)
        service.fit_building(training, split.labels)
        held_out[building_id] = list(split.test_records)
    service._held_out = held_out  # stashed for the tests below
    return service


class TestMultiBuildingFloorService:
    def test_min_overlap_validation(self):
        with pytest.raises(ValueError):
            MultiBuildingFloorService(min_overlap=0.0)

    def test_building_ids(self, service):
        assert service.building_ids == ["bldg-east", "bldg-west"]
        assert service.model_for("bldg-east").is_fitted
        with pytest.raises(KeyError):
            service.model_for("nowhere")

    def test_identify_building(self, service):
        for building_id, records in service._held_out.items():
            probe = records[0].without_floor()
            identified, overlap = service.identify_building(probe)
            assert identified == building_id
            assert overlap > 0.5

    def test_predict_routes_to_correct_building(self, service):
        for building_id, records in service._held_out.items():
            probes = records[:8]
            predictions = service.predict_batch(
                [p.without_floor() for p in probes])
            assert all(p.building_id == building_id for p in predictions)
            assert all(p.mac_overlap > 0.5 for p in predictions)
            floor_accuracy = np.mean([prediction.floor == probe.floor
                                      for prediction, probe
                                      in zip(predictions, probes)])
            assert floor_accuracy > 0.6

    def test_unknown_environment_rejected(self, service):
        from repro import SignalRecord

        alien = SignalRecord(record_id="alien", rss={"mars-ap": -50.0})
        with pytest.raises(UnknownEnvironmentError):
            service.predict(alien)

    def test_empty_service_rejects_queries(self):
        from repro import SignalRecord

        service = MultiBuildingFloorService()
        with pytest.raises(RuntimeError):
            service.identify_building(SignalRecord(record_id="x",
                                                   rss={"a": -40.0}))

    def test_fit_corpus_requires_labels_per_building(self):
        service = MultiBuildingFloorService()
        dataset = small_test_building(num_floors=2, records_per_floor=10,
                                      aps_per_floor=8, building_id="lonely")
        with pytest.raises(ValueError, match="no labels provided"):
            service.fit_corpus([dataset], {})

    def test_predict_batch(self, service):
        records = service._held_out["bldg-east"]
        probes = [r.without_floor() for r in records[2:6]]
        predictions = service.predict_batch(probes)
        assert len(predictions) == 4
        assert all(p.building_id == "bldg-east" for p in predictions)

    def test_empty_rss_record_rejected_not_crashing(self, service):
        """Regression: an empty-RSS record used to ZeroDivisionError in
        identify_building; it must be rejected as an unknown environment."""
        from repro import SignalRecord

        probe = SignalRecord(record_id="hollow", rss={"m": -50.0})
        probe.rss.clear()  # defeat the constructor's non-empty validation
        with pytest.raises(UnknownEnvironmentError, match="no RSS readings"):
            service.identify_building(probe)
        with pytest.raises(UnknownEnvironmentError, match="no RSS readings"):
            service.predict(probe)

    def test_grouped_predict_batch_matches_sequential(self, service):
        """Satellite: the grouped batch path must reproduce per-record
        ``predict`` exactly, for an interleaved multi-building stream."""
        east = service._held_out["bldg-east"][:5]
        west = service._held_out["bldg-west"][:5]
        probes = [r.without_floor()
                  for pair in zip(east, west) for r in pair]
        sequential = [service.predict(record) for record in probes]
        assert service.predict_batch(probes) == sequential

    def test_install_model_requires_fitted(self):
        service = MultiBuildingFloorService()
        with pytest.raises(ValueError, match="unfitted"):
            service.install_model("b", GRAFICS())

    def test_remove_building(self, service):
        scratch = MultiBuildingFloorService(service.config)
        for building_id in service.building_ids:
            scratch.install_model(building_id, service.model_for(building_id),
                                  vocabulary=service.vocabulary_for(building_id))
        scratch.remove_building("bldg-east")
        assert scratch.building_ids == ["bldg-west"]
        with pytest.raises(KeyError):
            scratch.remove_building("bldg-east")


class TestRegistryPersistence:
    def test_round_trip_preserves_service(self, service, tmp_path):
        directory = tmp_path / "registry"
        save_registry(service, directory)
        restored = load_registry(directory)

        assert restored.building_ids == service.building_ids
        assert restored.min_overlap == service.min_overlap
        # Registration (tie-break) order survives the round trip.
        assert list(restored.vocabularies) == list(service.vocabularies)
        assert restored.vocabularies == service.vocabularies

        for building_id, records in service._held_out.items():
            probes = [r.without_floor() for r in records[:3]]
            original = service.predict_batch(probes)
            reloaded = restored.predict_batch(probes)
            assert [p.building_id for p in reloaded] == \
                [p.building_id for p in original]
            assert [p.mac_overlap for p in reloaded] == \
                [p.mac_overlap for p in original]
            floors_agree = np.mean([a.floor == b.floor
                                    for a, b in zip(original, reloaded)])
            assert floors_agree >= 0.6

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_registry(tmp_path)

    def test_resave_after_reorder_keeps_models_with_their_buildings(
            self, service, tmp_path):
        """Model files are named by building id, so overwriting a registry
        whose registration order changed can never file one building's
        model under another building's id."""
        directory = tmp_path / "registry"
        save_registry(service, directory)

        reordered = MultiBuildingFloorService(service.config,
                                              min_overlap=service.min_overlap)
        for building_id in reversed(service.building_ids):
            reordered.install_model(building_id,
                                    service.model_for(building_id),
                                    vocabulary=service.vocabulary_for(building_id))
        save_registry(reordered, directory)

        restored = load_registry(directory)
        assert list(restored.vocabularies) == list(reordered.vocabularies)
        for building_id, records in service._held_out.items():
            probe = records[0].without_floor()
            assert restored.predict(probe).building_id == building_id
