"""Unit and property tests for SignalRecord / FingerprintDataset."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import MISSING_RSS, FingerprintDataset, SignalRecord, records_to_matrix


def record(rid, rss, floor=None, **kw):
    return SignalRecord(record_id=rid, rss=rss, floor=floor, **kw)


class TestSignalRecord:
    def test_requires_readings(self):
        with pytest.raises(ValueError):
            record("empty", {})

    def test_basic_properties(self):
        r = record("r1", {"a": -40.0, "b": -70.0}, floor=2, device="d1",
                   timestamp=3.0)
        assert len(r) == 2
        assert r.macs == frozenset({"a", "b"})
        assert r.is_labeled
        assert r.device == "d1"

    def test_unlabeled(self):
        assert not record("r1", {"a": -40.0}).is_labeled

    def test_rss_is_copied(self):
        source = {"a": -40.0}
        r = record("r1", source)
        source["b"] = -50.0
        assert "b" not in r.rss

    def test_overlap_ratio_identical(self):
        r1 = record("r1", {"a": -40.0, "b": -50.0})
        r2 = record("r2", {"a": -45.0, "b": -55.0})
        assert r1.overlap_ratio(r2) == 1.0

    def test_overlap_ratio_disjoint(self):
        r1 = record("r1", {"a": -40.0})
        r2 = record("r2", {"b": -40.0})
        assert r1.overlap_ratio(r2) == 0.0

    def test_overlap_ratio_partial(self):
        r1 = record("r1", {"a": -40.0, "b": -50.0})
        r2 = record("r2", {"b": -45.0, "c": -55.0})
        assert r1.overlap_ratio(r2) == pytest.approx(1.0 / 3.0)

    def test_restrict_to_keeps_subset(self):
        r = record("r1", {"a": -40.0, "b": -50.0, "c": -60.0}, floor=1)
        restricted = r.restrict_to({"a", "c"})
        assert restricted is not None
        assert restricted.macs == frozenset({"a", "c"})
        assert restricted.floor == 1

    def test_restrict_to_empty_returns_none(self):
        r = record("r1", {"a": -40.0})
        assert r.restrict_to({"zzz"}) is None

    def test_without_floor(self):
        r = record("r1", {"a": -40.0}, floor=3)
        stripped = r.without_floor()
        assert stripped.floor is None
        assert stripped.rss == r.rss
        assert stripped.record_id == r.record_id

    @given(st.sets(st.text(min_size=1, max_size=4), min_size=1, max_size=8),
           st.sets(st.text(min_size=1, max_size=4), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_overlap_ratio_properties(self, macs_a, macs_b):
        r1 = record("r1", {m: -50.0 for m in macs_a})
        r2 = record("r2", {m: -60.0 for m in macs_b})
        ratio = r1.overlap_ratio(r2)
        assert 0.0 <= ratio <= 1.0
        assert ratio == pytest.approx(r2.overlap_ratio(r1))
        if macs_a == macs_b:
            assert ratio == 1.0


class TestFingerprintDataset:
    def test_duplicate_ids_rejected(self):
        r = record("r1", {"a": -40.0})
        with pytest.raises(ValueError):
            FingerprintDataset(records=[r, record("r1", {"b": -40.0})])

    def test_add_rejects_duplicates(self):
        ds = FingerprintDataset(records=[record("r1", {"a": -40.0})])
        with pytest.raises(ValueError):
            ds.add(record("r1", {"b": -40.0}))

    def test_container_protocol(self, tiny_dataset):
        assert len(tiny_dataset) == 6
        assert tiny_dataset[0].record_id == "a0"
        assert [r.record_id for r in tiny_dataset][:2] == ["a0", "a1"]

    def test_macs_preserve_first_appearance_order(self, tiny_dataset):
        assert tiny_dataset.macs == ["m1", "m2", "m3", "m4", "m5", "m6"]

    def test_floors_sorted(self, tiny_dataset):
        assert tiny_dataset.floors == [0, 1]

    def test_labeled_unlabeled_partition(self):
        ds = FingerprintDataset(records=[
            record("r1", {"a": -40.0}, floor=0),
            record("r2", {"a": -42.0}),
        ])
        assert [r.record_id for r in ds.labeled_records] == ["r1"]
        assert [r.record_id for r in ds.unlabeled_records] == ["r2"]

    def test_records_on_floor(self, tiny_dataset):
        assert len(tiny_dataset.records_on_floor(0)) == 3
        assert len(tiny_dataset.records_on_floor(7)) == 0

    def test_subset_keeps_metadata(self, tiny_dataset):
        subset = tiny_dataset.subset(tiny_dataset.records[:2])
        assert len(subset) == 2
        assert subset.building_id == tiny_dataset.building_id

    def test_restrict_macs_drops_empty_records(self, tiny_dataset):
        restricted = tiny_dataset.restrict_macs({"m1"})
        ids = {r.record_id for r in restricted}
        assert ids == {"a0", "a2"}

    def test_to_matrix_shape(self, tiny_dataset):
        matrix, macs = tiny_dataset.to_matrix()
        assert matrix.shape == (6, 6)
        assert macs == tiny_dataset.macs


class TestRecordsToMatrix:
    def test_missing_values_filled(self):
        records = [record("r1", {"a": -40.0}), record("r2", {"b": -50.0})]
        matrix, macs = records_to_matrix(records)
        assert macs == ["a", "b"]
        assert matrix[0, 0] == -40.0
        assert matrix[0, 1] == MISSING_RSS
        assert matrix[1, 0] == MISSING_RSS

    def test_explicit_mac_order_ignores_unknown(self):
        records = [record("r1", {"a": -40.0, "zzz": -40.0})]
        matrix, macs = records_to_matrix(records, mac_order=["a", "b"])
        assert macs == ["a", "b"]
        assert matrix.shape == (1, 2)
        assert matrix[0, 1] == MISSING_RSS

    def test_custom_missing_value(self):
        records = [record("r1", {"a": -40.0})]
        matrix, _ = records_to_matrix(records, mac_order=["a", "b"],
                                      missing_value=0.0)
        assert matrix[0, 1] == 0.0

    @given(st.lists(st.sets(st.sampled_from("abcdef"), min_size=1, max_size=5),
                    min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_matrix_round_trip_of_present_values(self, mac_sets):
        records = [record(f"r{i}", {m: -40.0 - i for m in macs})
                   for i, macs in enumerate(mac_sets)]
        matrix, macs = records_to_matrix(records)
        for i, r in enumerate(records):
            for mac, rss in r.rss.items():
                assert matrix[i, macs.index(mac)] == rss
        # Entries not present in a record must carry the sentinel.
        present = sum(len(r.rss) for r in records)
        assert np.sum(matrix != MISSING_RSS) == present
