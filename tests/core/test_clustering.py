"""Tests for the proximity-based hierarchical clustering (paper Section IV-C)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering.hierarchical import (
    ProximityClustering,
    average_pairwise_distance,
)


def blob(center, count, spread, rng):
    return center + rng.normal(0.0, spread, size=(count, len(center)))


class TestAveragePairwiseDistance:
    def test_matches_manual_computation(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 3.0]])
        manual = (3.0 + np.sqrt(10.0)) / 2.0
        assert average_pairwise_distance(a, b) == pytest.approx(manual)

    def test_single_vectors(self):
        assert average_pairwise_distance(np.array([1.0, 0.0]),
                                         np.array([4.0, 4.0])) == pytest.approx(5.0)


class TestValidation:
    def test_requires_labels(self):
        clustering = ProximityClustering()
        with pytest.raises(ValueError):
            clustering.fit(["a", "b"], np.zeros((2, 2)), {})

    def test_rejects_unknown_labeled_ids(self):
        clustering = ProximityClustering()
        with pytest.raises(ValueError):
            clustering.fit(["a"], np.zeros((1, 2)), {"zzz": 0})

    def test_rejects_duplicate_ids(self):
        clustering = ProximityClustering()
        with pytest.raises(ValueError):
            clustering.fit(["a", "a"], np.zeros((2, 2)), {"a": 0})

    def test_rejects_misshaped_embeddings(self):
        clustering = ProximityClustering()
        with pytest.raises(ValueError):
            clustering.fit(["a", "b"], np.zeros((3, 2)), {"a": 0})


class TestClusteringBehaviour:
    def test_two_well_separated_blobs(self):
        rng = np.random.default_rng(0)
        points = np.vstack([blob([0.0, 0.0], 20, 0.1, rng),
                            blob([10.0, 10.0], 20, 0.1, rng)])
        ids = [f"r{i}" for i in range(40)]
        labels = {"r0": 0, "r20": 1}
        result = ProximityClustering().fit(ids, points, labels)
        assert result.num_clusters == 2
        for i in range(20):
            assert result.predicted_floor(f"r{i}") == 0
        for i in range(20, 40):
            assert result.predicted_floor(f"r{i}") == 1

    def test_multiple_labels_per_floor_allowed(self):
        rng = np.random.default_rng(1)
        points = np.vstack([blob([0.0, 0.0], 15, 0.1, rng),
                            blob([8.0, 8.0], 15, 0.1, rng)])
        ids = [f"r{i}" for i in range(30)]
        labels = {"r0": 0, "r1": 0, "r15": 1, "r16": 1}
        result = ProximityClustering().fit(ids, points, labels)
        # One cluster per labeled sample.
        assert result.num_clusters == 4
        assert result.floors() == [0, 1]
        for i in range(15):
            assert result.predicted_floor(f"r{i}") == 0
        for i in range(15, 30):
            assert result.predicted_floor(f"r{i}") == 1

    def test_each_cluster_has_exactly_one_label(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(25, 4))
        ids = [f"r{i}" for i in range(25)]
        labels = {"r0": 0, "r5": 1, "r10": 2}
        result = ProximityClustering().fit(ids, points, labels)
        assert result.num_clusters == len(labels)
        for cluster_id, members in result.cluster_members.items():
            labeled_members = [m for m in members if m in labels]
            assert len(labeled_members) == 1
            assert result.cluster_labels[cluster_id] == labels[labeled_members[0]]

    def test_every_record_assigned_exactly_once(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(18, 3))
        ids = [f"r{i}" for i in range(18)]
        labels = {"r0": 0, "r9": 1}
        result = ProximityClustering().fit(ids, points, labels)
        assert set(result.assignments) == set(ids)
        all_members = [m for members in result.cluster_members.values()
                       for m in members]
        assert sorted(all_members) == sorted(ids)

    def test_single_record_single_label(self):
        result = ProximityClustering().fit(["only"], np.zeros((1, 2)), {"only": 4})
        assert result.num_clusters == 1
        assert result.predicted_floor("only") == 4

    def test_merge_history_and_fraction_views(self):
        rng = np.random.default_rng(4)
        points = np.vstack([blob([0.0, 0.0], 10, 0.1, rng),
                            blob([5.0, 5.0], 10, 0.1, rng)])
        ids = [f"r{i}" for i in range(20)]
        result = ProximityClustering().fit(ids, points, {"r0": 0, "r10": 1})
        assert len(result.merges) == 18  # 20 singletons -> 2 clusters
        start = result.assignments_at_fraction(0.0)
        assert len(set(start.values())) == 20
        end = result.assignments_at_fraction(1.0)
        assert len(set(end.values())) == 2
        mid = result.assignments_at_fraction(0.5)
        assert 2 <= len(set(mid.values())) <= 20
        with pytest.raises(ValueError):
            result.assignments_at_fraction(1.5)

    def test_merge_distances_reported(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(10, 2))
        ids = [f"r{i}" for i in range(10)]
        result = ProximityClustering().fit(ids, points, {"r0": 0})
        assert all(step.distance >= 0 for step in result.merges)
        assert all(step.merged_size >= 2 for step in result.merges)


class TestClusteringProperties:
    @given(st.integers(min_value=6, max_value=30),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_invariants_on_random_data(self, count, num_labels, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(count, 3))
        ids = [f"r{i}" for i in range(count)]
        label_positions = rng.choice(count, size=min(num_labels, count),
                                     replace=False)
        labels = {f"r{int(p)}": int(i % 3) for i, p in enumerate(label_positions)}
        result = ProximityClustering().fit(ids, points, labels)
        # Exactly one cluster per labeled record, every record assigned,
        # every cluster labeled with its labeled member's floor.
        assert result.num_clusters == len(labels)
        assert set(result.assignments) == set(ids)
        for cluster_id, members in result.cluster_members.items():
            labeled = [m for m in members if m in labels]
            assert len(labeled) == 1
            assert result.cluster_labels[cluster_id] == labels[labeled[0]]
        for rid, floor in labels.items():
            assert result.predicted_floor(rid) == floor
