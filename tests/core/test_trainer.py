"""Tests for the shared edge-sampling SGD engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.embedding.base import EmbeddingConfig
from repro.core.embedding.trainer import EdgeSamplingTrainer, ObjectiveTerms, sigmoid
from repro.core.graph import build_graph
from repro.core.types import SignalRecord


def record(rid, rss):
    return SignalRecord(record_id=rid, rss=rss)


@pytest.fixture()
def small_graph(tiny_records):
    return build_graph(tiny_records)


class TestSigmoid:
    def test_range_and_midpoint(self):
        assert sigmoid(np.array([0.0])) == pytest.approx(0.5)
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert 0.0 <= values[0] < 1e-6
        assert 1.0 - 1e-6 < values[1] <= 1.0

    def test_no_overflow_warning(self):
        with np.errstate(over="raise"):
            sigmoid(np.array([-1e9, 1e9]))


class TestObjectiveTerms:
    def test_requires_at_least_one_term(self):
        with pytest.raises(ValueError):
            ObjectiveTerms(first_order=False, second_order=False, symmetric=False)


class TestEmbeddingConfig:
    @pytest.mark.parametrize("kwargs", [
        {"dimension": 0},
        {"learning_rate": 0.0},
        {"negative_samples": 0},
        {"samples_per_edge": 0.0},
        {"batch_size": 0},
        {"dropout": 1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EmbeddingConfig(**kwargs)


class TestEdgeSamplingTrainer:
    def test_rejects_empty_graph(self):
        from repro.core.graph import BipartiteGraph

        with pytest.raises(ValueError):
            EdgeSamplingTrainer(BipartiteGraph(), EmbeddingConfig(),
                                ObjectiveTerms())

    def test_initial_embeddings_shape(self, small_graph):
        config = EmbeddingConfig(dimension=6, seed=0)
        trainer = EdgeSamplingTrainer(small_graph, config, ObjectiveTerms())
        ego, context = trainer.initial_embeddings()
        assert ego.shape == (small_graph.index_capacity, 6)
        assert context.shape == ego.shape
        assert not np.array_equal(ego, context)

    def test_total_samples_scales_with_edges(self, small_graph):
        config = EmbeddingConfig(samples_per_edge=10.0)
        trainer = EdgeSamplingTrainer(small_graph, config, ObjectiveTerms())
        assert trainer.total_samples() == 10 * small_graph.num_edges

    def test_training_reduces_loss(self, small_graph):
        config = EmbeddingConfig(samples_per_edge=200.0, seed=0, dropout=0.0,
                                 batch_size=64)
        trainer = EdgeSamplingTrainer(small_graph, config,
                                      ObjectiveTerms(second_order=True,
                                                     symmetric=True))
        ego, context = trainer.initial_embeddings()
        losses = trainer.train(ego, context)
        assert len(losses) > 3
        early = np.mean(losses[:3])
        late = np.mean(losses[-3:])
        assert late < early

    def test_shape_validation(self, small_graph):
        config = EmbeddingConfig(seed=0)
        trainer = EdgeSamplingTrainer(small_graph, config, ObjectiveTerms())
        ego, context = trainer.initial_embeddings()
        with pytest.raises(ValueError):
            trainer.train(ego, context[:, :4])
        with pytest.raises(ValueError):
            trainer.train(ego[:2], context[:2])
        with pytest.raises(ValueError):
            trainer.train(ego, context, trainable=np.ones(3, dtype=bool))

    def test_frozen_rows_never_change(self, small_graph):
        config = EmbeddingConfig(samples_per_edge=50.0, seed=0)
        trainer = EdgeSamplingTrainer(small_graph, config, ObjectiveTerms())
        ego, context = trainer.initial_embeddings()
        trainable = np.zeros(small_graph.index_capacity, dtype=bool)
        trainable[:2] = True
        ego_before, context_before = ego.copy(), context.copy()
        trainer.train(ego, context, trainable=trainable)
        np.testing.assert_array_equal(ego[~trainable], ego_before[~trainable])
        np.testing.assert_array_equal(context[~trainable],
                                      context_before[~trainable])
        assert not np.array_equal(ego[trainable], ego_before[trainable])

    def test_restrict_to_nodes_limits_positive_edges(self, small_graph):
        config = EmbeddingConfig(seed=0)
        from repro.core.graph import NodeKind

        node = small_graph.get_node(NodeKind.RECORD, "a0")
        trainer = EdgeSamplingTrainer(small_graph, config, ObjectiveTerms(),
                                      restrict_to_nodes=np.array([node.index]))
        assert trainer.num_sampled_edges == small_graph.degree(node.index)

    def test_restrict_to_isolated_nodes_rejected(self, small_graph):
        config = EmbeddingConfig(seed=0)
        unused_index = small_graph.index_capacity  # beyond live nodes
        with pytest.raises((ValueError, IndexError)):
            EdgeSamplingTrainer(small_graph, config, ObjectiveTerms(),
                                restrict_to_nodes=np.array([unused_index + 5]))

    def test_second_order_pulls_neighbors_together(self):
        """Two records sharing all MACs should end closer than unrelated ones."""
        records = [
            record("x1", {"a": -50.0, "b": -55.0}),
            record("x2", {"a": -52.0, "b": -57.0}),
            record("y1", {"c": -50.0, "d": -55.0}),
            record("y2", {"c": -52.0, "d": -57.0}),
        ]
        graph = build_graph(records)
        config = EmbeddingConfig(samples_per_edge=400.0, seed=1, dropout=0.0)
        trainer = EdgeSamplingTrainer(graph, config,
                                      ObjectiveTerms(second_order=True,
                                                     symmetric=True))
        ego, context = trainer.initial_embeddings()
        trainer.train(ego, context)
        index = graph.record_index_map()
        same = np.linalg.norm(ego[index["x1"]] - ego[index["x2"]])
        cross = np.linalg.norm(ego[index["x1"]] - ego[index["y1"]])
        assert same < cross
