"""Tests for the graph version counter and the incremental array views.

``BipartiteGraph.version`` is the key the sampler cache builds on, and
``degree_array`` is maintained incrementally; these tests pin the two
invariants everything relies on:

* any mutation bumps the version (and versions are never reused), and
* the incremental/rebuilt views always equal a from-scratch rebuild,
  bit for bit, through arbitrary churn.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import BipartiteGraph, NodeKind
from repro.core.types import SignalRecord


def record(rid, rss):
    return SignalRecord(record_id=rid, rss=rss)


def naive_degree_array(graph: BipartiteGraph) -> np.ndarray:
    """The historical from-scratch implementation."""
    degrees = np.zeros(graph.index_capacity, dtype=np.float64)
    for node in graph.nodes():
        degrees[node.index] = graph.weighted_degree(node.index)
    return degrees


class TestVersionCounter:
    def test_every_mutation_bumps(self):
        graph = BipartiteGraph()
        seen = {graph.version}

        def check():
            assert graph.version not in seen
            seen.add(graph.version)

        graph.add_record(record("r0", {"m0": -50.0, "m1": -60.0}))
        check()
        graph.add_mac("m2")
        check()
        graph.add_record(record("r1", {"m0": -55.0}))
        check()
        graph.remove_record("r1")
        check()
        graph.remove_mac("m2")
        check()

    def test_fetching_existing_node_does_not_bump(self):
        graph = BipartiteGraph()
        graph.add_record(record("r0", {"m0": -50.0}))
        version = graph.version
        graph.add_mac("m0")            # already present
        assert graph.version == version

    def test_reads_do_not_bump(self):
        graph = BipartiteGraph()
        graph.add_record(record("r0", {"m0": -50.0, "m1": -60.0}))
        version = graph.version
        graph.edge_arrays()
        graph.degree_array()
        graph.incident_edge_arrays(np.array([0]))
        graph.nodes()
        assert graph.version == version


class TestEdgeArraysOwnership:
    def test_returned_arrays_are_safe_to_mutate(self):
        graph = BipartiteGraph()
        graph.add_record(record("r0", {"m0": -50.0, "m1": -60.0}))
        sources, targets, weights = graph.edge_arrays()
        weights[:] = -1.0
        sources2, targets2, weights2 = graph.edge_arrays()
        assert (weights2 > 0).all()
        np.testing.assert_array_equal(sources, sources2)


@st.composite
def churn_script(draw):
    """A sequence of add/remove operations over a small key space."""
    steps = draw(st.lists(st.tuples(st.sampled_from(["add", "remove"]),
                                    st.integers(0, 14)),
                          min_size=1, max_size=40))
    return steps


class TestIncrementalViewsUnderChurn:
    @given(churn_script())
    @settings(max_examples=60, deadline=None)
    def test_views_match_fresh_rebuild(self, steps):
        graph = BipartiteGraph()
        live = {}
        counter = 0
        rng = np.random.default_rng(0)
        for action, slot in steps:
            if action == "add" and slot not in live:
                rid = f"r{counter}"
                counter += 1
                macs = {f"m{(slot + j) % 6}": -40.0 - float(rng.integers(0, 50))
                        for j in range(1 + slot % 3)}
                graph.add_record(record(rid, macs))
                live[slot] = rid
            elif action == "remove" and slot in live:
                graph.remove_record(live.pop(slot),
                                    prune_orphaned_macs=bool(slot % 2))
        if not live:
            return

        # Incremental degree array == from-scratch recompute, bit for bit.
        np.testing.assert_array_equal(graph.degree_array(),
                                      naive_degree_array(graph))
        # Memoised edge arrays == a mirror built by iterating edges().
        sources, targets, weights = graph.edge_arrays()
        mirror = [(e.mac_index, e.record_index, e.weight)
                  for e in graph.edges()]
        np.testing.assert_array_equal(sources, [m for m, _, _ in mirror])
        np.testing.assert_array_equal(targets, [r for _, r, _ in mirror])
        np.testing.assert_array_equal(weights, [w for _, _, w in mirror])

        # incident_edge_arrays on a subset == mask-filtered full arrays.
        some = [graph.get_node(NodeKind.RECORD, rid).index
                for rid in list(live.values())[:2]]
        wanted = np.zeros(graph.index_capacity, dtype=bool)
        wanted[some] = True
        keep = wanted[sources] | wanted[targets]
        inc_sources, inc_targets, inc_weights = graph.incident_edge_arrays(
            np.array(some))
        np.testing.assert_array_equal(inc_sources, sources[keep])
        np.testing.assert_array_equal(inc_targets, targets[keep])
        np.testing.assert_array_equal(inc_weights, weights[keep])
