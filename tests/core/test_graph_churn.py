"""Property tests for graph churn under interleaved add/remove operations.

The streaming window maintainer leans on three invariants of
:class:`BipartiteGraph` that these tests pin down under arbitrary
interleavings of ``add_record`` / ``remove_record`` / ``remove_mac``:

1. a retired dense index is never reused (embedding matrices indexed by
   node index stay valid across removals);
2. ``edge_arrays()`` and ``degree_array()`` always agree with a
   from-scratch rebuild of the surviving structure;
3. orphaned-MAC pruning removes exactly the MACs no live record still
   senses.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import BipartiteGraph, NodeKind
from repro.core.types import SignalRecord

MACS = [f"ap-{i}" for i in range(8)]


class _Mirror:
    """Reference bookkeeping: what the graph should contain after each op."""

    def __init__(self):
        self.records: dict[str, dict[str, float]] = {}  # rid -> live edges
        self.macs: set[str] = set()                     # live MAC nodes

    def add_record(self, rid, rss):
        self.records[rid] = dict(rss)
        self.macs.update(rss)

    def remove_record(self, rid, prune):
        rss = self.records.pop(rid)
        if prune:
            for mac in rss:
                if mac in self.macs and not any(
                        mac in other for other in self.records.values()):
                    self.macs.discard(mac)

    def remove_mac(self, mac):
        self.macs.discard(mac)
        for rss in self.records.values():
            rss.pop(mac, None)

    def edges(self):
        return {(mac, rid): rss[mac]
                for rid, rss in self.records.items() for mac in rss}


def _assert_consistent(graph: BipartiteGraph, mirror: _Mirror):
    # Node sets match the mirror exactly.
    assert {n.key for n in graph.record_nodes()} == set(mirror.records)
    assert {n.key for n in graph.mac_nodes()} == mirror.macs

    # Live indices are unique and within capacity.
    live_indices = [n.index for n in graph.nodes()]
    assert len(live_indices) == len(set(live_indices))
    assert all(0 <= i < graph.index_capacity for i in live_indices)

    # edge_arrays agrees with the mirror's surviving edge set.
    sources, targets, weights = graph.edge_arrays()
    observed = {}
    for s, t, w in zip(sources, targets, weights):
        mac = graph.node_at(int(s))
        rid = graph.node_at(int(t))
        assert mac.kind is NodeKind.MAC and rid.kind is NodeKind.RECORD
        observed[(mac.key, rid.key)] = float(w)
    expected = {key: rss + 120.0 for key, rss in mirror.edges().items()}
    assert observed.keys() == expected.keys()
    for key, weight in expected.items():
        assert observed[key] == weight

    # degree_array: zeros on retired indices, weighted degrees on live ones.
    degrees = graph.degree_array()
    assert degrees.shape == (graph.index_capacity,)
    expected_degrees = np.zeros(graph.index_capacity)
    for (mac, rid), weight in expected.items():
        expected_degrees[graph.get_node(NodeKind.MAC, mac).index] += weight
        expected_degrees[graph.get_node(NodeKind.RECORD, rid).index] += weight
    assert np.allclose(degrees, expected_degrees)

    # ...and everything matches a graph rebuilt from scratch.
    rebuilt = BipartiteGraph()
    for rid, rss in mirror.records.items():
        if rss:
            rebuilt.add_record(SignalRecord(record_id=rid, rss=rss))
    assert graph.num_edges == rebuilt.num_edges
    assert graph.total_weight == rebuilt.total_weight


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_interleaved_churn_matches_rebuild_and_never_reuses_indices(data):
    graph = BipartiteGraph()
    mirror = _Mirror()
    retired: set[int] = set()
    next_rid = 0

    num_ops = data.draw(st.integers(min_value=1, max_value=40), label="num_ops")
    for _ in range(num_ops):
        choices = ["add"]
        if mirror.records:
            choices.append("remove_record")
        if mirror.macs:
            choices.append("remove_mac")
        op = data.draw(st.sampled_from(choices), label="op")

        if op == "add":
            macs = data.draw(st.lists(st.sampled_from(MACS), min_size=1,
                                      max_size=4, unique=True), label="macs")
            rss = {mac: -40.0 - 2.0 * i for i, mac in enumerate(macs)}
            rid = f"r{next_rid}"
            next_rid += 1
            before = graph.index_capacity
            node = graph.add_record(SignalRecord(record_id=rid, rss=rss))
            mirror.add_record(rid, rss)
            # Fresh nodes only ever take fresh indices.
            assert node.index >= before
            assert node.index not in retired
            for mac in rss:
                assert graph.get_node(NodeKind.MAC, mac).index not in retired
        elif op == "remove_record":
            rid = data.draw(st.sampled_from(sorted(mirror.records)),
                            label="remove_record")
            prune = data.draw(st.booleans(), label="prune")
            doomed = {mac for mac in mirror.records[rid]
                      if mac in mirror.macs and not any(
                          mac in other for other_id, other
                          in mirror.records.items() if other_id != rid)}
            retired.add(graph.get_node(NodeKind.RECORD, rid).index)
            if prune:
                retired.update(graph.get_node(NodeKind.MAC, mac).index
                               for mac in doomed)
            pruned = graph.remove_record(rid, prune_orphaned_macs=prune)
            mirror.remove_record(rid, prune)
            if prune:
                assert set(pruned) == doomed
            else:
                assert pruned == []
        else:
            mac = data.draw(st.sampled_from(sorted(mirror.macs)),
                            label="remove_mac")
            retired.add(graph.get_node(NodeKind.MAC, mac).index)
            graph.remove_mac(mac)
            mirror.remove_mac(mac)

        _assert_consistent(graph, mirror)

    # Capacity counts every index ever assigned; retired ones stay burned.
    assert graph.index_capacity == graph.num_nodes + len(retired)
