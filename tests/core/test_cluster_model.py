"""Tests for the nearest-centroid floor classifier (paper Section V-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clustering.hierarchical import ProximityClustering
from repro.core.clustering.model import ClusterModel, FloorCluster
from repro.core.embedding.base import EmbeddingConfig, GraphEmbedding


def cluster(cluster_id, floor, centroid, members=("x",)):
    return FloorCluster(cluster_id=cluster_id, floor=floor,
                        centroid=np.asarray(centroid, dtype=float),
                        member_record_ids=tuple(members))


class TestClusterModel:
    def test_requires_clusters(self):
        with pytest.raises(ValueError):
            ClusterModel([])

    def test_predict_nearest_centroid(self):
        model = ClusterModel([
            cluster(0, 0, [0.0, 0.0], members=("a",)),
            cluster(1, 1, [10.0, 0.0], members=("b",)),
        ])
        assert model.predict(np.array([1.0, 0.0])) == 0
        assert model.predict(np.array([9.0, 0.0])) == 1

    def test_predict_batch(self):
        model = ClusterModel([
            cluster(0, 2, [0.0, 0.0]),
            cluster(1, 5, [4.0, 4.0]),
        ])
        floors = model.predict_batch(np.array([[0.1, 0.1], [3.9, 4.2]]))
        np.testing.assert_array_equal(floors, [2, 5])

    def test_predict_with_distance(self):
        model = ClusterModel([cluster(0, 3, [1.0, 1.0])])
        floor, distance = model.predict_with_distance(np.array([4.0, 5.0]))
        assert floor == 3
        assert distance == pytest.approx(5.0)

    def test_dimension_mismatch(self):
        model = ClusterModel([cluster(0, 0, [0.0, 0.0])])
        with pytest.raises(ValueError):
            model.predict_batch(np.zeros((2, 3)))

    def test_floors_and_centroids(self):
        model = ClusterModel([
            cluster(0, 1, [0.0, 0.0]),
            cluster(1, 1, [1.0, 1.0]),
            cluster(2, 4, [2.0, 2.0]),
        ])
        assert model.floors == [1, 4]
        assert model.num_clusters == 3
        assert model.centroid_matrix().shape == (3, 2)

    def test_cluster_for(self):
        model = ClusterModel([cluster(0, 0, [0.0], members=("a", "b"))])
        assert model.cluster_for("a").floor == 0
        assert model.cluster_for("nope") is None

    def test_multiple_clusters_same_floor(self):
        """Several labeled samples per floor mean several clusters per floor."""
        model = ClusterModel([
            cluster(0, 7, [0.0, 0.0]),
            cluster(1, 7, [10.0, 10.0]),
        ])
        assert model.predict(np.array([9.0, 9.0])) == 7
        assert model.predict(np.array([0.5, 0.0])) == 7


class TestFromClustering:
    def test_centroids_are_member_means(self):
        rng = np.random.default_rng(0)
        points = np.vstack([rng.normal(0.0, 0.1, size=(10, 3)),
                            rng.normal(5.0, 0.1, size=(10, 3))])
        ids = [f"r{i}" for i in range(20)]
        clustering = ProximityClustering().fit(ids, points, {"r0": 0, "r10": 1})

        record_index = {rid: i for i, rid in enumerate(ids)}
        embedding = GraphEmbedding(ego=points, context=points.copy(),
                                   record_index=record_index, mac_index={},
                                   config=EmbeddingConfig(dimension=3))
        model = ClusterModel.from_clustering(clustering, embedding)
        assert model.num_clusters == 2
        for floor_cluster in model.clusters:
            member_rows = [record_index[m]
                           for m in floor_cluster.member_record_ids]
            np.testing.assert_allclose(floor_cluster.centroid,
                                       points[member_rows].mean(axis=0))
            assert floor_cluster.size == len(member_rows)
