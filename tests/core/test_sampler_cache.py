"""Tests for the version-keyed sampler cache and the online fast paths.

The cache lets repeated trainer constructions over an unchanged graph reuse
the alias samplers instead of re-running the O(V+E) builds; the regression
tests here pin the core guarantee — predictions are byte-identical with and
without caching — and the graph bookkeeping it relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GRAFICS, GraficsConfig
from repro.core.embedding import ELINEEmbedder
from repro.core.embedding.trainer import (
    _SAMPLER_CACHE,
    EdgeSamplingTrainer,
    ObjectiveTerms,
    clear_sampler_cache,
)
from repro.core.graph import NodeKind, build_graph
from repro.core.types import SignalRecord
from repro.data import make_experiment_split, small_test_building

ELINE_TERMS = ObjectiveTerms(second_order=True, symmetric=True)


def record(rid, rss):
    return SignalRecord(record_id=rid, rss=rss)


@pytest.fixture()
def graph():
    records = [record(f"r{i}", {f"m{j}": -50.0 - j
                                for j in range(i % 3, i % 3 + 4)})
               for i in range(10)]
    return build_graph(records)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_sampler_cache()
    yield
    clear_sampler_cache()


class TestSamplerCache:
    def test_same_version_reuses_samplers(self, graph):
        config = GraficsConfig().resolved_embedding_config()
        first = EdgeSamplingTrainer(graph, config, ELINE_TERMS)
        second = EdgeSamplingTrainer(graph, config, ELINE_TERMS)
        assert second._edge_sampler is first._edge_sampler
        assert second._negative_sampler is first._negative_sampler
        assert _SAMPLER_CACHE.hits == 2

    def test_mutation_invalidates(self, graph):
        config = GraficsConfig().resolved_embedding_config()
        first = EdgeSamplingTrainer(graph, config, ELINE_TERMS)
        graph.add_record(record("extra", {"m0": -50.0}))
        second = EdgeSamplingTrainer(graph, config, ELINE_TERMS)
        assert second._edge_sampler is not first._edge_sampler
        assert second._negative_sampler is not first._negative_sampler
        assert second._edge_sampler.num_edges == first._edge_sampler.num_edges + 1

    def test_bypass_builds_fresh(self, graph):
        config = GraficsConfig().resolved_embedding_config()
        cached = EdgeSamplingTrainer(graph, config, ELINE_TERMS)
        cold = EdgeSamplingTrainer(graph, config, ELINE_TERMS,
                                   use_sampler_cache=False)
        assert cold._edge_sampler is not cached._edge_sampler
        # Identical construction either way: same training trajectory.
        ego_a, context_a = cached.initial_embeddings()
        cached.train(ego_a, context_a)
        ego_b, context_b = cold.initial_embeddings()
        cold.train(ego_b, context_b)
        np.testing.assert_array_equal(ego_a, ego_b)
        np.testing.assert_array_equal(context_a, context_b)

    def test_cached_hit_trains_identically(self, graph):
        """A cache hit is byte-identical to a cold construction."""
        config = GraficsConfig().resolved_embedding_config()
        EdgeSamplingTrainer(graph, config, ELINE_TERMS)   # warm the cache
        warm = EdgeSamplingTrainer(graph, config, ELINE_TERMS)
        assert _SAMPLER_CACHE.hits >= 2
        cold = EdgeSamplingTrainer(graph, config, ELINE_TERMS,
                                   use_sampler_cache=False)
        ego_w, context_w = warm.initial_embeddings()
        warm.train(ego_w, context_w)
        ego_c, context_c = cold.initial_embeddings()
        cold.train(ego_c, context_c)
        np.testing.assert_array_equal(ego_w, ego_c)
        np.testing.assert_array_equal(context_w, context_c)


class TestOnlineSamplerReuse:
    """The satellite regression: embed_new_nodes at an unchanged version
    reuses cached tables, and predictions stay byte-identical."""

    @pytest.fixture()
    def fitted(self):
        dataset = small_test_building(records_per_floor=20)
        split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
        model = GRAFICS(GraficsConfig(allow_unreachable_clusters=True)).fit(
            list(split.train_records), split.labels)
        probes = [r.without_floor() for r in split.test_records[:4]]
        return model, probes

    def test_same_version_reuses_negative_sampler(self, fitted):
        model, probes = fitted
        graph, embedding = model.graph, model.embedding
        for probe in probes[:2]:
            graph.add_record(probe)
        version_before = graph.version
        embedder = ELINEEmbedder(embedding.config)

        clear_sampler_cache()
        enlarged_a = embedder.embed_new_nodes(graph, embedding,
                                              [probes[0].record_id])
        misses_after_first = _SAMPLER_CACHE.misses
        enlarged_b = embedder.embed_new_nodes(graph, embedding,
                                              [probes[1].record_id])
        # Second call at the same graph version: negative sampler reused.
        assert graph.version == version_before
        assert _SAMPLER_CACHE.hits >= 1
        assert _SAMPLER_CACHE.misses == misses_after_first
        assert enlarged_a.ego.shape == enlarged_b.ego.shape

    def test_predictions_byte_identical_with_and_without_cache(self, fitted):
        """Before/after-caching regression for the online prediction path."""
        model, probes = fitted

        clear_sampler_cache()
        with_cache = [model.predict(p) for p in probes]

        # Cold path: every predict rebuilds its samplers from scratch.
        cold = []
        for probe in probes:
            clear_sampler_cache()
            cold.append(model.predict(probe))

        for a, b in zip(with_cache, cold):
            assert a.record_id == b.record_id
            assert a.floor == b.floor
            assert a.distance == b.distance
            np.testing.assert_array_equal(a.embedding, b.embedding)

    def test_restricted_edge_arrays_match_filtered_full_scan(self, fitted):
        """incident_edge_arrays == the mask filter it replaced, exactly."""
        model, probes = fitted
        graph = model.graph
        for probe in probes:
            graph.add_record(probe)
        new_indices = np.array(
            [graph.get_node(NodeKind.RECORD, p.record_id).index
             for p in probes])

        sources, targets, weights = graph.incident_edge_arrays(new_indices)

        full_sources, full_targets, full_weights = graph.edge_arrays()
        wanted = np.zeros(graph.index_capacity, dtype=bool)
        wanted[new_indices] = True
        keep = wanted[full_sources] | wanted[full_targets]
        np.testing.assert_array_equal(sources, full_sources[keep])
        np.testing.assert_array_equal(targets, full_targets[keep])
        np.testing.assert_array_equal(weights, full_weights[keep])


class TestCacheAccounting:
    def test_eviction_counts_each_discarded_sampler(self, graph):
        """Replacing a stale entry evicts every object it held, not one.

        A trainer construction caches both an edge and a negative sampler
        for the graph version; when a mutation bumps the version, the next
        lookup discards *two* samplers and the eviction counter (and its
        ``sampler_cache_evictions_total`` mirror) must say two, not one.
        """
        config = GraficsConfig().resolved_embedding_config()
        EdgeSamplingTrainer(graph, config, ELINE_TERMS)
        assert _SAMPLER_CACHE.evictions == 0
        graph.add_record(record("extra", {"m0": -50.0}))
        EdgeSamplingTrainer(graph, config, ELINE_TERMS)
        assert _SAMPLER_CACHE.evictions == 2

    def test_two_threads_racing_same_miss_both_build(self, graph):
        """Regression: concurrent same-key misses must not deadlock.

        Construction deliberately happens outside the cache lock, so two
        threads hitting the same cold key both miss and both build; the
        samplers are identical and the last insert wins.  The barrier
        inside the build function forces the overlap: if either thread
        held the lock across its build, the other could never reach the
        barrier and the join would time out.
        """
        import threading

        from repro.core.embedding.sampler import NegativeSampler

        barrier = threading.Barrier(2, timeout=10)
        built = []

        def build():
            barrier.wait()
            sampler = NegativeSampler(graph.degree_array())
            built.append(sampler)
            return sampler

        results = [None, None]

        def worker(slot):
            results[slot] = _SAMPLER_CACHE._get_with_state(
                graph, "negative", build)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert all(not thread.is_alive() for thread in threads)

        assert len(built) == 2
        assert _SAMPLER_CACHE.misses == 2
        assert all(not hit for _, hit in results)
        # The winning insert serves subsequent lookups.
        cached, hit = _SAMPLER_CACHE._get_with_state(
            graph, "negative", lambda: pytest.fail("expected a cache hit"))
        assert hit
        assert cached in built
