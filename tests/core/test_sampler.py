"""Tests for alias sampling, edge sampling and negative sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embedding.sampler import (
    AliasTable,
    EdgeSampler,
    NegativeSampler,
    unigram_power_distribution,
)


class TestAliasTable:
    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            AliasTable(np.array([]))
        with pytest.raises(ValueError):
            AliasTable(np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            AliasTable(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            AliasTable(np.ones((2, 2)))

    def test_rejects_subnormal_total(self):
        """A subnormal weight sum cannot be normalised (n / total overflows);
        the historical build silently sampled zero-weight entries here."""
        with pytest.raises(ValueError, match="too small to normalise"):
            AliasTable(np.array([0.0, 5e-324]))

    def test_single_outcome(self):
        table = AliasTable(np.array([3.0]))
        rng = np.random.default_rng(0)
        assert set(table.sample(100, rng).tolist()) == {0}

    def test_probabilities_normalised(self):
        table = AliasTable(np.array([1.0, 3.0]))
        assert table.probabilities == pytest.approx([0.25, 0.75])

    def test_sample_count_validation(self):
        table = AliasTable(np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            table.sample(-1, np.random.default_rng(0))
        assert table.sample(0, np.random.default_rng(0)).size == 0

    def test_empirical_distribution_matches(self):
        weights = np.array([1.0, 2.0, 7.0])
        table = AliasTable(weights)
        rng = np.random.default_rng(42)
        samples = table.sample(60_000, rng)
        counts = np.bincount(samples, minlength=3) / samples.size
        np.testing.assert_allclose(counts, weights / weights.sum(), atol=0.01)

    def test_zero_weight_entries_never_sampled(self):
        table = AliasTable(np.array([0.0, 1.0, 0.0, 1.0]))
        rng = np.random.default_rng(1)
        samples = table.sample(5_000, rng)
        assert set(np.unique(samples).tolist()) <= {1, 3}

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                    max_size=20).filter(lambda w: sum(w) > 1e-9))
    @settings(max_examples=40, deadline=None)
    def test_samples_are_valid_indices(self, weights):
        table = AliasTable(np.array(weights))
        rng = np.random.default_rng(0)
        samples = table.sample(200, rng)
        assert samples.min() >= 0
        assert samples.max() < len(weights)
        assert all(weights[i] > 0 for i in np.unique(samples))

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                    max_size=64).filter(lambda w: sum(w) > 1e-9))
    @settings(max_examples=200, deadline=None)
    def test_build_bit_identical_to_list_based_reference(self, weights):
        """The vectorised build reproduces the historical pure-Python
        list-based Walker construction bit for bit — same pairing, same
        residual arithmetic, same leftover handling."""
        weights = np.array(weights)
        table = AliasTable(weights)
        prob_ref, alias_ref = _reference_alias_build(weights)
        np.testing.assert_array_equal(table._prob, prob_ref)
        np.testing.assert_array_equal(table._alias, alias_ref)

    @pytest.mark.parametrize("weights", [
        [3.0],
        [1.0, 1.0],
        [0.5, 2.0],
        [2.0, 0.5],
        [1e-9, 5.0],
    ])
    def test_tiny_table_fast_path_bit_identical(self, weights):
        """The n<=2 closed-form build must equal the reference pairing.

        These are the shapes the delta sampler's per-predict tables take
        (one or two overlay-affected indices); the fast path skips the
        Walker work-list loop entirely, so each branch is pinned against
        the list-based reference: a single entry, two balanced entries
        (neither scaled below 1.0, so no pairing happens), and two
        unbalanced entries in either order (exactly one pairing).
        """
        weights = np.array(weights)
        table = AliasTable(weights)
        prob_ref, alias_ref = _reference_alias_build(weights)
        np.testing.assert_array_equal(table._prob, prob_ref)
        np.testing.assert_array_equal(table._alias, alias_ref)

    def test_build_bit_identical_on_degree_like_weights(self):
        """Power-law degree weights, the shape the samplers actually feed."""
        rng = np.random.default_rng(5)
        degrees = rng.integers(1, 60, size=500).astype(np.float64)
        weights = degrees ** 0.75
        table = AliasTable(weights)
        prob_ref, alias_ref = _reference_alias_build(weights)
        np.testing.assert_array_equal(table._prob, prob_ref)
        np.testing.assert_array_equal(table._alias, alias_ref)


def _reference_alias_build(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The original (pre-vectorisation) AliasTable construction, verbatim."""
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    n = weights.size
    probabilities = weights * (n / total)
    prob = np.zeros(n, dtype=np.float64)
    alias = np.zeros(n, dtype=np.int64)

    small = [i for i, p in enumerate(probabilities) if p < 1.0]
    large = [i for i, p in enumerate(probabilities) if p >= 1.0]
    probabilities = probabilities.copy()
    while small and large:
        s = small.pop()
        g = large.pop()
        prob[s] = probabilities[s]
        alias[s] = g
        probabilities[g] = probabilities[g] - (1.0 - probabilities[s])
        if probabilities[g] < 1.0:
            small.append(g)
        else:
            large.append(g)
    for leftover in large + small:
        prob[leftover] = 1.0
        alias[leftover] = leftover
    return prob, alias


class TestUnigramPowerDistribution:
    def test_power_applied(self):
        degrees = np.array([0.0, 1.0, 16.0])
        weights = unigram_power_distribution(degrees, power=0.75)
        assert weights[0] == 0.0
        assert weights[1] == pytest.approx(1.0)
        assert weights[2] == pytest.approx(8.0)

    def test_negative_degrees_rejected(self):
        with pytest.raises(ValueError):
            unigram_power_distribution(np.array([-1.0]))


class TestEdgeSampler:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            EdgeSampler(np.array([0]), np.array([1, 2]), np.array([1.0]))
        with pytest.raises(ValueError):
            EdgeSampler(np.array([], dtype=int), np.array([], dtype=int),
                        np.array([]))

    def test_directed_samples_cover_both_directions(self):
        sampler = EdgeSampler(np.array([0]), np.array([1]), np.array([1.0]))
        rng = np.random.default_rng(0)
        heads, tails = sampler.sample(2_000, rng)
        assert set(zip(heads.tolist(), tails.tolist())) == {(0, 1), (1, 0)}
        # Directions should be roughly balanced.
        assert 0.4 < np.mean(heads == 0) < 0.6

    def test_weighted_edges_sampled_proportionally(self):
        sampler = EdgeSampler(np.array([0, 2]), np.array([1, 3]),
                              np.array([1.0, 9.0]))
        rng = np.random.default_rng(3)
        heads, tails = sampler.sample(20_000, rng)
        heavy = np.mean((heads == 2) | (heads == 3))
        assert heavy == pytest.approx(0.9, abs=0.02)


class TestNegativeSampler:
    def test_requires_some_degree(self):
        with pytest.raises(ValueError):
            NegativeSampler(np.zeros(4))

    def test_shape(self):
        sampler = NegativeSampler(np.array([1.0, 2.0, 3.0]))
        rng = np.random.default_rng(0)
        negatives = sampler.sample(7, 5, rng)
        assert negatives.shape == (7, 5)
        assert negatives.min() >= 0
        assert negatives.max() <= 2

    def test_zero_degree_nodes_excluded(self):
        sampler = NegativeSampler(np.array([0.0, 5.0, 0.0, 5.0]))
        rng = np.random.default_rng(0)
        negatives = sampler.sample(500, 3, rng)
        assert set(np.unique(negatives).tolist()) <= {1, 3}

    def test_power_law_bias(self):
        degrees = np.array([1.0, 81.0])
        sampler = NegativeSampler(degrees, power=0.75)
        rng = np.random.default_rng(0)
        negatives = sampler.sample(30_000, 1, rng).ravel()
        observed = np.mean(negatives == 1)
        expected = 27.0 / 28.0  # 81^0.75 / (1 + 81^0.75)
        assert observed == pytest.approx(expected, abs=0.01)
