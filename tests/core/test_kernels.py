"""Tests for the pluggable training-kernel layer (reference vs fused)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import GRAFICS, GraficsConfig
from repro.core.embedding import (
    ELINEEmbedder,
    EmbeddingConfig,
    KERNEL_NAMES,
    LINEEmbedder,
    make_kernel,
)
from repro.core.embedding.trainer import EdgeSamplingTrainer, ObjectiveTerms
from repro.core.graph import build_graph
from repro.core.types import SignalRecord
from repro.data import make_experiment_split, small_test_building

ELINE_TERMS = ObjectiveTerms(second_order=True, symmetric=True)


def record(rid, rss):
    return SignalRecord(record_id=rid, rss=rss)


@pytest.fixture(scope="module")
def medium_graph():
    records = [record(f"r{i}", {f"m{j}": -45.0 - j
                                for j in range(i % 5, i % 5 + 5)})
               for i in range(16)]
    return build_graph(records)


@pytest.fixture(scope="module")
def preset_split():
    dataset = small_test_building(records_per_floor=30)
    return make_experiment_split(dataset, labels_per_floor=4, seed=0)


class TestKernelSelection:
    def test_known_kernels(self):
        assert set(KERNEL_NAMES) == {"reference", "fused"}
        for name in KERNEL_NAMES:
            assert make_kernel(name).name == name

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown training kernel"):
            make_kernel("turbo")
        with pytest.raises(ValueError, match="unknown training kernel"):
            EmbeddingConfig(kernel="turbo")

    def test_default_is_reference(self):
        assert EmbeddingConfig().kernel == "reference"

    def test_embedder_kernel_override(self):
        embedder = ELINEEmbedder(EmbeddingConfig(), kernel="fused")
        assert embedder.config.kernel == "fused"
        line = LINEEmbedder(EmbeddingConfig(), order="second", kernel="fused")
        assert line.config.kernel == "fused"

    def test_trainer_reports_kernel(self, medium_graph):
        config = EmbeddingConfig(seed=0, kernel="fused")
        trainer = EdgeSamplingTrainer(medium_graph, config, ELINE_TERMS)
        assert trainer.kernel_name == "fused"

    def test_grafics_config_kernel_override(self):
        config = GraficsConfig(kernel="fused")
        assert config.resolved_embedding_config().kernel == "fused"
        assert GraficsConfig().resolved_embedding_config().kernel == "reference"


def _train(graph, kernel, *, dropout=0.1, seed=0, total_samples=None,
           terms=ELINE_TERMS, trainable=None, samples_per_edge=40.0):
    config = EmbeddingConfig(seed=seed, dropout=dropout, kernel=kernel,
                             samples_per_edge=samples_per_edge, batch_size=128)
    trainer = EdgeSamplingTrainer(graph, config, terms)
    ego, context = trainer.initial_embeddings()
    losses = trainer.train(ego, context, trainable=trainable,
                           total_samples=total_samples)
    return ego, context, losses, trainer


class TestFusedKernelNumerics:
    def test_seed_deterministic(self, medium_graph):
        ego1, context1, losses1, _ = _train(medium_graph, "fused")
        ego2, context2, losses2, _ = _train(medium_graph, "fused")
        np.testing.assert_array_equal(ego1, ego2)
        np.testing.assert_array_equal(context1, context2)
        assert losses1 == losses2

    def test_rng_stream_matches_reference(self, medium_graph):
        """Fused consumes the RNG exactly like the reference, by design."""
        *_, trainer_ref = _train(medium_graph, "reference")
        *_, trainer_fused = _train(medium_graph, "fused")
        assert (trainer_ref._rng.bit_generator.state
                == trainer_fused._rng.bit_generator.state)

    def test_single_batch_single_term_matches_reference(self, medium_graph):
        """One batch, one term: only float summation order may differ."""
        terms = ObjectiveTerms(second_order=True)
        ego_r, context_r, losses_r, _ = _train(
            medium_graph, "reference", dropout=0.0, total_samples=128,
            terms=terms)
        ego_f, context_f, losses_f, _ = _train(
            medium_graph, "fused", dropout=0.0, total_samples=128,
            terms=terms)
        np.testing.assert_allclose(ego_f, ego_r, rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(context_f, context_r, rtol=1e-7, atol=1e-9)
        assert losses_f[0] == pytest.approx(losses_r[0], rel=1e-9)

    # Single-term cases admit only summation-order noise; with two or more
    # terms the reference applies terms sequentially within the batch while
    # the fused kernel evaluates all of them against the pre-batch tables,
    # so the gap is O(lr * grad^2) per batch.
    @pytest.mark.parametrize("terms,atol", [
        (ObjectiveTerms(second_order=True), 1e-9),
        (ObjectiveTerms(first_order=True, second_order=False), 1e-9),
        (ObjectiveTerms(second_order=True, symmetric=True), 2e-2),
        (ObjectiveTerms(first_order=True, second_order=True), 2e-2),
        (ObjectiveTerms(first_order=True, second_order=True, symmetric=True),
         2e-2),
    ])
    def test_term_combinations_single_batch(self, medium_graph, terms, atol):
        ego_r, context_r, *_ = _train(medium_graph, "reference", dropout=0.0,
                                      total_samples=128, terms=terms)
        ego_f, context_f, *_ = _train(medium_graph, "fused", dropout=0.0,
                                      total_samples=128, terms=terms)
        np.testing.assert_allclose(ego_f, ego_r, rtol=1e-7, atol=atol)
        np.testing.assert_allclose(context_f, context_r, rtol=1e-7, atol=atol)

    def test_full_run_stays_close_to_reference(self, medium_graph):
        ego_r, *_ = _train(medium_graph, "reference")
        ego_f, *_ = _train(medium_graph, "fused")
        # Term updates are applied Jacobi-style within a batch, so the runs
        # diverge slowly; they must stay in the same neighbourhood.
        assert np.abs(ego_f - ego_r).max() < 0.25

    def test_frozen_rows_never_change(self, medium_graph):
        trainable = np.zeros(medium_graph.index_capacity, dtype=bool)
        trainable[:3] = True
        config = EmbeddingConfig(seed=0, kernel="fused", samples_per_edge=50.0)
        trainer = EdgeSamplingTrainer(medium_graph, config, ELINE_TERMS)
        ego, context = trainer.initial_embeddings()
        ego_before, context_before = ego.copy(), context.copy()
        trainer.train(ego, context, trainable=trainable)
        np.testing.assert_array_equal(ego[~trainable], ego_before[~trainable])
        np.testing.assert_array_equal(context[~trainable],
                                      context_before[~trainable])
        assert not np.array_equal(ego[trainable], ego_before[trainable])

    def test_training_reduces_loss(self, medium_graph):
        *_, losses, _ = _train(medium_graph, "fused", dropout=0.0,
                               samples_per_edge=300.0)
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_compact_scatter_path_matches_direct(self, medium_graph):
        """The large-table compaction branch computes the same update.

        The two branches combine the dense and outer contributions in a
        different order (one fused subtraction vs. two), so equality holds
        to the last few ulps rather than bit-for-bit.
        """
        from repro.core.embedding.kernels import FusedKernel

        ego_direct, context_direct, *_ = _train(medium_graph, "fused",
                                                total_samples=256)
        original = FusedKernel._COMPACT_RATIO
        FusedKernel._COMPACT_RATIO = 0      # always compact
        try:
            ego_compact, context_compact, *_ = _train(medium_graph, "fused",
                                                      total_samples=256)
        finally:
            FusedKernel._COMPACT_RATIO = original
        np.testing.assert_allclose(ego_compact, ego_direct,
                                   rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(context_compact, context_direct,
                                   rtol=1e-10, atol=1e-12)


class TestEndToEndParity:
    def _accuracy(self, split, kernel):
        config = GraficsConfig(allow_unreachable_clusters=True)
        model = GRAFICS(config).fit(list(split.train_records), split.labels,
                                    kernel=kernel)
        probes = [r.without_floor() for r in split.test_records]
        truth = [r.floor for r in split.test_records]
        predictions = model.predict_batch(probes)
        hits = sum(1 for p, t in zip(predictions, truth) if p.floor == t)
        return hits / len(truth)

    def test_fused_matches_reference_floor_accuracy(self):
        """fit -> cluster -> predict parity on the paper's campus preset."""
        from repro.data import three_story_campus_building

        dataset = three_story_campus_building(records_per_floor=60, seed=7)
        split = make_experiment_split(dataset, labels_per_floor=6, seed=0)
        accuracy_reference = self._accuracy(split, "reference")
        accuracy_fused = self._accuracy(split, "fused")
        assert accuracy_fused == accuracy_reference
        assert accuracy_reference > 0.9

    def test_fused_accuracy_near_reference_on_hard_preset(self, preset_split):
        """On the deliberately small/hard preset, parity within one flip."""
        accuracy_reference = self._accuracy(preset_split, "reference")
        accuracy_fused = self._accuracy(preset_split, "fused")
        n = len(preset_split.test_records)
        assert abs(accuracy_fused - accuracy_reference) <= 1.5 / n

    def test_fit_kernel_override_recorded(self, preset_split):
        config = GraficsConfig(allow_unreachable_clusters=True)
        model = GRAFICS(config).fit(list(preset_split.train_records),
                                    preset_split.labels, kernel="fused")
        assert model.embedding.config.kernel == "fused"
        # The online-inference engine inherits the fitted kernel.
        assert model.engine.embedder.config.kernel == "fused"
        # The pipeline config itself was not mutated.
        assert config.resolved_embedding_config().kernel == "reference"


class TestWarmStartVectorisation:
    def test_bulk_row_copy_matches_naive_loop(self, preset_split):
        """The fancy-indexed warm-start copy equals the per-node dict loop."""
        from repro.core.graph import NodeKind

        config = GraficsConfig(allow_unreachable_clusters=True)
        previous = GRAFICS(config).fit(list(preset_split.train_records),
                                       preset_split.labels)
        # A shifted window: drop some records, keep the rest.
        survivors = list(preset_split.train_records)[10:]
        graph = build_graph(survivors)
        embedding_config = config.resolved_embedding_config()
        trainer = EdgeSamplingTrainer(graph, embedding_config, ELINE_TERMS)
        ego, context = trainer.initial_embeddings(
            warm_start=previous.embedding)

        # Naive reference: same random draw, then the historical loop.
        rng = np.random.default_rng(embedding_config.seed)
        scale = embedding_config.init_scale / embedding_config.dimension
        shape = (graph.index_capacity, embedding_config.dimension)
        naive_ego = rng.uniform(-scale, scale, size=shape)
        naive_context = rng.uniform(-scale, scale, size=shape)
        warm = previous.embedding
        for node in graph.nodes():
            index_map = (warm.record_index if node.kind is NodeKind.RECORD
                         else warm.mac_index)
            old_row = index_map.get(node.key)
            if old_row is not None:
                naive_ego[node.index] = warm.ego[old_row]
                naive_context[node.index] = warm.context[old_row]
        np.testing.assert_array_equal(ego, naive_ego)
        np.testing.assert_array_equal(context, naive_context)

    def test_dimension_mismatch_rejected(self, preset_split):
        config = GraficsConfig(allow_unreachable_clusters=True)
        previous = GRAFICS(config).fit(list(preset_split.train_records),
                                       preset_split.labels)
        graph = build_graph(list(preset_split.train_records))
        other = replace(config.resolved_embedding_config(), dimension=4)
        trainer = EdgeSamplingTrainer(graph, other, ELINE_TERMS)
        with pytest.raises(ValueError, match="dimension"):
            trainer.initial_embeddings(warm_start=previous.embedding)


class TestKernelThreading:
    """kernel= rides through serving and streaming retrain paths."""

    def test_serving_retrain_kernel(self, preset_split, tmp_path):
        from repro.core.types import FingerprintDataset
        from repro.serving import FloorServingService

        dataset = FingerprintDataset(records=list(preset_split.train_records),
                                     building_id="bldg-a")
        service = FloorServingService(
            grafics_config=GraficsConfig(allow_unreachable_clusters=True))
        service.fit_building(dataset, preset_split.labels)
        model = service.retrain_building(dataset, preset_split.labels,
                                         warm_start=True, kernel="fused")
        assert model.embedding.config.kernel == "fused"
        assert service.model_for("bldg-a") is model
        # Round-tripped through persistence the kernel survives.
        path = tmp_path / "bldg-a.npz"
        reloaded = service.retrain_building(dataset, preset_split.labels,
                                            model_path=path, kernel="fused")
        assert reloaded.embedding.config.kernel == "fused"

    def test_executor_kernel(self, preset_split):
        from repro.core.types import FingerprintDataset
        from repro.serving import FloorServingService
        from repro.stream import RetrainExecutor

        dataset = FingerprintDataset(records=list(preset_split.train_records),
                                     building_id="bldg-b")
        service = FloorServingService(
            grafics_config=GraficsConfig(allow_unreachable_clusters=True))
        service.fit_building(dataset, preset_split.labels)
        executor = RetrainExecutor(service, max_workers=0, kernel="fused")
        completion = executor.submit("bldg-b", dataset, preset_split.labels,
                                     trigger="test")
        assert completion.swapped
        assert service.model_for("bldg-b").embedding.config.kernel == "fused"

    def test_stream_config_kernel(self):
        from repro.serving import FloorServingService
        from repro.stream import ContinuousLearningPipeline, StreamConfig

        service = FloorServingService(
            grafics_config=GraficsConfig(allow_unreachable_clusters=True))
        pipeline = ContinuousLearningPipeline(
            service, StreamConfig(retrain_kernel="fused"))
        assert pipeline.executor.kernel == "fused"
        # Default keeps the reference kernel (and its byte-identity).
        assert ContinuousLearningPipeline(service).executor.kernel is None

    def test_invalid_kernel_fails_at_construction(self):
        """Bad kernel names fail fast, not at the first retrain."""
        from repro.serving import FloorServingService
        from repro.stream import RetrainExecutor, StreamConfig

        with pytest.raises(ValueError, match="unknown training kernel"):
            StreamConfig(retrain_kernel="fussed")
        service = FloorServingService(
            grafics_config=GraficsConfig(allow_unreachable_clusters=True))
        with pytest.raises(ValueError, match="unknown training kernel"):
            RetrainExecutor(service, kernel="fussed")

    def test_sharded_retrain_kernel(self, preset_split):
        """The sharded facade mirrors the one-lock retrain kernel API."""
        from repro.core.types import FingerprintDataset
        from repro.serving import ShardedServingService

        dataset = FingerprintDataset(records=list(preset_split.train_records),
                                     building_id="bldg-c")
        service = ShardedServingService(
            grafics_config=GraficsConfig(allow_unreachable_clusters=True),
            num_shards=2)
        service.fit_building(dataset, preset_split.labels)
        model = service.retrain_building(dataset, preset_split.labels,
                                         warm_start=True, kernel="fused")
        assert model.embedding.config.kernel == "fused"
        assert service.model_for("bldg-c") is model
