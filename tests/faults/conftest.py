"""Shared fixtures for the fault-injection tests."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
# The fault tests drive real pipelines; reuse the stream suite's helpers.
sys.path.insert(0, str(Path(__file__).parent.parent / "stream"))

from repro import faults  # noqa: E402


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """No fault plan may survive a test — armed failpoints are global."""
    faults.uninstall()
    yield
    faults.uninstall()
