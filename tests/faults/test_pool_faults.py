"""Fault injection across the compute-pool process boundary.

The pool splits a failpoint in two: the *decision* (hit counting, seeded
RNG draws) stays in the parent via ``failpoints.evaluate``, keeping the
process-global schedule deterministic, while the *effect* executes inside
the worker that computes the batch.  A ``kill`` directive becomes a real
worker death (``os._exit``) — the pool-mode analogue of
:class:`ProcessKilled` — observable only from the parent via the process
sentinel, surfacing as retryable rejections while the pool respawns the
worker underneath.  These tests pin all three directive kinds plus the
schedule parity between ``fire`` and ``evaluate``.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "serving"))
from serving_helpers import make_service  # noqa: E402

from repro import faults  # noqa: E402
from repro.faults import FaultInjected, FaultPlan, failpoints  # noqa: E402

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool fault tests drive the fork start method")

FORK = {"compute_workers": 1, "compute_start_method": "fork"}


@pytest.fixture(scope="module")
def corpus():
    sys.path.insert(0, str(Path(__file__).parent.parent / "serving"))
    from serving_helpers import FakeClock
    from repro import GraficsConfig, EmbeddingConfig
    from repro.core.registry import MultiBuildingFloorService
    from repro.data import make_experiment_split, small_test_building

    config = GraficsConfig(
        embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0))
    registry = MultiBuildingFloorService(config)
    dataset = small_test_building(num_floors=3, records_per_floor=40,
                                  aps_per_floor=20, seed=41,
                                  building_id="bldg-north")
    split = make_experiment_split(dataset, labels_per_floor=4, seed=0)
    registry.fit_building(dataset.subset(split.train_records), split.labels)
    probes = [r.without_floor() for r in split.test_records]
    return registry, probes, FakeClock


class TestWorkerKill:
    def test_kill_mid_request_rejects_respawns_and_recovers(self, corpus):
        """The satellite's named scenario: kill a worker mid-request → the
        batch surfaces rejected (never hangs), the pool respawns the
        worker, and subsequent predictions are byte-identical to an
        undisturbed control run."""
        registry, probes, FakeClock = corpus
        batch = probes[:4]
        control = make_service(registry, FakeClock(), max_batch_size=4,
                               enable_cache=False)
        with make_service(registry, FakeClock(), max_batch_size=4,
                          enable_cache=False, **FORK) as service:
            plan = FaultPlan(seed=0).kill("serve.compute", hits=[1])
            with faults.active(plan):
                for probe in batch:
                    service.submit(probe)
                results = service.drain()
            assert len(results) == len(batch)
            assert all(r.source == "rejected" for r in results)
            assert all("died" in r.error and "retryable" in r.error
                       for r in results)
            assert plan.fired and plan.fired[0].kind == "kill"
            assert service.telemetry.counter(
                "compute_pool_worker_restarts_total") == 1

            # Same records again, no plan armed: the respawned worker gets
            # a fresh snapshot ship and serves identical bytes.
            for probe in batch:
                control.submit(probe)
            expected = {r.record_id: r.prediction for r in control.drain()}
            for probe in batch:
                service.submit(probe)
            redo = {r.record_id: r.prediction for r in service.drain()}
            assert redo == expected
            assert all(p is not None for p in redo.values())

    def test_kill_on_sync_path_raises_retryable_crash(self, corpus):
        from repro.serving import WorkerCrashError
        registry, probes, FakeClock = corpus
        with make_service(registry, FakeClock(), enable_cache=False,
                          **FORK) as service:
            plan = FaultPlan(seed=0).kill("serve.compute", hits=[1])
            with faults.active(plan):
                with pytest.raises(WorkerCrashError, match="retryable"):
                    service.predict_batch(probes[:3])
            # Retry succeeds against the respawned worker.
            got = service.predict_batch(probes[:3])
            assert all(p is not None for p in got)


class TestDirectiveRoundTrips:
    def test_error_directive_raises_fault_injected_in_parent(self, corpus):
        registry, probes, FakeClock = corpus
        with make_service(registry, FakeClock(), enable_cache=False,
                          **FORK) as service:
            plan = FaultPlan(seed=0).fail("serve.compute", hits=[1],
                                          message="pooled boom")
            with faults.active(plan):
                with pytest.raises(FaultInjected, match="pooled boom"):
                    service.predict_batch(probes[:3])
            assert service.telemetry.counter(
                "compute_pool_worker_restarts_total") == 0

    def test_latency_directive_executes_without_changing_bytes(self, corpus):
        registry, probes, FakeClock = corpus
        control = make_service(registry, FakeClock(), enable_cache=False)
        expected = control.predict_batch(probes[:4])
        with make_service(registry, FakeClock(), enable_cache=False,
                          **FORK) as service:
            plan = FaultPlan(seed=0).delay("serve.compute", seconds=0.05,
                                           hits=[1])
            with faults.active(plan):
                got = service.predict_batch(probes[:4])
            assert plan.fired and plan.fired[0].kind == "latency"
            assert pickle.dumps(got) == pickle.dumps(expected)


class TestScheduleParity:
    def test_evaluate_counts_the_same_hits_as_fire(self):
        plan = FaultPlan(seed=0).fail("serve.compute", hits=[2])
        with faults.active(plan):
            assert failpoints.evaluate("serve.compute") == []
            directives = failpoints.evaluate("serve.compute")
            assert [d["kind"] for d in directives] == ["error"]
            assert plan.hit_count("serve.compute") == 2

    def test_pooled_and_inprocess_services_fault_on_the_same_request(
            self, corpus):
        """One workload, two serving modes, the same plan schedule: the
        fault lands on the second request either way."""
        registry, probes, FakeClock = corpus
        for mode_kwargs in ({}, FORK):
            service = make_service(registry, FakeClock(), enable_cache=False,
                                   **mode_kwargs)
            try:
                plan = FaultPlan(seed=0).fail("serve.compute", hits=[2])
                with faults.active(plan):
                    service.predict_batch(probes[:2])  # hit 1: clean
                    with pytest.raises(FaultInjected):
                        service.predict_batch(probes[:2])  # hit 2: fault
            finally:
                service.close()

    def test_torn_write_directive_is_rejected_at_evaluate(self):
        plan = FaultPlan(seed=0).torn_write("serve.compute", hits=[1])
        with faults.active(plan):
            with pytest.raises(ValueError, match="torn_write"):
                failpoints.evaluate("serve.compute")
