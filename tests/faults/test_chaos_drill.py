"""The chaos drill: a scripted FaultPlan against a live pipeline.

Three acts, one per failure domain of the learning loop:

1. **Failing fits** — three consecutive injected fit failures walk the
   building through backoff, an open breaker (serving continues on the
   stale model, ``/healthz`` says so) and a failed half-open probe; the
   recovery probe's installed model is byte-identical to an offline refit
   of the same job.
2. **Torn checkpoint write** — a checkpoint torn mid-write is detected by
   digest and ``resume()`` falls back to the retained last-good
   generation; replaying the lost segment reproduces the original results
   byte-for-byte.
3. **Crash-kill mid-swap** — a simulated process death on the way into a
   hot swap escapes every resilience handler; resuming from the untouched
   checkpoint and replaying matches an undisturbed control run exactly.
"""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest

from stream_helpers import FakeClock, stream_records, train_service

from repro import StreamConfig, faults
from repro.core.persistence import CheckpointCorruptError, load_stream_state
from repro.core.pipeline import GRAFICS
from repro.faults import FaultPlan, ProcessKilled
from repro.obs.health import HealthMonitor
from repro.obs.log import LOGGER_NAME
from repro.stream import (
    ContinuousLearningPipeline,
    DriftConfig,
    SchedulerConfig,
    WindowConfig,
)


def drill_config(**scheduler_overrides):
    scheduler = dict(min_window_records=48, warm_start=True)
    scheduler.update(scheduler_overrides)
    return StreamConfig(window=WindowConfig(max_records=96),
                        drift=DriftConfig(vocabulary_jaccard_min=0.6),
                        scheduler=SchedulerConfig(**scheduler))


def churn_stream(split, count=200):
    """AP churn aggressive enough to latch vocabulary drift."""
    macs = sorted({mac for record in split.test_records for mac in record.rss})
    rename = {mac: f"{mac}:v2" for mac in macs[: len(macs) // 2]}
    return stream_records(split, count, prefix="churn-", rename=rename,
                          rng_seed=1, jitter=2.0)


def summarize(results):
    """Everything observable about a stream result, prediction bytes included."""
    return [(r.record_id, r.accepted, r.building_id, r.rejected_by,
             None if r.prediction is None
             else (r.prediction.floor, r.prediction.distance,
                   r.prediction.mac_overlap),
             tuple((e.kind.value, e.building_id) for e in r.drift_events),
             r.eviction.record_ids, r.swapped)
            for r in results]


class TestActOneFailingFits:
    def test_breaker_walks_open_probe_recover(self):
        clock = FakeClock()
        service, splits = train_service()
        pipeline = ContinuousLearningPipeline(
            service, drill_config(backoff_initial_seconds=10.0,
                                  backoff_multiplier=2.0,
                                  backoff_jitter=0.0,
                                  breaker_failures=2),
            clock=clock)
        scheduler = pipeline.scheduler
        monitor = HealthMonitor(pipeline=pipeline, clock=clock)
        probe_record = splits["bldg-A"].test_records[0].without_floor()

        # Record every executed fit so the recovery can be re-derived
        # offline and compared byte-for-byte.
        jobs = []
        real_train = pipeline.executor._train

        def recording_train(job, previous):
            jobs.append((job, previous))
            return real_train(job, previous)

        pipeline.executor._train = recording_train

        pipeline.process_stream(stream_records(splits["bldg-A"], 80,
                                               prefix="steady-", jitter=2.0))
        assert monitor.building_scorecard(
            "bldg-A", clock()).status.value == "healthy"

        plan = FaultPlan().fail("retrain.fit", hits=[1, 2, 3])
        attempts = []
        with faults.active(plan):
            for record in churn_stream(splits["bldg-A"]):
                result = pipeline.process(record)
                if result.retrain is not None:
                    attempts.append(result.retrain)
                    if result.retrain.swapped:
                        break
                    # A failure latched a backoff; jump straight past it so
                    # the next accepted record can attempt again.
                    clock.advance(scheduler.retry_in("bldg-A") + 0.01)
                    if len(attempts) == 2:
                        # Two consecutive failures: the breaker is open,
                        # health says so, and serving still answers from
                        # the stale model.
                        assert scheduler.breaker_state("bldg-A") == "open"
                        card = monitor.building_scorecard("bldg-A", clock())
                        assert card.status.value == "unhealthy"
                        assert "retrain_circuit_open" in {
                            reason.code for reason in card.reasons}
                        assert service.predict(probe_record) is not None

        # The scripted plan: three injected failures, then a clean probe.
        assert [f.site for f in plan.fired] == ["retrain.fit"] * 3
        assert len(attempts) == 4
        assert [a.swapped for a in attempts] == [False, False, False, True]
        assert all("injected" in a.skipped_reason
                   for a in attempts[:3])
        # Probe #1 (attempt 3) failed and re-opened; probe #2 closed.
        assert scheduler.breaker_state("bldg-A") == "closed"
        assert scheduler.consecutive_failures("bldg-A") == 0
        assert scheduler.retrains_total == 1
        assert monitor.building_scorecard(
            "bldg-A", clock()).status.value == "healthy"

        # Byte-identity: the model the probe installed is exactly what an
        # offline refit of the recorded job produces — injected failures
        # perturbed nothing about the eventual fit.
        job, previous = jobs[-1]
        offline = GRAFICS(service.grafics_config)
        offline.fit(job.dataset, job.labels, warm_start=previous)
        assert np.array_equal(service.model_for("bldg-A").embedding.ego,
                              offline.embedding.ego)


class TestActTwoTornCheckpoint:
    def test_torn_write_recovers_to_last_good_and_replays(self, tmp_path,
                                                          caplog):
        service, splits = train_service()
        pipeline = ContinuousLearningPipeline(service, drill_config())
        pipeline.process_stream(stream_records(splits["bldg-A"], 40,
                                               prefix="warm-", jitter=2.0))
        pipeline.checkpoint(tmp_path / "ckpt")  # generation 1: clean

        segment = stream_records(splits["bldg-A"], 20, prefix="seg-",
                                 rng_seed=5, jitter=2.0)
        results = pipeline.process_stream(segment)

        # Checkpoint #2 tears the stream-state temp file mid-write (hit 2:
        # hit 1 is the building's model file).  The tear is silent — the
        # writer renames the torn file into place believing it succeeded.
        plan = FaultPlan().torn_write("checkpoint.write", hits=[2])
        with faults.active(plan):
            pipeline.checkpoint(tmp_path / "ckpt")
        assert [f.site for f in plan.fired] == ["checkpoint.write"]
        with pytest.raises(CheckpointCorruptError):
            load_stream_state(tmp_path / "ckpt" / "stream_state.json")

        with caplog.at_level(logging.INFO, logger=LOGGER_NAME):
            resumed = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        events = [json.loads(r.message) for r in caplog.records]
        recovered = [e for e in events if e["event"] == "checkpoint_recovered"]
        assert len(recovered) == 1
        assert recovered[0]["error_type"] == "CheckpointCorruptError"

        # Recovery point is generation 1; replaying the segment written
        # after it reproduces the original run byte-for-byte.
        assert resumed.processed_total == 40
        assert summarize(resumed.process_stream(segment)) == summarize(results)


class TestActThreeCrashKillMidSwap:
    def test_killed_mid_swap_resumes_and_matches_control(self, tmp_path):
        service, splits = train_service()
        pipeline = ContinuousLearningPipeline(service, drill_config())
        pipeline.process_stream(stream_records(splits["bldg-A"], 80,
                                               prefix="steady-", jitter=2.0))
        pipeline.checkpoint(tmp_path / "ckpt")
        segment = churn_stream(splits["bldg-A"])

        # Control: an undisturbed node resumes and processes the segment.
        control = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        control_results = control.process_stream(segment)
        assert control.scheduler.retrains_total == 1  # the churn retrains
        control_ego = control.service.model_for("bldg-A").embedding.ego

        # Chaos: an identical node dies on the way into the hot swap.
        victim = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        plan = FaultPlan().kill("swap.install", hits=[1])
        processed = 0
        with pytest.raises(ProcessKilled):
            with faults.active(plan):
                for record in segment:
                    victim.process(record)
                    processed += 1
        assert 0 < processed < len(segment)  # died mid-segment, mid-retrain
        # The kill fired before the install: the stale model still serves.
        assert np.array_equal(
            victim.service.model_for("bldg-A").embedding.ego,
            np.asarray(service.model_for("bldg-A").embedding.ego))

        # Recovery: resume from the untouched checkpoint and replay the
        # whole segment — results and final model match the control run
        # byte-for-byte.
        recovered = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        recovered_results = recovered.process_stream(segment)
        assert summarize(recovered_results) == summarize(control_results)
        assert np.array_equal(
            recovered.service.model_for("bldg-A").embedding.ego, control_ego)
