"""Failpoint registry and FaultPlan mechanics."""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import FaultInjected, FaultPlan, FaultyClock, ProcessKilled


class TestRegistry:
    def test_disabled_fire_is_a_no_op(self):
        assert not faults.enabled()
        faults.fire("retrain.fit")  # must not raise, allocate state, anything

    def test_unknown_site_rejected_at_install(self):
        plan = FaultPlan().fail("retrain.fti")  # typo
        with pytest.raises(ValueError, match="unknown sites"):
            faults.install(plan)

    def test_install_uninstall_toggles(self):
        plan = FaultPlan().fail("retrain.fit")
        faults.install(plan)
        assert faults.enabled() and faults.active_plan() is plan
        faults.uninstall()
        assert not faults.enabled()

    def test_active_uninstalls_on_exception(self):
        plan = FaultPlan().kill("swap.install")
        with pytest.raises(ProcessKilled):
            with faults.active(plan):
                faults.fire("swap.install")
        # Even a simulated process death must not leak the armed plan.
        assert not faults.enabled()


class TestScheduling:
    def test_explicit_hits_fire_on_exactly_those_hits(self):
        plan = FaultPlan().fail("retrain.fit", hits=[2, 3])
        faults.install(plan)
        faults.fire("retrain.fit")  # hit 1: clean
        for _ in range(2):
            with pytest.raises(FaultInjected):
                faults.fire("retrain.fit")
        faults.fire("retrain.fit")  # hit 4: clean again
        assert plan.hit_count("retrain.fit") == 4
        assert [(f.site, f.hit) for f in plan.fired] == [("retrain.fit", 2),
                                                         ("retrain.fit", 3)]

    def test_times_bounds_total_fires(self):
        plan = FaultPlan().fail("serve.compute", times=2)
        faults.install(plan)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                faults.fire("serve.compute")
        faults.fire("serve.compute")  # budget exhausted

    def test_probability_stream_is_seed_deterministic(self):
        def fires(seed):
            plan = FaultPlan(seed=seed).fail("serve.compute", probability=0.3)
            pattern = []
            for _ in range(40):
                try:
                    plan.fire("serve.compute")
                    pattern.append(False)
                except FaultInjected:
                    pattern.append(True)
            return pattern

        assert fires(7) == fires(7)        # replayable
        assert fires(7) != fires(8)        # but actually seeded
        assert any(fires(7)) and not all(fires(7))

    def test_latency_uses_injected_sleeper(self):
        slept = []
        plan = FaultPlan(sleep=slept.append).delay("serve.compute", 0.25,
                                                   hits=[1])
        faults.install(plan)
        faults.fire("serve.compute")
        assert slept == [0.25]

    def test_hits_and_probability_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            FaultPlan().fail("retrain.fit", hits=[1], probability=0.5)


class TestTornWrite:
    def test_truncates_the_context_file(self, tmp_path):
        target = tmp_path / "payload.bin"
        target.write_bytes(bytes(range(200)))
        plan = FaultPlan().torn_write("checkpoint.write", hits=[1])
        faults.install(plan)
        faults.fire("checkpoint.write", path=target)  # no exception: silent
        torn = target.read_bytes()
        assert 0 < len(torn) < 200
        assert torn == bytes(range(200))[: len(torn)]  # a prefix, torn off

    def test_truncation_is_seed_deterministic(self, tmp_path):
        def torn_size(seed):
            target = tmp_path / f"p{seed}.bin"
            target.write_bytes(b"x" * 1000)
            FaultPlan(seed=seed).torn_write(
                "checkpoint.write", hits=[1]).fire("checkpoint.write",
                                                   path=target)
            return len(target.read_bytes())

        assert torn_size(1) == torn_size(1)

    def test_requires_a_path_context(self):
        plan = FaultPlan().torn_write("swap.install", hits=[1])
        faults.install(plan)
        with pytest.raises(ValueError, match="needs a file path"):
            faults.fire("swap.install")


class TestKill:
    def test_kill_escapes_except_exception(self):
        plan = FaultPlan().kill("swap.install", hits=[1])
        faults.install(plan)
        with pytest.raises(ProcessKilled):
            try:
                faults.fire("swap.install")
            except Exception:  # noqa: BLE001 — the point of the test
                pytest.fail("a simulated process kill must not be caught "
                            "by resilience code's except Exception")


class TestFaultyClock:
    def test_jump_folds_into_permanent_offset(self):
        base = {"now": 100.0}
        clock = FaultyClock(base=lambda: base["now"])
        assert clock() == 100.0
        plan = FaultPlan().clock_jump(3600.0, hits=[2])
        faults.install(plan)
        clock()                      # hit 1: no jump scheduled yet
        jumped = clock()             # hit 2: +3600
        assert jumped == 100.0 + 3600.0
        faults.uninstall()
        # The jump survives the plan being uninstalled; time never rewinds.
        assert clock() == 100.0 + 3600.0

    def test_manual_advance(self):
        clock = FaultyClock(base=lambda: 0.0)
        clock.advance(5.0)
        assert clock() == 5.0
        with pytest.raises(ValueError, match="backwards"):
            clock.advance(-1.0)
