"""Checkpoint digests, corruption detection, rotation, last-good recovery."""

from __future__ import annotations

import json

import pytest

from stream_helpers import stream_records, train_service

from repro import StreamConfig
from repro.core.persistence import (
    CheckpointCorruptError,
    load_registry,
    load_stream_state,
    save_registry,
    save_stream_state,
)
from repro.stream import (
    ContinuousLearningPipeline,
    DriftConfig,
    SchedulerConfig,
    WindowConfig,
)


def pipeline_config():
    return StreamConfig(window=WindowConfig(max_records=96),
                        drift=DriftConfig(vocabulary_jaccard_min=0.6),
                        scheduler=SchedulerConfig(min_window_records=48,
                                                  warm_start=True))


class TestStreamStateDigest:
    def test_roundtrip_verifies(self, tmp_path):
        path = tmp_path / "state.json"
        save_stream_state({"counters": {"a": 1}, "nested": [1, 2.5]}, path)
        assert load_stream_state(path) == {"counters": {"a": 1},
                                           "nested": [1, 2.5]}

    def test_bitflip_fails_the_digest(self, tmp_path):
        path = tmp_path / "state.json"
        save_stream_state({"counters": {"a": 1}}, path)
        raw = path.read_text().replace('"a": 1', '"a": 2')
        path.write_text(raw)
        with pytest.raises(CheckpointCorruptError, match="sha256"):
            load_stream_state(path)

    def test_truncation_is_corrupt_not_a_json_crash(self, tmp_path):
        path = tmp_path / "state.json"
        save_stream_state({"counters": {"a": 1}}, path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(CheckpointCorruptError, match="torn"):
            load_stream_state(path)

    def test_missing_is_still_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_stream_state(tmp_path / "nope.json")

    def test_pre_integrity_checkpoint_without_digest_loads(self, tmp_path):
        path = tmp_path / "state.json"
        save_stream_state({"counters": {"a": 1}}, path)
        payload = json.loads(path.read_text())
        del payload["sha256"]
        path.write_text(json.dumps(payload))
        assert load_stream_state(path) == {"counters": {"a": 1}}


class TestRegistryIntegrity:
    def test_torn_model_file_is_detected(self, tmp_path):
        service, _ = train_service()
        save_registry(service.export_registry(), tmp_path)
        model_file = next(tmp_path.glob("building-*.npz"))
        data = model_file.read_bytes()
        model_file.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptError, match="sha256"):
            load_registry(tmp_path)

    def test_missing_model_file_is_corrupt_when_manifest_lists_it(
            self, tmp_path):
        service, _ = train_service()
        save_registry(service.export_registry(), tmp_path)
        next(tmp_path.glob("building-*.npz")).unlink()
        with pytest.raises(CheckpointCorruptError, match="missing"):
            load_registry(tmp_path)

    def test_torn_manifest_is_corrupt(self, tmp_path):
        service, _ = train_service()
        save_registry(service.export_registry(), tmp_path)
        manifest = tmp_path / "manifest.json"
        manifest.write_text(manifest.read_text()[:40])
        with pytest.raises(CheckpointCorruptError, match="torn"):
            load_registry(tmp_path)

    def test_pre_integrity_manifest_without_digests_loads(self, tmp_path):
        service, _ = train_service()
        save_registry(service.export_registry(), tmp_path)
        manifest = tmp_path / "manifest.json"
        payload = json.loads(manifest.read_text())
        for blob in payload["buildings"]:
            del blob["sha256"]
        manifest.write_text(json.dumps(payload))
        restored = load_registry(tmp_path)
        assert set(restored.building_ids) == set(service.building_ids)

    def test_stale_tmp_files_are_swept(self, tmp_path):
        service, _ = train_service()
        save_registry(service.export_registry(), tmp_path)
        (tmp_path / "manifest.json.tmp").write_text("{ torn")
        (tmp_path / "orphan.tmp.npz").write_bytes(b"half a model")
        load_registry(tmp_path)
        assert not (tmp_path / "manifest.json.tmp").exists()
        assert not (tmp_path / "orphan.tmp.npz").exists()
        # ... and saving sweeps too.
        (tmp_path / "again.tmp").write_text("x")
        save_registry(service.export_registry(), tmp_path)
        assert not (tmp_path / "again.tmp").exists()


class TestRotationAndRecovery:
    def run_two_checkpoints(self, tmp_path):
        service, splits = train_service()
        pipeline = ContinuousLearningPipeline(service, pipeline_config())
        first = stream_records(splits["bldg-A"], 30, prefix="one-",
                               jitter=2.0)
        pipeline.process_stream(first)
        pipeline.checkpoint(tmp_path / "ckpt")
        second = stream_records(splits["bldg-A"], 20, prefix="two-",
                                rng_seed=5, jitter=2.0)
        results = pipeline.process_stream(second)
        pipeline.checkpoint(tmp_path / "ckpt")
        return pipeline, second, results

    def test_second_checkpoint_retains_the_first_as_previous(self, tmp_path):
        self.run_two_checkpoints(tmp_path)
        previous = tmp_path / "ckpt" / "previous"
        assert (previous / "stream_state.json").is_file()
        assert (previous / "registry" / "manifest.json").is_file()
        state = load_stream_state(previous / "stream_state.json")
        assert state["processed_total"] == 30  # generation one, untouched

    def test_corrupt_current_falls_back_to_last_good(self, tmp_path):
        self.run_two_checkpoints(tmp_path)
        current = tmp_path / "ckpt" / "stream_state.json"
        current.write_text(current.read_text()[:100])  # tear it
        resumed = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        assert resumed.processed_total == 30  # recovered to generation one

    def test_recovered_pipeline_replays_identically(self, tmp_path):
        from test_chaos_drill import summarize

        _, second, results = self.run_two_checkpoints(tmp_path)
        current = tmp_path / "ckpt" / "stream_state.json"
        current.write_text("")  # zero-length file: the classic crash artifact
        resumed = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        replayed = resumed.process_stream(second)
        assert summarize(replayed) == summarize(results)

    def test_missing_current_state_falls_back(self, tmp_path):
        self.run_two_checkpoints(tmp_path)
        (tmp_path / "ckpt" / "stream_state.json").unlink()
        resumed = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        assert resumed.processed_total == 30

    def test_corrupt_registry_falls_back_wholesale(self, tmp_path):
        """State and registry must come from ONE generation — a corrupt
        current registry pulls the previous *state* in too."""
        self.run_two_checkpoints(tmp_path)
        model_file = next(
            (tmp_path / "ckpt" / "registry").glob("building-*.npz"))
        model_file.write_bytes(model_file.read_bytes()[:64])
        resumed = ContinuousLearningPipeline.resume(tmp_path / "ckpt")
        assert resumed.processed_total == 30

    def test_no_previous_and_corrupt_current_still_raises(self, tmp_path):
        service, splits = train_service()
        pipeline = ContinuousLearningPipeline(service, pipeline_config())
        pipeline.process_stream(stream_records(splits["bldg-A"], 10,
                                               jitter=2.0))
        pipeline.checkpoint(tmp_path / "ckpt")  # first generation: no previous
        current = tmp_path / "ckpt" / "stream_state.json"
        current.write_text(current.read_text()[:100])
        with pytest.raises(CheckpointCorruptError):
            ContinuousLearningPipeline.resume(tmp_path / "ckpt")

    def test_empty_directory_still_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ContinuousLearningPipeline.resume(tmp_path / "empty")
