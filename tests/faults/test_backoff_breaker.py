"""Retry backoff and the per-building retrain circuit breaker."""

from __future__ import annotations

import pytest

from stream_helpers import FakeClock, stream_records, train_service

from repro.obs.health import HealthMonitor
from repro.stream import (
    RetrainExecutor,
    RetrainScheduler,
    SchedulerConfig,
    WindowConfig,
    WindowManager,
)


class FlakyTrain:
    """Injected train function that fails until told to heal."""

    def __init__(self):
        self.failing = True
        self.calls = 0
        self._real = None  # bound lazily to the executor's default

    def bind(self, executor):
        self._real = RetrainExecutor._default_train.__get__(executor)
        return self

    def __call__(self, job, previous):
        self.calls += 1
        if self.failing:
            raise ValueError(f"injected fit failure #{self.calls}")
        return self._real(job, previous)


def build(clock, breaker_failures=2, jitter=0.0, initial=10.0):
    service, splits = train_service()
    windows = WindowManager(config=WindowConfig(max_records=64))
    for record in stream_records(splits["bldg-A"], 24, label_every=2):
        windows.append("bldg-A", record)
    train = FlakyTrain()
    executor = RetrainExecutor(service, max_workers=0, clock=clock)
    train.bind(executor)
    executor._train = train
    config = SchedulerConfig(min_window_records=10,
                             backoff_initial_seconds=initial,
                             backoff_multiplier=2.0,
                             backoff_jitter=jitter,
                             breaker_failures=breaker_failures)
    scheduler = RetrainScheduler(service, windows, config, clock=clock,
                                 executor=executor)
    return service, scheduler, train


def pend(scheduler):
    scheduler._pending["bldg-A"] = "drift:mac_churn"


class TestBackoff:
    def test_failed_retrain_waits_out_the_backoff(self):
        clock = FakeClock()
        service, scheduler, train = build(clock, breaker_failures=None)
        pend(scheduler)
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and "injected" in report.skipped_reason
        assert scheduler.pending == {"bldg-A": "drift:mac_churn"}

        # Inside the backoff window: the trigger stays latched, nothing runs.
        calls_before = train.calls
        assert scheduler.maybe_retrain("bldg-A") is None
        assert train.calls == calls_before
        assert (service.telemetry.counter("retrain_skipped_backoff_total")
                == 1)

        clock.advance(scheduler.retry_in("bldg-A") + 0.01)
        train.failing = False
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and report.swapped
        assert scheduler.consecutive_failures("bldg-A") == 0

    def test_backoff_grows_exponentially_and_deterministically(self):
        clock = FakeClock()
        _, scheduler, _ = build(clock, breaker_failures=None, jitter=0.0)
        delays = []
        for _ in range(4):
            pend(scheduler)
            clock.advance(10_000.0)  # clear any previous backoff
            scheduler.maybe_retrain("bldg-A")
            delays.append(scheduler.retry_in("bldg-A"))
        assert delays == [10.0, 20.0, 40.0, 80.0]

    def test_jitter_is_deterministic_per_attempt(self):
        clock_a, clock_b = FakeClock(), FakeClock()
        _, sched_a, _ = build(clock_a, breaker_failures=None, jitter=0.5)
        _, sched_b, _ = build(clock_b, breaker_failures=None, jitter=0.5)
        for scheduler in (sched_a, sched_b):
            pend(scheduler)
            scheduler.maybe_retrain("bldg-A")
        delay_a = sched_a.retry_in("bldg-A")
        assert delay_a == sched_b.retry_in("bldg-A")  # replayable
        assert 10.0 <= delay_a <= 15.0               # within jitter band

    def test_sync_failure_counts_executor_error_telemetry(self):
        clock = FakeClock()
        service, scheduler, _ = build(clock)
        pend(scheduler)
        scheduler.maybe_retrain("bldg-A")
        assert scheduler.executor.errors_total == 1
        assert service.telemetry.counter("retrain_errors_total") == 1


class TestBreakerLifecycle:
    def fail_until_open(self, scheduler, clock):
        for _ in range(2):
            pend(scheduler)
            retry = scheduler.retry_in("bldg-A")
            if retry:
                clock.advance(retry + 0.01)
            scheduler.maybe_retrain("bldg-A")
        assert scheduler.breaker_state("bldg-A") == "open"

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        service, scheduler, train = build(clock, breaker_failures=2)
        self.fail_until_open(scheduler, clock)
        assert scheduler.consecutive_failures("bldg-A") == 2
        assert service.telemetry.gauge("retrain_breaker_open") == 1

        # While open (backoff not yet elapsed) nothing reaches the fit.
        calls = train.calls
        pend(scheduler)
        assert scheduler.maybe_retrain("bldg-A") is None
        assert train.calls == calls
        assert (service.telemetry.counter(
            "retrain_skipped_breaker_open_total") >= 1)

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        service, scheduler, train = build(clock, breaker_failures=2)
        self.fail_until_open(scheduler, clock)
        train.failing = False
        pend(scheduler)
        clock.advance(scheduler.retry_in("bldg-A") + 0.01)
        report = scheduler.maybe_retrain("bldg-A")
        assert report is not None and report.swapped
        assert scheduler.breaker_state("bldg-A") == "closed"
        assert scheduler.consecutive_failures("bldg-A") == 0
        assert service.telemetry.gauge("retrain_breaker_open") == 0
        assert scheduler.retrains_total == 1

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        _, scheduler, train = build(clock, breaker_failures=2)
        self.fail_until_open(scheduler, clock)
        pend(scheduler)
        clock.advance(scheduler.retry_in("bldg-A") + 0.01)
        report = scheduler.maybe_retrain("bldg-A")  # the probe — still failing
        assert report is not None and "injected" in report.skipped_reason
        assert scheduler.breaker_state("bldg-A") == "open"
        assert scheduler.consecutive_failures("bldg-A") == 3
        assert train.calls == 3

    def test_backoff_gauge_tracks_pre_breaker_failures(self):
        clock = FakeClock()
        service, scheduler, _ = build(clock, breaker_failures=3)
        pend(scheduler)
        scheduler.maybe_retrain("bldg-A")
        assert service.telemetry.gauge("retrain_backoff_waiting") == 1
        assert service.telemetry.gauge("retrain_breaker_open") == 0


class TestHealthIntegration:
    def test_open_breaker_is_an_unhealthy_building(self):
        clock = FakeClock()
        service, scheduler, _ = build(clock, breaker_failures=2)

        class _NoDrift:
            @staticmethod
            def latched_kinds(building_id):
                return ()

        class PipelineView:  # duck surface HealthMonitor reads
            def __init__(self, scheduler):
                self.service = scheduler.service
                self.scheduler = scheduler
                self.drift = _NoDrift()

        monitor = HealthMonitor(pipeline=PipelineView(scheduler), clock=clock)
        card = monitor.building_scorecard("bldg-A", clock())
        assert card.status.value == "healthy"

        TestBreakerLifecycle().fail_until_open(scheduler, clock)
        card = monitor.building_scorecard("bldg-A", clock())
        assert card.status.value == "unhealthy"
        codes = {reason.code for reason in card.reasons}
        assert "retrain_circuit_open" in codes
        assert card.metrics["retrain_consecutive_failures"] == 2.0


class TestCheckpointCodec:
    def test_backoff_state_survives_roundtrip(self):
        clock = FakeClock()
        _, scheduler, _ = build(clock, breaker_failures=3)
        pend(scheduler)
        scheduler.maybe_retrain("bldg-A")
        remaining = scheduler.retry_in("bldg-A")
        assert remaining > 0
        state = scheduler.state_dict(now=clock())

        clock2 = FakeClock(start=500.0)  # a restarted node's clock
        _, restored, _ = build(clock2, breaker_failures=3)
        restored.restore_state(state, now=clock2())
        assert restored.consecutive_failures("bldg-A") == 1
        assert restored.retry_in("bldg-A") == pytest.approx(remaining)
        assert restored.breaker_state("bldg-A") == "closed"

    def test_old_checkpoint_without_failure_keys_loads_clean(self):
        clock = FakeClock()
        _, scheduler, _ = build(clock)
        state = scheduler.state_dict(now=clock())
        del state["failures"]
        del state["retry_in"]
        _, restored, _ = build(FakeClock())
        restored.restore_state(state)
        assert restored.consecutive_failures("bldg-A") == 0
        assert restored.breaker_state("bldg-A") == "closed"
        assert restored.retry_in("bldg-A") is None
