"""Tests for t-SNE, PCA projection and ASCII scatter rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.separation import nearest_neighbor_purity
from repro.visualization import TSNE, TSNEConfig, pca_project, scatter_to_text


def labeled_blobs(seed=0, count=30, dim=8, separation=12.0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.5, size=(count, dim))
    b = rng.normal(separation / np.sqrt(dim), 0.5, size=(count, dim))
    return np.vstack([a, b]), [0] * count + [1] * count


class TestTSNEConfig:
    @pytest.mark.parametrize("kwargs", [
        {"n_components": 0},
        {"perplexity": 0.0},
        {"iterations": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TSNEConfig(**kwargs)


class TestTSNE:
    def test_requires_enough_points(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((2, 4)))

    def test_output_shape_and_centering(self):
        embeddings, _ = labeled_blobs(count=15)
        projection = TSNE(TSNEConfig(iterations=60, seed=0)).fit_transform(embeddings)
        assert projection.shape == (30, 2)
        np.testing.assert_allclose(projection.mean(axis=0), [0.0, 0.0], atol=1e-8)
        assert np.isfinite(projection).all()

    def test_preserves_blob_structure(self):
        embeddings, labels = labeled_blobs(count=25)
        projection = TSNE(TSNEConfig(iterations=250, seed=0,
                                     perplexity=15.0)).fit_transform(embeddings)
        assert nearest_neighbor_purity(projection, labels) > 0.9

    def test_deterministic_given_seed(self):
        embeddings, _ = labeled_blobs(count=10)
        config = TSNEConfig(iterations=50, seed=3)
        first = TSNE(config).fit_transform(embeddings)
        second = TSNE(config).fit_transform(embeddings)
        np.testing.assert_allclose(first, second)


class TestPCAProject:
    def test_shape_and_variance_ordering(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(100, 5)) * np.array([10.0, 5.0, 1.0, 0.5, 0.1])
        projection = pca_project(data, n_components=2)
        assert projection.shape == (100, 2)
        assert projection[:, 0].var() >= projection[:, 1].var()

    def test_validation(self):
        with pytest.raises(ValueError):
            pca_project(np.zeros(5))
        with pytest.raises(ValueError):
            pca_project(np.zeros((4, 2)), n_components=3)

    def test_preserves_separation(self):
        embeddings, labels = labeled_blobs()
        projection = pca_project(embeddings, n_components=2)
        assert nearest_neighbor_purity(projection, labels) > 0.9


class TestScatterToText:
    def test_dimensions(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        text = scatter_to_text(points, [0, 1], width=20, height=10)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 20 for line in lines)

    def test_labels_rendered(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        text = scatter_to_text(points, [0, 1, 2])
        assert "0" in text and "1" in text and "2" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_to_text(np.zeros((2, 3)), [0, 1])
        with pytest.raises(ValueError):
            scatter_to_text(np.zeros((2, 2)), [0])
        with pytest.raises(ValueError):
            scatter_to_text(np.zeros((2, 2)), [0, 1], width=1)
