"""SpanTracer: determinism, parenthood, ring bound, export, breakdowns."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.tracer import (SpanTracer, critical_path, format_span_tree,
                              stage_breakdown)

from obs_helpers import FakeClock


def _trace_shape(tracer):
    """The structural fingerprint of a tracer's finished spans."""
    return [(s.trace_id, s.span_id, s.parent_id, s.name, s.start,
             s.duration_seconds, dict(s.attributes))
            for s in tracer.spans()]


def _run_workload(tracer):
    with tracer.span("request") as request:
        request.set("records", 2)
        with tracer.span("plan"):
            pass
        with tracer.span("compute"):
            tracer.add_span("embed.kernel", 0.25, {"samples": 100})
    with tracer.span("second-request"):
        pass


class TestDeterminism:
    def test_identical_span_trees_under_injected_clock(self):
        """Same workload + same fake clock => bit-identical span dumps.

        This is the property that makes traces diffable across runs: IDs
        are counters, times come from the injected clock, nothing reads
        wall clock or RNG.
        """
        first = SpanTracer(clock=FakeClock(tick=1.0))
        second = SpanTracer(clock=FakeClock(tick=1.0))
        _run_workload(first)
        _run_workload(second)
        shape = _trace_shape(first)
        assert shape == _trace_shape(second)
        assert shape  # non-trivial workload

    def test_ids_are_counters_not_random(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        spans = tracer.spans()
        assert [s.span_id for s in spans] == ["s000001", "s000002"]
        assert [s.trace_id for s in spans] == ["t000001", "t000002"]


class TestParenthood:
    def test_nesting_builds_parent_child_links(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.span.parent_id == parent.span.span_id
                assert child.span.trace_id == parent.span.trace_id
            assert tracer.current_span() is parent.span
        assert tracer.current_span() is None

    def test_root_span_can_pin_an_existing_trace(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("retrain", trace_id="req000042"):
            assert tracer.current_trace_id() == "req000042"
        assert tracer.spans()[0].trace_id == "req000042"

    def test_threads_have_independent_stacks(self):
        tracer = SpanTracer(clock=FakeClock())
        seen = {}

        def worker():
            with tracer.span("worker-root") as context:
                seen["parent_id"] = context.span.parent_id

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["parent_id"] is None    # not a child of main-root

    def test_exception_is_recorded_and_span_finished(self):
        tracer = SpanTracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "RuntimeError"
        assert tracer.current_span() is None


class TestRingBuffer:
    def test_capacity_bounds_finished_spans(self):
        tracer = SpanTracer(clock=FakeClock(), capacity=8)
        for i in range(50):
            with tracer.span(f"span-{i}"):
                pass
        spans = tracer.spans()
        assert len(spans) == 8
        assert spans[0].name == "span-42"     # oldest kept is 50 - 8
        assert spans[-1].name == "span-49"

    def test_drain_empties_the_buffer(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("one"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.spans() == []

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer = SpanTracer(clock=FakeClock(tick=0.5))
        _run_workload(tracer)
        path = tmp_path / "spans.jsonl"
        count = tracer.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(tracer.spans())
        decoded = [json.loads(line) for line in lines]
        assert decoded[0]["name"] == "plan"   # children finish before parents
        kernel = next(d for d in decoded if d["name"] == "embed.kernel")
        assert kernel["duration_seconds"] == 0.25
        assert kernel["attributes"] == {"samples": 100}

    def test_format_span_tree_indents_children(self):
        tracer = SpanTracer(clock=FakeClock())
        _run_workload(tracer)
        tree = format_span_tree(tracer.spans())
        lines = tree.splitlines()
        assert lines[0].startswith("request")
        assert any(line.startswith("  plan") for line in lines)
        assert any(line.startswith("    embed.kernel") for line in lines)
        assert any(line.startswith("second-request") for line in lines)

    def test_format_span_tree_orphans_become_roots(self):
        tracer = SpanTracer(clock=FakeClock(), capacity=2)
        with tracer.span("parent"):
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b"):
                pass
        # capacity 2 evicted nothing yet? parent + 2 children = 3 finished,
        # so the oldest (child-a) or the parent may be gone; whatever
        # remains must still render without KeyErrors.
        tree = format_span_tree(tracer.spans())
        assert tree  # renders, no crash, nothing silently dropped
        assert len(tree.splitlines()) == len(tracer.spans())


class TestStageBreakdown:
    def test_shares_partition_the_prefix_total(self):
        tracer = SpanTracer(clock=FakeClock())
        tracer.add_span("embed.alias_build", 1.0)
        tracer.add_span("embed.kernel", 2.0)
        tracer.add_span("embed.kernel", 1.0)
        tracer.add_span("serving.route", 10.0)   # outside the prefix
        stages = stage_breakdown(tracer.spans(), prefix="embed.")
        assert set(stages) == {"embed.alias_build", "embed.kernel"}
        assert stages["embed.kernel"]["seconds"] == 3.0
        assert stages["embed.kernel"]["count"] == 2
        assert stages["embed.kernel"]["share"] == pytest.approx(0.75)
        assert sum(info["share"] for info in stages.values()) \
            == pytest.approx(1.0)
        # Sorted by descending cost.
        assert list(stages) == ["embed.kernel", "embed.alias_build"]

    def test_empty_input(self):
        assert stage_breakdown([]) == {}


class TestCriticalPath:
    def _incident_trace(self):
        """request(10s) -> a(6s) -> deep(4s), with a 2s sibling ``b``."""
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("request"):
            clock.advance(1.0)
            with tracer.span("a"):
                clock.advance(2.0)
                with tracer.span("deep"):
                    clock.advance(4.0)
            with tracer.span("b"):
                clock.advance(2.0)
            clock.advance(1.0)
        return tracer

    def test_walks_the_slowest_chain_with_self_time(self):
        tracer = self._incident_trace()
        path = tracer.critical_path("t000001")
        assert [step["name"] for step in path] == ["request", "a", "deep"]
        assert [step["duration_seconds"] for step in path] == [10.0, 6.0, 4.0]
        # Self time: duration minus the time the children account for.
        assert [step["self_seconds"] for step in path] == [2.0, 2.0, 4.0]

    def test_unknown_trace_and_empty_tracer(self):
        tracer = self._incident_trace()
        assert tracer.critical_path("t999999") == []
        assert critical_path([]) == []

    def test_equal_durations_break_ties_on_span_id(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("root"):
            with tracer.span("first"):
                clock.advance(3.0)
            with tracer.span("second"):
                clock.advance(3.0)
        path = tracer.critical_path("t000001")
        # Counter span IDs order by creation; the later sibling wins the
        # tie deterministically instead of flapping run to run.
        assert [step["name"] for step in path] == ["root", "second"]

    def test_evicted_parent_orphans_become_roots(self):
        tracer = self._incident_trace()
        survivors = [s for s in tracer.spans() if s.name != "request"]
        path = critical_path(survivors)
        assert [step["name"] for step in path] == ["a", "deep"]

    def test_self_time_clamps_at_zero(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("parent"):
            # A synthetic child longer than its zero-duration parent must
            # not report negative parent self-time.
            tracer.add_span("kernel", 5.0, {})
        path = tracer.critical_path("t000001")
        assert path[0]["name"] == "parent"
        assert path[0]["self_seconds"] == 0.0
        assert path[1]["name"] == "kernel"
