"""Tracing must never change what the engine computes — bit for bit.

The tracer's no-RNG / injected-clock design exists so that the exact same
models and predictions come out whether observability is off (production
default), or on.  These tests enforce that end to end: offline fits and
online predictions are compared bytewise between a disabled run and a
traced run, and the traced run must additionally report a sane stage
breakdown (the profiling payoff that justifies the instrumentation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GRAFICS, GraficsConfig, EmbeddingConfig
from repro.data import make_experiment_split, small_test_building
from repro.obs import runtime as obs
from repro.obs.tracer import SpanTracer, stage_breakdown

from obs_helpers import FakeClock


@pytest.fixture(scope="module")
def split():
    dataset = small_test_building(num_floors=2, records_per_floor=20,
                                  aps_per_floor=10, seed=3)
    return make_experiment_split(dataset, labels_per_floor=4, seed=0)


CONFIG = GraficsConfig(
    embedding=EmbeddingConfig(samples_per_edge=20.0, seed=0),
    allow_unreachable_clusters=True)


def _fit(split):
    model = GRAFICS(CONFIG)
    model.fit(list(split.train_records), split.labels)
    return model


class TestFitIdentity:
    def test_fit_is_byte_identical_with_tracing_enabled(self, split):
        obs.disable()
        baseline = _fit(split)

        tracer, _ = obs.enable(tracer=SpanTracer(clock=FakeClock(tick=0.01)))
        try:
            traced = _fit(split)
        finally:
            obs.disable()

        assert np.array_equal(baseline.embedding.ego, traced.embedding.ego)
        assert np.array_equal(baseline.embedding.context,
                              traced.embedding.context)
        assert baseline.embedding.training_loss \
            == traced.embedding.training_loss

        # ... and the traced run must actually have produced the per-stage
        # fit spans the profiling hooks promise.
        names = {span.name for span in tracer.spans()}
        assert {"fit", "fit.graph", "fit.embedding", "fit.clustering",
                "embed.alias_build", "embed.sampling",
                "embed.kernel"} <= names

    def test_fit_stage_breakdown_partitions_embedding_time(self, split):
        tracer, _ = obs.enable(tracer=SpanTracer(clock=FakeClock(tick=0.01)))
        try:
            _fit(split)
        finally:
            obs.disable()
        stages = stage_breakdown(tracer.spans(), prefix="embed.")
        assert set(stages) == {"embed.alias_build", "embed.sampling",
                               "embed.kernel"}
        assert sum(info["share"] for info in stages.values()) \
            == pytest.approx(1.0)
        assert all(info["seconds"] >= 0.0 for info in stages.values())


class TestPredictionIdentity:
    def test_online_predictions_byte_identical_with_tracing(self, split):
        model = _fit(split)
        probes = [record.without_floor()
                  for record in split.test_records[:5]]

        obs.disable()
        baseline = [model.predict(probe, persist=False) for probe in probes]

        obs.enable(tracer=SpanTracer(clock=FakeClock(tick=0.01)))
        try:
            traced = [model.predict(probe, persist=False) for probe in probes]
        finally:
            obs.disable()

        for before, after in zip(baseline, traced):
            assert before.floor == after.floor
            assert before.distance == after.distance
            assert np.array_equal(before.embedding, after.embedding)

    def test_traced_prediction_reports_the_online_pipeline(self, split):
        model = _fit(split)
        probe = split.test_records[0].without_floor()
        tracer, _ = obs.enable(tracer=SpanTracer(clock=FakeClock(tick=0.01)))
        try:
            model.predict(probe, persist=False)
        finally:
            obs.disable()
        names = [span.name for span in tracer.spans()]
        for expected in ("online.predict", "online.stage", "online.embed",
                         "online.classify", "embed.alias_build",
                         "embed.kernel"):
            assert expected in names
        # Every span of the prediction belongs to one trace.
        assert len({span.trace_id for span in tracer.spans()}) == 1
