"""Tests for obs/timeseries: ring series, anomaly scoring, windowed tails."""

import math

import pytest

from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.timeseries import (HistogramWindow, MetricsSampler, TimeSeries,
                                  flatten_snapshot)

from obs_helpers import FakeClock


class TestTimeSeries:
    def test_append_and_samples_oldest_first(self):
        series = TimeSeries(capacity=4)
        for ts in range(3):
            series.append(float(ts), float(ts * 10))
        assert series.samples() == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]
        assert series.last() == (2.0, 20.0)

    def test_capacity_bounds_memory(self):
        series = TimeSeries(capacity=3)
        for ts in range(10):
            series.append(float(ts), float(ts))
        assert len(series) == 3
        assert series.values() == [7.0, 8.0, 9.0]

    def test_same_timestamp_replaces_instead_of_appending(self):
        series = TimeSeries()
        series.append(1.0, 5.0)
        series.append(1.0, 7.0)
        assert series.samples() == [(1.0, 7.0)]

    def test_rejects_backward_timestamps_and_tiny_capacity(self):
        series = TimeSeries()
        series.append(2.0, 1.0)
        with pytest.raises(ValueError):
            series.append(1.0, 1.0)
        with pytest.raises(ValueError):
            TimeSeries(capacity=1)

    def test_window_delta_and_rate(self):
        series = TimeSeries()
        for ts in range(0, 60, 10):  # counter growing by 5 every 10s
            series.append(float(ts), float(ts / 2))
        assert series.delta(30.0, now=50.0) == pytest.approx(15.0)
        assert series.rate(30.0, now=50.0) == pytest.approx(0.5)
        # Window reaching past history: best-effort over what is retained.
        assert series.delta(1000.0, now=50.0) == pytest.approx(25.0)
        # Fewer than two in-window samples -> no rate.
        assert series.delta(5.0, now=50.0) == 0.0
        assert TimeSeries().rate(10.0) == 0.0

    def test_increase_treats_series_born_in_window_as_from_zero(self):
        born = TimeSeries()
        born.append(100.0, 25.0)  # counter materialised mid-window
        assert born.delta(60.0, now=110.0) == 0.0
        assert born.increase(60.0, now=110.0) == pytest.approx(25.0)
        # A long-lived series is the plain newest-minus-oldest delta.
        old = TimeSeries()
        for ts in range(0, 200, 10):
            old.append(float(ts), float(ts))
        assert old.increase(60.0, now=190.0) == old.delta(60.0, now=190.0)
        # A single stale sample outside any birth window reads as zero.
        assert born.increase(5.0, now=500.0) == 0.0

    def test_ewma_follows_level_shift(self):
        series = TimeSeries()
        for ts in range(10):
            series.append(float(ts), 1.0)
        low = series.ewma(alpha=0.5)
        for ts in range(10, 20):
            series.append(float(ts), 100.0)
        assert low == pytest.approx(1.0)
        assert series.ewma(alpha=0.5) > 90.0

    def test_zscore_flags_spike_and_respects_min_history(self):
        series = TimeSeries()
        values = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 9.8, 10.1, 10.0]
        for ts, value in enumerate(values):
            series.append(float(ts), value)
        assert abs(series.zscore()) < 3.0
        series.append(float(len(values)), 50.0)
        assert series.zscore() > 3.0
        assert series.anomaly_score() == series.zscore()

        short = TimeSeries()
        short.append(0.0, 1.0)
        short.append(1.0, 100.0)
        assert short.zscore(min_history=8) == 0.0

    def test_zscore_flat_history_then_jump_is_infinite(self):
        series = TimeSeries()
        for ts in range(9):
            series.append(float(ts), 5.0)
        assert series.zscore() == 0.0
        series.append(9.0, 6.0)
        assert series.zscore() == math.inf

    def test_zscore_is_deterministic(self):
        def build():
            series = TimeSeries()
            for ts in range(12):
                series.append(float(ts), float((ts * 7) % 5))
            return series.zscore()

        assert build() == build()


def test_flatten_snapshot_paths_and_skips():
    flat = flatten_snapshot({
        "uptime_seconds": 12.5,
        "counters": {"hits": 3},
        "latency": {"request_seconds": {"p95": 0.1}},
        "ok": True,              # booleans skipped
        "label": "text",         # non-numeric skipped
    })
    assert flat == {"uptime_seconds": 12.5, "counters.hits": 3.0,
                    "latency.request_seconds.p95": 0.1}


class TestMetricsSampler:
    def test_samples_registry_counters_on_injected_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        sampler = MetricsSampler(registry, clock=clock)
        for _ in range(3):
            registry.increment("requests_total", 10)
            clock.advance(10.0)
            sampler.sample()
        series = sampler.series("counters.requests_total")
        assert series.values() == [10.0, 20.0, 30.0]
        assert series.delta(30.0) == pytest.approx(20.0)
        assert "counters.requests_total" in sampler.names()
        assert sampler.last_snapshot["counters"]["requests_total"] == 30

    def test_unmoved_clock_does_not_double_count(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        sampler = MetricsSampler(registry, clock=clock)
        registry.increment("hits")
        sampler.sample()
        registry.increment("hits")
        sampler.sample()  # same fake instant: replaces, never appends
        assert len(sampler.series("counters.hits")) == 1
        assert sampler.series("counters.hits").values() == [2.0]

    def test_callable_source_and_anomalies(self):
        clock = FakeClock()
        state = {"value": 10.0}
        sampler = MetricsSampler(lambda: {"gauges": {"depth": state["value"]}},
                                 clock=clock)
        for _ in range(9):
            sampler.sample()
            clock.advance(1.0)
        state["value"] = 500.0
        sampler.sample()
        anomalies = sampler.anomalies(threshold=3.0)
        assert list(anomalies) == ["gauges.depth"]
        assert anomalies["gauges.depth"] == math.inf

    def test_unknown_series_is_empty_not_keyerror(self):
        sampler = MetricsSampler(MetricsRegistry(), clock=FakeClock())
        assert sampler.series("counters.never_seen").delta(60.0) == 0.0


class TestHistogramWindow:
    def _histogram(self):
        return LatencyHistogram(bounds=(0.01, 0.1, 1.0))

    def test_percentile_recovers_after_spike_leaves_window(self):
        histogram = self._histogram()
        window = HistogramWindow(window_seconds=30.0)
        for i in range(5):
            histogram.record(0.005)
            window.observe(float(i * 10), histogram)
        # Spike at t=50: cumulative p95 will never forget it...
        for _ in range(10):
            histogram.record(0.5)
        window.observe(50.0, histogram)
        assert histogram.percentile(0.95) == pytest.approx(1.0)
        assert window.percentile(0.95, now=50.0) == pytest.approx(1.0)
        # ...but once only fast traffic lands inside the window, the
        # windowed tail comes back down while the cumulative one cannot.
        for i in range(6, 16):
            histogram.record(0.005)
            window.observe(float(i * 10), histogram)
        assert window.percentile(0.95, now=150.0) == pytest.approx(0.01)
        assert histogram.percentile(0.95) == pytest.approx(1.0)

    def test_count_is_windowed(self):
        histogram = self._histogram()
        window = HistogramWindow(window_seconds=10.0)
        histogram.record(0.05)
        window.observe(0.0, histogram)
        for i in range(3):
            histogram.record(0.05)
            window.observe(float(10 + i), histogram)
        assert window.count(now=13.0) == 3
        assert window.count(now=100.0) == 0

    def test_single_snapshot_bootstrap_counts_everything(self):
        histogram = self._histogram()
        histogram.record(0.05)
        histogram.record(0.5)
        window = HistogramWindow(window_seconds=60.0)
        window.observe(0.0, histogram)
        assert window.count() == 2
        assert window.percentile(1.0) == pytest.approx(1.0)

    def test_overflow_bucket_reports_observed_max(self):
        histogram = self._histogram()
        window = HistogramWindow(window_seconds=60.0)
        window.observe(0.0, histogram)
        histogram.record(4.2)
        window.observe(1.0, histogram)
        assert window.percentile(1.0, now=1.0) == pytest.approx(4.2)

    def test_empty_window_and_validation(self):
        window = HistogramWindow(window_seconds=10.0)
        assert window.percentile(0.95) == 0.0
        assert window.count() == 0
        with pytest.raises(ValueError):
            window.percentile(1.5)
        with pytest.raises(ValueError):
            HistogramWindow(window_seconds=0.0)
        histogram = self._histogram()
        window.observe(0.0, histogram)
        with pytest.raises(ValueError):
            window.observe(1.0, LatencyHistogram(bounds=(0.5, 1.0)))
        with pytest.raises(ValueError):
            window.observe(-1.0, histogram)

    def test_same_timestamp_observation_replaces(self):
        histogram = self._histogram()
        window = HistogramWindow(window_seconds=10.0)
        histogram.record(0.05)
        window.observe(0.0, histogram)
        histogram.record(0.05)
        window.observe(0.0, histogram)
        assert window.count() == 2  # one snapshot holding both observations
