"""Tests for obs/slo: objectives, burn rates, multi-window alerting."""

from __future__ import annotations

import json
import logging

import pytest

from obs_helpers import FakeClock
from repro.obs.log import LOGGER_NAME
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (ErrorRatioObjective, GaugeCeilingObjective,
                           LatencyObjective, SLOMonitor,
                           default_serving_objectives)
from repro.obs.timeseries import MetricsSampler


def snapshot_with(counters=None, p95=0.0, gauges=None):
    return {
        "counters": counters or {},
        "gauges": gauges or {},
        "latency": {"request_seconds": {"p50": p95 / 2, "p95": p95,
                                        "p99": p95 * 2}},
    }


class TestObjectives:
    def test_latency_objective_ok_and_violated(self):
        objective = LatencyObjective("p95", threshold_seconds=0.25)
        ok = objective.evaluate(snapshot_with(p95=0.1))
        assert ok.ok and ok.value == pytest.approx(0.1)
        bad = objective.evaluate(snapshot_with(p95=0.5))
        assert not bad.ok
        assert bad.to_dict()["kind"] == "latency"
        # Missing histogram evaluates as 0 (an idle service meets its SLO).
        assert objective.evaluate({"latency": {}}).ok

    def test_latency_objective_validation(self):
        with pytest.raises(ValueError):
            LatencyObjective("bad", threshold_seconds=0.1, quantile=0.42)
        with pytest.raises(ValueError):
            LatencyObjective("bad", threshold_seconds=0.0)

    def test_error_ratio_point_in_time(self):
        objective = ErrorRatioObjective("rej", max_ratio=0.1,
                                        min_observations=10)
        quiet = objective.evaluate(snapshot_with(
            counters={"rejections_total": 3, "requests_total": 5}))
        assert quiet.ok  # below min_observations: not judged yet
        bad = objective.evaluate(snapshot_with(
            counters={"rejections_total": 5, "requests_total": 20}))
        assert not bad.ok and bad.value == pytest.approx(0.25)

    def test_error_ratio_burn_rate_from_window_deltas(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        sampler = MetricsSampler(registry, clock=clock)
        objective = ErrorRatioObjective("rej", max_ratio=0.1)
        for _ in range(6):
            registry.increment("requests_total", 10)
            registry.increment("rejections_total", 3)  # 30% bad, budget 10%
            sampler.sample()
            clock.advance(10.0)
        assert objective.burn_rate(sampler, 60.0,
                                   now=clock()) == pytest.approx(3.0)
        # An empty window burns nothing.
        assert objective.burn_rate(sampler, 60.0, now=clock() + 500.0) == 0.0

    def test_gauge_ceiling(self):
        objective = GaugeCeilingObjective("staleness", gauge="retrains_pending",
                                          max_value=2.0)
        assert objective.evaluate(snapshot_with(
            gauges={"retrains_pending": 1})).ok
        assert not objective.evaluate(snapshot_with(
            gauges={"retrains_pending": 5})).ok

    def test_default_serving_objectives_shape(self):
        objectives = default_serving_objectives()
        assert [objective.kind for objective in objectives] == [
            "latency", "error_ratio"]


class TestSLOMonitor:
    def _monitor(self, registry, clock, **kwargs):
        kwargs.setdefault("fast_window_seconds", 60.0)
        kwargs.setdefault("slow_window_seconds", 300.0)
        kwargs.setdefault("burn_rate_threshold", 2.0)
        return SLOMonitor(
            registry,
            [ErrorRatioObjective("rejections", max_ratio=0.1,
                                 min_observations=1)],
            clock=clock, **kwargs)

    def _drive(self, registry, monitor, clock, steps, good=10, bad=0,
               step_seconds=10.0):
        payload = None
        for _ in range(steps):
            registry.increment("requests_total", good + bad)
            if bad:
                registry.increment("rejections_total", bad)
            payload = monitor.check()
            clock.advance(step_seconds)
        return payload

    def test_alert_fires_only_when_both_windows_burn(self, caplog):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        monitor = self._monitor(registry, clock)
        # Healthy hour: no alerts.
        payload = self._drive(registry, monitor, clock, steps=30)
        assert payload["ok"] and not payload["alerting"]

        # A short burst bad enough for the fast window is absorbed while
        # the slow window still remembers the healthy hour...
        registry.increment("requests_total", 30)
        registry.increment("rejections_total", 30)
        payload = monitor.check()
        status = payload["objectives"][0]
        assert status["burn_fast"] > 2.0
        assert not status["alerting"], "slow window must veto a short blip"

        # ...but sustained burn eventually exceeds both windows.
        with caplog.at_level(logging.INFO, logger=LOGGER_NAME):
            payload = self._drive(registry, monitor, clock, steps=30,
                                  good=0, bad=10)
        assert payload["alerting"] == ["rejections"]
        assert monitor.alerting == frozenset({"rejections"})
        assert not payload["ok"]
        events = [json.loads(r.message) for r in caplog.records]
        fired = [e for e in events if e["event"] == "slo_burn_rate_alert"]
        assert len(fired) == 1 and fired[0]["objective"] == "rejections"

    def test_alert_resolves_when_either_window_recovers(self, caplog):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        monitor = self._monitor(registry, clock)
        self._drive(registry, monitor, clock, steps=30, good=0, bad=10)
        assert monitor.alerting
        with caplog.at_level(logging.INFO, logger=LOGGER_NAME):
            payload = self._drive(registry, monitor, clock, steps=10)
        assert not monitor.alerting
        assert payload["alerting"] == []
        events = [json.loads(r.message) for r in caplog.records]
        assert any(e["event"] == "slo_burn_rate_resolved" for e in events)

    def test_check_payload_shape_and_status_alias(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        monitor = SLOMonitor(registry, default_serving_objectives(),
                             clock=clock)
        payload = monitor.status()
        assert payload["ok"] is True
        assert {"checked_at", "objectives", "alerting",
                "burn_rate_threshold"} <= payload.keys()
        assert [o["name"] for o in payload["objectives"]] == [
            "request_latency_p95", "routing_rejections"]

    def test_validation(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with pytest.raises(ValueError, match="unique"):
            SLOMonitor(registry,
                       [GaugeCeilingObjective("dup", "g", 1.0),
                        GaugeCeilingObjective("dup", "h", 1.0)], clock=clock)
        with pytest.raises(ValueError, match="slow window"):
            SLOMonitor(registry, [], clock=clock,
                       fast_window_seconds=600.0, slow_window_seconds=60.0)
        with pytest.raises(ValueError):
            SLOMonitor(registry, [], clock=clock, burn_rate_threshold=0.0)
