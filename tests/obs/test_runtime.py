"""The global on/off switch, the null-span fast path and structured logs."""

from __future__ import annotations

import json
import logging

from repro.obs import runtime as obs
from repro.obs.log import LOGGER_NAME, log_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer

from obs_helpers import FakeClock


class TestDisabledPath:
    def test_span_returns_the_shared_null_singleton(self):
        first = obs.span("anything")
        second = obs.span("anything-else")
        assert first is second               # no allocation per call

    def test_null_span_supports_the_full_span_protocol(self):
        with obs.span("x") as span:
            assert span.set("key", "value") is span
            assert span.span is None

    def test_everything_noops_while_disabled(self):
        obs.stage("embed.kernel", 1.0)
        obs.metric_increment("counter")
        obs.observe("latency", 0.1)
        obs.set_gauge("gauge", 1.0)
        assert obs.current_trace_id() is None
        assert obs.active_tracer() is None
        assert obs.get_metrics() is None
        assert not obs.enabled()


class TestEnableDisable:
    def test_enable_creates_and_returns_the_pair(self):
        tracer, metrics = obs.enable()
        assert obs.enabled()
        assert obs.active_tracer() is tracer
        assert obs.get_metrics() is metrics

    def test_enable_accepts_injected_instances(self):
        tracer = SpanTracer(clock=FakeClock())
        metrics = MetricsRegistry()
        installed = obs.enable(tracer=tracer, metrics=metrics)
        assert installed == (tracer, metrics)
        with obs.span("routed"):
            pass
        assert tracer.spans()[0].name == "routed"
        obs.metric_increment("bumped")
        assert metrics.counter("bumped") == 1

    def test_disable_restores_the_null_path(self):
        obs.enable()
        obs.disable()
        assert obs.span("x") is obs.span("y")


class TestLogEvents:
    def test_log_event_emits_one_json_line(self, caplog):
        with caplog.at_level(logging.INFO, logger=LOGGER_NAME):
            log_event("hot_swap_installed", building_id="b-1", requeued=2)
        (record,) = caplog.records
        payload = json.loads(record.getMessage())
        assert payload == {"event": "hot_swap_installed",
                           "building_id": "b-1", "requeued": 2}

    def test_log_event_attaches_live_trace_id(self, caplog):
        obs.enable(tracer=SpanTracer(clock=FakeClock()))
        with caplog.at_level(logging.INFO, logger=LOGGER_NAME):
            with obs.span("request"):
                log_event("drift_latched", kind="mac_churn")
        payload = json.loads(caplog.records[0].getMessage())
        assert payload["trace_id"] == "t000001"

    def test_log_event_skips_serialisation_when_level_disabled(self, caplog):
        logging.getLogger(LOGGER_NAME).setLevel(logging.WARNING)
        try:
            with caplog.at_level(logging.WARNING, logger=LOGGER_NAME):
                log_event("checkpoint_written",
                          unserialisable=object())  # never touched
        finally:
            logging.getLogger(LOGGER_NAME).setLevel(logging.NOTSET)
        assert caplog.records == []

    def test_log_event_stringifies_exotic_values(self, caplog):
        with caplog.at_level(logging.INFO, logger=LOGGER_NAME):
            log_event("checkpoint_written", path=object())
        payload = json.loads(caplog.records[0].getMessage())
        assert payload["event"] == "checkpoint_written"
        assert isinstance(payload["path"], str)
