"""Shared fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro.obs import runtime as obs


@pytest.fixture(autouse=True)
def _observability_off():
    """Every test starts and ends with the global switch off.

    The runtime switch is process-global state; a test that enables it and
    fails before its own cleanup must not leak a live tracer into the next
    test (or into the engine byte-identity suites running later).
    """
    obs.disable()
    yield
    obs.disable()


