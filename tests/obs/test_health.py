"""Tests for obs/health: policy validation, verdict fusion, scorecards.

The monitor reads its watched objects through a duck surface only, so
these tests drive it with small fakes and a deterministic clock — the
end-to-end wiring against the real serving/stream stacks lives in
``test_server.py``.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.obs.health import (HealthMonitor, HealthPolicy, HealthReason,
                              HealthStatus, Scorecard)
from repro.obs.metrics import MetricsRegistry
from repro.stream.drift import DriftKind

from obs_helpers import FakeClock


class FakeService:
    """Minimal one-lock serving façade: telemetry + building ids."""

    def __init__(self, clock, building_ids=("bldg-A",)):
        self.telemetry = MetricsRegistry(clock=clock)
        self.building_ids = list(building_ids)


class FakeShard:
    def __init__(self, index, clock, buildings):
        self.index = index
        self.telemetry = MetricsRegistry(clock=clock)
        self.registry = SimpleNamespace(building_ids=list(buildings))
        self.batcher = SimpleNamespace(pending_count=0)


class FakeShardedService:
    def __init__(self, clock, assignments):
        self.telemetry = MetricsRegistry(clock=clock)
        self.shards = [FakeShard(index, clock, buildings)
                       for index, buildings in enumerate(assignments)]
        self.building_ids = [building for buildings in assignments
                             for building in buildings]
        self._owner = {building: shard
                       for shard in self.shards
                       for building in shard.registry.building_ids}

    def shard_for(self, building_id):
        return self._owner[building_id]


class FakeDrift:
    def __init__(self):
        self.latched = {}

    def latched_kinds(self, building_id):
        return tuple(self.latched.get(building_id, ()))


class FakeScheduler:
    def __init__(self):
        self.pending = {}
        self.inflight = set()
        self.swap_ages = {}

    def last_swap_age(self, building_id, now=None):
        return self.swap_ages.get(building_id)


class FakePipeline:
    def __init__(self, service):
        self.service = service
        self.drift = FakeDrift()
        self.scheduler = FakeScheduler()


@pytest.fixture
def clock():
    return FakeClock(start=1000.0)


def _drive_latency(monitor, clock, seconds, samples=10, step=1.0):
    """Record ``samples`` request latencies, observing after each."""
    for _ in range(samples):
        monitor.service.telemetry.observe("request_seconds", seconds)
        clock.advance(step)
        monitor.observe()


class TestHealthPolicy:
    def test_defaults_are_valid(self):
        policy = HealthPolicy()
        assert policy.window_seconds == 300.0
        assert policy.unhealthy_reason_count == 2

    @pytest.mark.parametrize("kwargs", [
        {"window_seconds": 0.0},
        {"tail_quantile": 0.0},
        {"tail_quantile": 1.5},
        {"degraded_tail_latency_seconds": 2.0,
         "unhealthy_tail_latency_seconds": 1.0},
        {"degraded_rejection_rate": 0.6},  # above unhealthy default 0.5
        {"unhealthy_reason_count": 0},
    ])
    def test_rejects_inconsistent_thresholds(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)


class TestScorecardShapes:
    def test_reason_and_scorecard_to_dict(self):
        reason = HealthReason(code="tail_latency", severity="degraded",
                              detail="slow", value=0.3, threshold=0.25)
        card = Scorecard(subject="bldg-A", status=HealthStatus.DEGRADED,
                         reasons=(reason,), metrics={"x": 1.0})
        payload = card.to_dict()
        assert payload["status"] == "degraded"
        assert payload["reasons"] == [{
            "code": "tail_latency", "severity": "degraded", "detail": "slow",
            "value": 0.3, "threshold": 0.25}]
        # Optional numbers are omitted when absent, not emitted as null.
        bare = HealthReason(code="x", severity="info", detail="d").to_dict()
        assert "value" not in bare and "threshold" not in bare

    def test_requires_a_service_or_pipeline(self):
        with pytest.raises(ValueError):
            HealthMonitor()


class TestVerdictFusion:
    def test_idle_service_is_simply_healthy(self, clock):
        monitor = HealthMonitor(FakeService(clock), clock=clock)
        report = monitor.report()
        assert report["status"] == "healthy"
        assert report["buildings"]["bldg-A"]["status"] == "healthy"
        assert report["buildings"]["bldg-A"]["reasons"] == []
        assert report["shards"] == {}

    def test_latency_spike_degrades_then_recovers(self, clock):
        monitor = HealthMonitor(FakeService(clock), clock=clock)
        _drive_latency(monitor, clock, seconds=0.4)
        report = monitor.report()
        card = report["buildings"]["bldg-A"]
        assert card["status"] == "degraded"
        (reason,) = card["reasons"]
        assert reason["code"] == "tail_latency"
        assert reason["severity"] == "degraded"
        assert reason["value"] > reason["threshold"] == 0.25
        # Once the spike leaves the trailing window the verdict heals.
        clock.advance(monitor.policy.window_seconds + 10.0)
        assert monitor.report()["status"] == "healthy"

    def test_outage_class_latency_is_unhealthy_alone(self, clock):
        monitor = HealthMonitor(FakeService(clock), clock=clock)
        _drive_latency(monitor, clock, seconds=2.0)
        card = monitor.report()["buildings"]["bldg-A"]
        assert card["status"] == "unhealthy"
        assert card["reasons"][0]["severity"] == "unhealthy"

    def test_few_observations_never_judge_latency(self, clock):
        monitor = HealthMonitor(FakeService(clock), clock=clock)
        _drive_latency(monitor, clock, seconds=5.0, samples=3)
        assert monitor.report()["status"] == "healthy"

    def test_corroborated_degraded_reasons_escalate(self, clock):
        service = FakeService(clock)
        pipeline = FakePipeline(service)
        monitor = HealthMonitor(service, pipeline, clock=clock)
        pipeline.drift.latched["bldg-A"] = [DriftKind.MAC_CHURN]
        _drive_latency(monitor, clock, seconds=0.4)
        card = monitor.report()["buildings"]["bldg-A"]
        # drift latch + latency, each only "degraded", corroborate to worse.
        assert card["status"] == "unhealthy"
        codes = {reason["code"] for reason in card["reasons"]}
        assert codes == {"drift_latched:mac_churn", "tail_latency"}

    def test_info_reasons_never_affect_the_verdict(self, clock):
        service = FakeService(clock)
        pipeline = FakePipeline(service)
        monitor = HealthMonitor(service, pipeline, clock=clock)
        pipeline.scheduler.pending["bldg-A"] = object()
        card = monitor.report()["buildings"]["bldg-A"]
        assert card["status"] == "healthy"
        assert card["reasons"][0]["code"] == "retrain_pending"
        assert card["reasons"][0]["severity"] == "info"
        pipeline.scheduler.pending.clear()
        pipeline.scheduler.inflight.add("bldg-A")
        card = monitor.report()["buildings"]["bldg-A"]
        assert "in flight" in card["reasons"][0]["detail"]

    def test_retrain_overdue_requires_latched_drift_and_old_swap(self, clock):
        service = FakeService(clock)
        pipeline = FakePipeline(service)
        monitor = HealthMonitor(service, pipeline, clock=clock)
        pipeline.scheduler.swap_ages["bldg-A"] = 900.0
        codes = {r["code"]
                 for r in monitor.report()["buildings"]["bldg-A"]["reasons"]}
        assert "retrain_overdue" not in codes  # old swap alone is fine
        pipeline.drift.latched["bldg-A"] = [DriftKind.DISTANCE_SHIFT]
        card = monitor.report()["buildings"]["bldg-A"]
        codes = {r["code"] for r in card["reasons"]}
        assert "retrain_overdue" in codes
        assert card["metrics"]["last_swap_age_seconds"] == 900.0


class TestServiceScorecard:
    def test_rejection_rate_thresholds(self, clock):
        service = FakeService(clock)
        monitor = HealthMonitor(service, clock=clock)
        service.telemetry.increment("requests_total", 100)
        service.telemetry.increment("rejections_total", 20)
        clock.advance(5.0)
        card = monitor.report()["service"]
        (reason,) = card["reasons"]
        assert reason["code"] == "rejection_rate"
        assert reason["severity"] == "degraded"
        service.telemetry.increment("requests_total", 100)
        service.telemetry.increment("rejections_total", 95)
        clock.advance(5.0)
        card = monitor.report()["service"]
        assert card["status"] == "unhealthy"
        assert card["reasons"][0]["severity"] == "unhealthy"

    def test_registry_wide_latch_and_retrain_errors(self, clock):
        service = FakeService(clock)
        pipeline = FakePipeline(service)
        monitor = HealthMonitor(service, pipeline, clock=clock)
        pipeline.drift.latched[None] = [DriftKind.ROUTER_REJECTION]
        service.telemetry.increment("retrain_errors_total")
        clock.advance(5.0)
        card = monitor.report()["service"]
        codes = {reason["code"] for reason in card["reasons"]}
        assert codes == {"drift_latched:router_rejection", "retrain_errors"}
        assert card["status"] == "unhealthy"  # two corroborating signals
        assert card["metrics"]["recent_retrain_errors"] == 1.0

    def test_cache_hit_rate_floor(self, clock):
        service = FakeService(clock)
        monitor = HealthMonitor(service, clock=clock)
        service.telemetry.increment("cache_misses_total", 99)
        service.telemetry.increment("cache_hits_total", 1)
        clock.advance(5.0)
        card = monitor.report()["buildings"]["bldg-A"]
        (reason,) = card["reasons"]
        assert reason["code"] == "cache_hit_rate"
        assert card["metrics"]["cache_hit_rate"] == pytest.approx(0.01)


class TestShardedAttribution:
    def test_building_signals_come_from_owning_shard(self, clock):
        service = FakeShardedService(clock, [["bldg-A"], ["bldg-B"]])
        monitor = HealthMonitor(service, clock=clock)
        # Slow traffic on shard 1 only.
        for _ in range(10):
            service.shards[1].telemetry.observe("request_seconds", 0.4)
            clock.advance(1.0)
            monitor.observe()
        report = monitor.report()
        assert report["buildings"]["bldg-A"]["status"] == "healthy"
        assert report["buildings"]["bldg-B"]["status"] == "degraded"
        assert report["shards"]["shard0"]["status"] == "healthy"
        assert report["shards"]["shard1"]["status"] == "degraded"
        assert report["shards"]["shard1"]["metrics"]["buildings"] == 1.0
        assert report["status"] == "degraded"  # overall is the worst verdict


class TestDeltaSamplerEffectiveness:
    def test_info_reason_surfaces_without_flipping_verdict(self, clock):
        """Runtime delta-sampler counters become an info-severity reason on
        building scorecards — visibility into cold-path cache
        effectiveness, never a verdict change."""
        from repro.obs import runtime as obs_runtime

        service = FakeService(clock)
        monitor = HealthMonitor(service, clock=clock)
        obs_runtime.enable()
        try:
            obs_runtime.metric_increment("delta_sampler_hits_total", 9)
            obs_runtime.metric_increment("delta_sampler_rebuilds_total", 1)
            clock.advance(5.0)
            card = monitor.report()["buildings"]["bldg-A"]
        finally:
            obs_runtime.disable()
        (reason,) = card["reasons"]
        assert reason["code"] == "delta_sampler_cache"
        assert reason["severity"] == "info"
        assert card["status"] == "healthy"
        assert card["metrics"]["delta_sampler_hit_rate"] == pytest.approx(0.9)
        assert card["metrics"]["delta_sampler_composed"] == 10.0

    def test_silent_when_nothing_composed(self, clock):
        """Exact-mode deployments (zero compositions) get no reason and no
        metrics — the scorecard shape is unchanged for them."""
        from repro.obs import runtime as obs_runtime

        service = FakeService(clock)
        monitor = HealthMonitor(service, clock=clock)
        obs_runtime.enable()
        try:
            clock.advance(5.0)
            card = monitor.report()["buildings"]["bldg-A"]
        finally:
            obs_runtime.disable()
        assert card["reasons"] == []
        assert "delta_sampler_hit_rate" not in card["metrics"]

    def test_disabled_runtime_drops_the_subject(self, clock):
        from repro.obs import runtime as obs_runtime

        service = FakeService(clock)
        monitor = HealthMonitor(service, clock=clock)
        obs_runtime.enable()
        try:
            obs_runtime.metric_increment("delta_sampler_hits_total", 3)
            clock.advance(5.0)
            monitor.report()
        finally:
            obs_runtime.disable()
        clock.advance(5.0)
        card = monitor.report()["buildings"]["bldg-A"]
        assert card["reasons"] == []


class TestComputePoolReason:
    @staticmethod
    def _pooled_sharded(clock):
        service = FakeShardedService(clock, [["bldg-A"], ["bldg-B"]])
        # The monitor duck-types the pool: any non-None attribute means the
        # service dispatches cold compute to worker processes.
        service.compute_pool = object()
        return service

    def test_info_reason_on_shard_scorecards(self, clock):
        """Pool counters (recorded in the service-level telemetry) surface
        as an info-severity ``compute_pool`` reason with dispatch rate and
        snapshot hit rate — on every shard scorecard, never moving a
        verdict."""
        service = self._pooled_sharded(clock)
        monitor = HealthMonitor(service, clock=clock)
        service.telemetry.increment("compute_pool_dispatch_total", 20)
        service.telemetry.increment("compute_pool_snapshot_ships_total", 2)
        clock.advance(5.0)
        report = monitor.report()
        for name in ("shard0", "shard1"):
            card = report["shards"][name]
            assert card["status"] == "healthy"
            (reason,) = card["reasons"]
            assert reason["code"] == "compute_pool"
            assert reason["severity"] == "info"
            assert card["metrics"]["compute_pool_snapshot_hit_rate"] == \
                pytest.approx(0.9)
            assert card["metrics"]["compute_pool_dispatch_rate"] == \
                pytest.approx(20.0 / monitor.policy.window_seconds)
        service_card = report["service"]
        assert service_card["status"] == "healthy"
        assert any(r["code"] == "compute_pool"
                   for r in service_card["reasons"])

    def test_restarts_show_in_metrics_and_detail(self, clock):
        service = self._pooled_sharded(clock)
        monitor = HealthMonitor(service, clock=clock)
        service.telemetry.increment("compute_pool_dispatch_total", 4)
        service.telemetry.increment("compute_pool_worker_restarts_total", 1)
        clock.advance(5.0)
        card = monitor.report()["shards"]["shard0"]
        assert card["metrics"]["compute_pool_recent_restarts"] == 1.0
        (reason,) = card["reasons"]
        assert "restart" in reason["detail"]

    def test_silent_without_a_pool_or_without_dispatches(self, clock):
        # No pool attribute at all (compute_workers=0 services).
        bare = FakeShardedService(clock, [["bldg-A"]])
        monitor = HealthMonitor(bare, clock=clock)
        clock.advance(5.0)
        card = monitor.report()["shards"]["shard0"]
        assert card["reasons"] == []
        assert "compute_pool_dispatch_rate" not in card["metrics"]
        # Pool present but idle in the window: same silence.
        idle = self._pooled_sharded(clock)
        monitor = HealthMonitor(idle, clock=clock)
        clock.advance(5.0)
        card = monitor.report()["shards"]["shard0"]
        assert card["reasons"] == []
        assert "compute_pool_dispatch_rate" not in card["metrics"]
