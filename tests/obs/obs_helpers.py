"""Shared helpers for the observability tests."""

from __future__ import annotations


class FakeClock:
    """A deterministic monotonic clock advanced explicitly by tests.

    With ``tick`` set, every read advances the clock by that much — which
    gives every span a distinct start and a non-zero duration without any
    explicit bookkeeping in the test body.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.now = start
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        self.now += seconds
