"""Acceptance tests for ObsServer: live endpoints over real serving stacks.

Two stacks are exercised end to end over actual HTTP:

* a :class:`ShardedServingService` — all four endpoints respond with the
  merged fleet view;
* a :class:`ContinuousLearningPipeline` — the issue's acceptance
  scenario: injected drift plus a latency spike flips the building to
  unhealthy with machine-readable reasons and fires a burn-rate alert,
  and the verdict recovers after the drift-triggered hot swap, all under
  a fake clock.
"""

from __future__ import annotations

import json
import logging
import sys
import urllib.error
import urllib.request
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "stream"))

from stream_helpers import stream_records, train_service  # noqa: E402

from repro import ContinuousLearningPipeline, SignalRecord, StreamConfig
from repro.obs import ObsServer
from repro.obs import runtime as obs
from repro.obs.log import LOGGER_NAME
from repro.serving import ServingConfig, ShardedServingService
from repro.stream import DriftConfig, SchedulerConfig, WindowConfig

from obs_helpers import FakeClock


def _get(url):
    """GET returning (status, content_type, body) without raising on 5xx."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return (response.status, response.headers.get("Content-Type"),
                    response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type"), \
            error.read().decode("utf-8")


def _alien(index):
    return SignalRecord(record_id=f"alien-{index}",
                        rss={f"nowhere-{j}": -60.0 for j in range(5)})


class TestShardedServiceEndpoints:
    @pytest.fixture()
    def server(self):
        clock = FakeClock()
        trained, splits = train_service(("bldg-A", "bldg-B"))
        service = ShardedServingService(registry=trained.registry,
                                        config=ServingConfig(),
                                        num_shards=2, clock=clock)
        obs.enable()
        for split in splits.values():
            for record in split.test_records[:5]:
                service.predict(record)
        with ObsServer(service, clock=clock) as running:
            yield running, service, clock

    def test_metrics_merges_shards_into_one_fleet_view(self, server):
        running, service, clock = server
        status, content_type, body = _get(running.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "# TYPE repro_requests_total counter" in body
        line = next(l for l in body.splitlines()
                    if l.startswith("repro_requests_total "))
        per_shard = sum(shard.telemetry.counter("requests_total")
                        for shard in service.shards)
        assert float(line.split()[1]) == float(
            service.telemetry.counter("requests_total") + per_shard)

    def test_healthz_reports_buildings_and_shards(self, server):
        running, service, clock = server
        clock.advance(1.0)
        status, _, body = _get(running.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "healthy"
        assert set(payload["buildings"]) == {"bldg-A", "bldg-B"}
        assert set(payload["shards"]) == {
            f"shard{shard.index}" for shard in service.shards}
        for card in payload["shards"].values():
            assert {"buildings", "queue_depth"} <= card["metrics"].keys()

    def test_slo_and_spans_and_unknown_path(self, server):
        running, service, clock = server
        status, _, body = _get(running.url + "/slo")
        payload = json.loads(body)
        assert status == 200 and payload["ok"]
        assert [o["name"] for o in payload["objectives"]] == [
            "request_latency_p95", "routing_rejections"]

        status, content_type, body = _get(running.url + "/spans?limit=4")
        assert status == 200 and content_type.startswith("application/jsonl")
        lines = [json.loads(line) for line in body.splitlines()]
        assert 0 < len(lines) <= 4
        assert all("trace_id" in span and "name" in span for span in lines)

        status, _, body = _get(running.url + "/nope")
        assert status == 404
        assert json.loads(body)["endpoints"] == [
            "/metrics", "/healthz", "/slo", "/spans"]


class TestPipelineIncidentAcceptance:
    """Drift + latency spike → unhealthy + burn-rate alert → swap → healthy."""

    #: Deliberately high labeled-records floor: drift latches during the
    #: unlabeled churn phase but the retrain stays pending until the
    #: recovery phase streams labeled records — holding the degraded
    #: state open long enough to scrape it.
    STREAM_CONFIG = StreamConfig(
        window=WindowConfig(max_records=32),
        drift=DriftConfig(vocabulary_jaccard_min=0.6, min_window_macs=8),
        scheduler=SchedulerConfig(min_window_records=16,
                                  min_labeled_records=8, warm_start=False))

    def _churn_rename(self, split):
        macs = sorted({mac for record in split.test_records
                       for mac in record.rss})
        return {mac: f"{mac}-new" for mac in macs[: len(macs) // 2]}

    def test_incident_flips_health_and_fires_alert_then_recovers(
            self, caplog):
        clock = FakeClock()
        service, splits = train_service()
        split = splits["bldg-A"]
        pipeline = ContinuousLearningPipeline(service, self.STREAM_CONFIG,
                                              clock=clock)
        obs.enable()
        with ObsServer(pipeline=pipeline, clock=clock) as server:
            # ---- phase 1: healthy, unlabeled traffic ----------------------
            for record in stream_records(split, 30, prefix="ok-", jitter=2.5,
                                         label_every=10 ** 6):
                pipeline.process(record)
                clock.advance(1.0)
            status, _, body = _get(server.url + "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "healthy"
            status, _, body = _get(server.url + "/slo")
            assert json.loads(body)["alerting"] == []

            # ---- phase 2: the incident -----------------------------------
            # AP churn (still unlabeled: the retrain cannot run yet)...
            latched = False
            churn = stream_records(split, 64, prefix="bad-", jitter=2.5,
                                   label_every=10 ** 6, rng_seed=1,
                                   rename=self._churn_rename(split))
            for record in churn:
                result = pipeline.process(record)
                clock.advance(1.0)
                if any(e.kind.value == "mac_churn"
                       for e in result.drift_events):
                    latched = True
                    break
            assert latched, "AP churn never latched the drift detector"
            # ...plus an injected latency spike and a rejection storm.
            for _ in range(10):
                service.telemetry.observe("request_seconds", 2.0)
                clock.advance(1.0)
            for index in range(40):
                rejected = service.submit(_alien(index))
                assert rejected is not None and rejected.source == "rejected"
                clock.advance(1.0)

            status, _, body = _get(server.url + "/healthz")
            payload = json.loads(body)
            assert status == 503, "unhealthy fleet must fail HTTP probes"
            assert payload["status"] == "unhealthy"
            card = payload["buildings"]["bldg-A"]
            assert card["status"] == "unhealthy"
            reasons = {reason["code"]: reason for reason in card["reasons"]}
            assert "drift_latched:mac_churn" in reasons
            assert reasons["tail_latency"]["severity"] == "unhealthy"
            assert (reasons["tail_latency"]["value"]
                    > reasons["tail_latency"]["threshold"])
            assert reasons["retrain_pending"]["severity"] == "info"

            with caplog.at_level(logging.INFO, logger=LOGGER_NAME):
                status, _, body = _get(server.url + "/slo")
            payload = json.loads(body)
            assert not payload["ok"]
            assert "routing_rejections" in payload["alerting"]
            events = [json.loads(r.message) for r in caplog.records]
            fired = [e for e in events if e["event"] == "slo_burn_rate_alert"]
            assert fired and fired[0]["objective"] == "routing_rejections"
            caplog.clear()

            _, _, body = _get(server.url + "/metrics")
            line = next(l for l in body.splitlines()
                        if l.startswith("repro_rejections_total "))
            assert float(line.split()[1]) >= 40.0
            _, _, body = _get(server.url + "/spans")
            assert body.splitlines(), "tracer saw no spans during the incident"

            # ---- phase 3: labeled records unblock the retrain + hot swap --
            swapped = False
            for record in stream_records(split, 64, prefix="fix-", jitter=2.5,
                                         label_every=2, rng_seed=2,
                                         rename=self._churn_rename(split)):
                result = pipeline.process(record)
                clock.advance(1.0)
                if result.retrain is not None and result.retrain.swapped:
                    swapped = True
                    break
            assert swapped, "labeled churn records never triggered the swap"
            assert pipeline.drift.latched_kinds("bldg-A") == ()

            # Once the incident leaves every trailing window, the verdict
            # and the alert both recover.
            clock.advance(3700.0)
            status, _, body = _get(server.url + "/healthz")
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "healthy"
            assert payload["buildings"]["bldg-A"]["reasons"] == []
            assert ("last_swap_age_seconds"
                    in payload["buildings"]["bldg-A"]["metrics"])
            with caplog.at_level(logging.INFO, logger=LOGGER_NAME):
                _, _, body = _get(server.url + "/slo")
            payload = json.loads(body)
            assert payload["alerting"] == []
            events = [json.loads(r.message) for r in caplog.records]
            assert any(e["event"] == "slo_burn_rate_resolved" for e in events)


class TestServerLifecycle:
    def test_start_and_close_are_idempotent(self):
        service, _ = train_service()
        server = ObsServer(service)
        try:
            assert server.start() is server.start()
            port = server.port
            assert port > 0 and server.url.endswith(str(port))
        finally:
            server.close()
            server.close()
        # The port is released: a fresh server can bind it right back.
        rebound = ObsServer(service, port=port)
        try:
            rebound.start()
            assert rebound.port == port
        finally:
            rebound.close()

    def test_requires_a_service_or_pipeline(self):
        with pytest.raises(ValueError):
            ObsServer()


class TestRuntimeCounterExport:
    def test_metrics_includes_delta_sampler_counters_when_enabled(self):
        """One scrape covers the core delta-sampler counters: the runtime
        registry (where ``SamplerCache`` records through
        ``metric_increment``) is merged into the ``/metrics`` payload
        whenever observability is enabled."""
        service, _ = train_service()
        server = ObsServer(service)  # not started: render directly
        obs.enable()
        try:
            obs.metric_increment("delta_sampler_hits_total", 7)
            obs.metric_increment("delta_sampler_rebuilds_total", 2)
            body = server.render_metrics()
        finally:
            obs.disable()
        hits = next(l for l in body.splitlines()
                    if l.startswith("repro_delta_sampler_hits_total "))
        rebuilds = next(l for l in body.splitlines()
                        if l.startswith("repro_delta_sampler_rebuilds_total "))
        assert float(hits.split()[1]) == 7.0
        assert float(rebuilds.split()[1]) == 2.0
        # Disabled again: the runtime registry is gone from the payload.
        assert "delta_sampler" not in server.render_metrics()
