"""LatencyHistogram and MetricsRegistry behaviour, including the merge law."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import _DEFAULT_BOUNDS, LatencyHistogram, MetricsRegistry

latencies = st.lists(
    st.floats(min_value=0.0, max_value=20.0,
              allow_nan=False, allow_infinity=False),
    max_size=60)


class TestLatencyHistogramMerge:
    """merge(a, b) must equal recording the concatenated observations."""

    @given(left=latencies, right=latencies)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenated_recording(self, left, right):
        merged = LatencyHistogram()
        other = LatencyHistogram()
        for value in left:
            merged.record(value)
        for value in right:
            other.record(value)
        merged.merge(other)

        reference = LatencyHistogram()
        for value in left + right:
            reference.record(value)

        assert merged.bucket_counts() == reference.bucket_counts()
        assert merged.count == reference.count
        assert merged.total == pytest.approx(reference.total)
        assert merged.snapshot() == pytest.approx(reference.snapshot())

    def test_merge_empty_operands(self):
        empty = LatencyHistogram()
        loaded = LatencyHistogram()
        loaded.record(0.003)
        loaded.merge(empty)                    # empty right operand
        assert loaded.count == 1
        assert loaded.min == 0.003
        assert loaded.max == 0.003

        target = LatencyHistogram()
        target.merge(loaded)                   # empty left operand
        assert target.count == 1
        assert target.min == 0.003             # not inf
        assert target.snapshot() == loaded.snapshot()

    def test_merge_preserves_min_max_edges(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.0)                          # at the lower edge
        b.record(100.0)                        # beyond the last bound
        a.merge(b)
        assert a.min == 0.0
        assert a.max == 100.0
        assert a.percentile(1.0) == 100.0      # overflow reports exact max

    def test_merge_rejects_mismatched_bounds(self):
        a = LatencyHistogram()
        b = LatencyHistogram(bounds=(0.1, 0.2))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)


class TestLatencyHistogram:
    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-0.001)

    def test_empty_snapshot_is_all_zero(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] == 0.0
        assert snapshot["p95"] == 0.0

    def test_percentile_is_conservative(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(0.0009)           # falls in the (0.0005, 0.001]
        assert histogram.percentile(0.5) == 0.001   # bucket upper bound


class TestMetricsRegistry:
    def test_counters_gauges_histograms_roundtrip(self):
        registry = MetricsRegistry()
        registry.increment("requests_total", 3)
        registry.set_gauge("window_records", 42)
        registry.observe("request_seconds", 0.004)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests_total"] == 3
        assert snapshot["gauges"]["window_records"] == 42.0
        assert snapshot["latency"]["request_seconds"]["count"] == 1
        decoded = json.loads(registry.to_json())
        assert decoded["counters"] == snapshot["counters"]
        assert decoded["latency"] == snapshot["latency"]

    def test_merged_snapshot_folds_shards(self):
        fleet = MetricsRegistry()
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        shard_a.increment("predictions_total", 5)
        shard_b.increment("predictions_total", 7)
        shard_a.observe("request_seconds", 0.002)
        shard_b.observe("request_seconds", 0.006)
        shard_a.set_gauge("shard_depth", 2.0)
        merged = fleet.merged_snapshot([shard_a, shard_b])
        assert merged["counters"]["predictions_total"] == 12
        assert merged["latency"]["request_seconds"]["count"] == 2
        assert merged["gauges"]["shard_depth"] == 2.0

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.increment("requests_total", 2)
        registry.set_gauge("queue.depth", 3)   # '.' must be sanitised
        registry.observe("request_seconds", 0.0003)
        registry.observe("request_seconds", 50.0)   # overflow bucket
        text = registry.to_prometheus_text()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 2" in text
        assert "repro_queue_depth 3" in text
        assert "# TYPE repro_request_seconds histogram" in text
        # Buckets are cumulative and end with the mandatory +Inf.
        assert f'repro_request_seconds_bucket{{le="{_DEFAULT_BOUNDS[-1]}"}} 1' \
            in text
        assert 'repro_request_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_request_seconds_count 2" in text
        assert text.endswith("\n")

    def test_time_context_uses_injected_clock(self):
        ticks = iter([0.0, 0.0, 1.5])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with registry.time("block_seconds"):
            pass
        assert registry.histogram("block_seconds").total == 1.5
