"""LatencyHistogram and MetricsRegistry behaviour, including the merge law."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import _DEFAULT_BOUNDS, LatencyHistogram, MetricsRegistry

latencies = st.lists(
    st.floats(min_value=0.0, max_value=20.0,
              allow_nan=False, allow_infinity=False),
    max_size=60)


class TestLatencyHistogramMerge:
    """merge(a, b) must equal recording the concatenated observations."""

    @given(left=latencies, right=latencies)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenated_recording(self, left, right):
        merged = LatencyHistogram()
        other = LatencyHistogram()
        for value in left:
            merged.record(value)
        for value in right:
            other.record(value)
        merged.merge(other)

        reference = LatencyHistogram()
        for value in left + right:
            reference.record(value)

        assert merged.bucket_counts() == reference.bucket_counts()
        assert merged.count == reference.count
        assert merged.total == pytest.approx(reference.total)
        assert merged.snapshot() == pytest.approx(reference.snapshot())

    def test_merge_empty_operands(self):
        empty = LatencyHistogram()
        loaded = LatencyHistogram()
        loaded.record(0.003)
        loaded.merge(empty)                    # empty right operand
        assert loaded.count == 1
        assert loaded.min == 0.003
        assert loaded.max == 0.003

        target = LatencyHistogram()
        target.merge(loaded)                   # empty left operand
        assert target.count == 1
        assert target.min == 0.003             # not inf
        assert target.snapshot() == loaded.snapshot()

    def test_merge_preserves_min_max_edges(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.0)                          # at the lower edge
        b.record(100.0)                        # beyond the last bound
        a.merge(b)
        assert a.min == 0.0
        assert a.max == 100.0
        assert a.percentile(1.0) == 100.0      # overflow reports exact max

    def test_merge_rejects_mismatched_bounds(self):
        a = LatencyHistogram()
        b = LatencyHistogram(bounds=(0.1, 0.2))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)


class TestLatencyHistogram:
    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-0.001)

    def test_empty_snapshot_is_all_zero(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] == 0.0
        assert snapshot["p95"] == 0.0

    def test_percentile_is_conservative(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(0.0009)           # falls in the (0.0005, 0.001]
        assert histogram.percentile(0.5) == 0.001   # bucket upper bound


class TestMetricsRegistry:
    def test_counters_gauges_histograms_roundtrip(self):
        registry = MetricsRegistry()
        registry.increment("requests_total", 3)
        registry.set_gauge("window_records", 42)
        registry.observe("request_seconds", 0.004)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests_total"] == 3
        assert snapshot["gauges"]["window_records"] == 42.0
        assert snapshot["latency"]["request_seconds"]["count"] == 1
        decoded = json.loads(registry.to_json())
        assert decoded["counters"] == snapshot["counters"]
        assert decoded["latency"] == snapshot["latency"]

    def test_merged_snapshot_folds_shards(self):
        fleet = MetricsRegistry()
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        shard_a.increment("predictions_total", 5)
        shard_b.increment("predictions_total", 7)
        shard_a.observe("request_seconds", 0.002)
        shard_b.observe("request_seconds", 0.006)
        shard_a.set_gauge("shard_depth", 2.0)
        merged = fleet.merged_snapshot([shard_a, shard_b])
        assert merged["counters"]["predictions_total"] == 12
        assert merged["latency"]["request_seconds"]["count"] == 2
        assert merged["gauges"]["shard_depth"] == 2.0

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.increment("requests_total", 2)
        registry.set_gauge("queue.depth", 3)   # '.' must be sanitised
        registry.observe("request_seconds", 0.0003)
        registry.observe("request_seconds", 50.0)   # overflow bucket
        text = registry.to_prometheus_text()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 2" in text
        assert "repro_queue_depth 3" in text
        assert "# TYPE repro_request_seconds histogram" in text
        # Buckets are cumulative and end with the mandatory +Inf.
        assert f'repro_request_seconds_bucket{{le="{_DEFAULT_BOUNDS[-1]}"}} 1' \
            in text
        assert 'repro_request_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_request_seconds_count 2" in text
        assert text.endswith("\n")

    def test_time_context_uses_injected_clock(self):
        ticks = iter([0.0, 0.0, 1.5])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with registry.time("block_seconds"):
            pass
        assert registry.histogram("block_seconds").total == 1.5


class TestPercentileEdgeCases:
    def test_empty_histogram_is_zero_at_every_quantile(self):
        histogram = LatencyHistogram()
        for q in (0.0, 0.5, 1.0):
            assert histogram.percentile(q) == 0.0

    def test_all_overflow_reports_the_observed_max(self):
        histogram = LatencyHistogram(bounds=(0.01, 0.1))
        for value in (5.0, 7.0, 9.0):     # every observation past the bounds
            histogram.record(value)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert histogram.percentile(q) == 9.0

    def test_q_zero_and_one_hit_the_extreme_buckets(self):
        histogram = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        histogram.record(0.005)
        histogram.record(0.05)
        histogram.record(0.5)
        assert histogram.percentile(0.0) == 0.01   # first occupied bucket
        assert histogram.percentile(1.0) == 1.0    # last occupied bucket bound
        histogram.record(3.3)                      # now the max is overflow
        assert histogram.percentile(1.0) == 3.3

    def test_out_of_range_quantile_rejected(self):
        histogram = LatencyHistogram()
        histogram.record(0.01)
        for q in (-0.1, 1.1):
            with pytest.raises(ValueError):
                histogram.percentile(q)


class TestPrometheusCollisionsAndMerge:
    def test_sanitised_name_collisions_get_deterministic_suffixes(self):
        registry = MetricsRegistry()
        registry.increment("queue.depth", 1)
        registry.increment("queue/depth", 2)    # same family once sanitised
        registry.set_gauge("queue_depth", 3.0)  # collides across sections too
        text = registry.to_prometheus_text()
        assert "# TYPE repro_queue_depth counter" in text
        assert "repro_queue_depth 1" in text
        assert "# TYPE repro_queue_depth_2 counter" in text
        assert "repro_queue_depth_2 2" in text
        assert "# TYPE repro_queue_depth_3 gauge" in text
        assert "repro_queue_depth_3 3.0" in text
        # No family may be declared twice: scrape parsers reject that.
        types = [line for line in text.splitlines() if line.startswith("# TYPE")]
        assert len(types) == len(set(types)) == 3
        # Deterministic: the same registry renders the same text.
        assert text == registry.to_prometheus_text()

    def test_histogram_snapshot_is_an_isolated_clone(self):
        registry = MetricsRegistry()
        assert registry.histogram_snapshot("request_seconds") is None
        registry.observe("request_seconds", 0.004)
        clone = registry.histogram_snapshot("request_seconds")
        clone.record(9.0)                       # mutating the clone...
        assert registry.histogram("request_seconds").count == 1  # ...no effect
        # And unlike histogram(), it never creates-on-read.
        assert registry.histogram_snapshot("other") is None

    def test_exposition_merges_other_registries(self):
        fleet, shard = MetricsRegistry(), MetricsRegistry()
        fleet.increment("requests_total", 2)
        shard.increment("requests_total", 3)
        shard.observe("request_seconds", 0.004)
        text = fleet.to_prometheus_text(others=[shard])
        assert "repro_requests_total 5" in text
        assert "repro_request_seconds_count 1" in text
