"""Tests for the shared Prox model and pseudo-labeling utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.prox import ProximityFloorModel
from repro.baselines.pseudo_label import assign_pseudo_labels


class TestProximityFloorModel:
    def test_fit_predict_on_separated_blobs(self):
        rng = np.random.default_rng(0)
        floor0 = rng.normal([0.0, 0.0], 0.2, size=(15, 2))
        floor1 = rng.normal([6.0, 6.0], 0.2, size=(15, 2))
        embeddings = np.vstack([floor0, floor1])
        ids = [f"r{i}" for i in range(30)]
        model = ProximityFloorModel().fit(ids, embeddings, {"r0": 0, "r15": 1})
        predictions = model.predict(np.array([[0.1, 0.1], [5.8, 6.1]]))
        np.testing.assert_array_equal(predictions, [0, 1])

    def test_training_assignments(self):
        rng = np.random.default_rng(1)
        embeddings = np.vstack([rng.normal(0, 0.1, size=(10, 3)),
                                rng.normal(5, 0.1, size=(10, 3))])
        ids = [f"r{i}" for i in range(20)]
        model = ProximityFloorModel().fit(ids, embeddings, {"r0": 3, "r10": 7})
        assignments = model.training_assignments()
        assert set(assignments.values()) == {3, 7}
        assert all(assignments[f"r{i}"] == 3 for i in range(10))
        assert all(assignments[f"r{i}"] == 7 for i in range(10, 20))

    def test_unfitted_raises(self):
        model = ProximityFloorModel()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            model.training_assignments()


class TestAssignPseudoLabels:
    def test_true_labels_preserved(self):
        embeddings = np.array([[0.0], [1.0], [10.0]])
        labels = assign_pseudo_labels(["a", "b", "c"], embeddings,
                                      {"a": 1, "c": 2})
        assert labels["a"] == 1
        assert labels["c"] == 2

    def test_nearest_labeled_neighbor_wins(self):
        embeddings = np.array([[0.0], [0.4], [10.0], [9.5]])
        labels = assign_pseudo_labels(["a", "b", "c", "d"], embeddings,
                                      {"a": 0, "c": 1})
        assert labels["b"] == 0
        assert labels["d"] == 1

    def test_all_records_labeled(self):
        rng = np.random.default_rng(0)
        ids = [f"r{i}" for i in range(25)]
        embeddings = rng.normal(size=(25, 4))
        labels = assign_pseudo_labels(ids, embeddings, {"r3": 0, "r11": 1})
        assert set(labels) == set(ids)
        assert set(labels.values()) <= {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_pseudo_labels(["a"], np.zeros((1, 2)), {})
        with pytest.raises(ValueError):
            assign_pseudo_labels(["a"], np.zeros((1, 2)), {"zzz": 0})
        with pytest.raises(ValueError):
            assign_pseudo_labels(["a", "b"], np.zeros((3, 2)), {"a": 0})
