"""Tests for the dense-matrix featurizer and classical MDS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import MatrixFeaturizer
from repro.baselines.mds import ClassicalMDS, cosine_dissimilarity
from repro.core.types import SignalRecord


def record(rid, rss, floor=None):
    return SignalRecord(record_id=rid, rss=rss, floor=floor)


class TestMatrixFeaturizer:
    def test_unfitted_raises(self):
        featurizer = MatrixFeaturizer()
        with pytest.raises(RuntimeError):
            featurizer.transform([record("r", {"a": -40.0})])
        with pytest.raises(RuntimeError):
            featurizer.num_features

    def test_fit_learns_vocabulary(self):
        featurizer = MatrixFeaturizer()
        featurizer.fit([record("r1", {"a": -40.0, "b": -60.0}),
                        record("r2", {"c": -50.0})])
        assert featurizer.mac_order == ["a", "b", "c"]
        assert featurizer.num_features == 3

    def test_normalisation_range(self):
        featurizer = MatrixFeaturizer()
        features = featurizer.fit_transform([
            record("r1", {"a": -30.0, "b": -120.0}),
            record("r2", {"a": -75.0}),
        ])
        assert features.min() >= 0.0
        assert features.max() <= 1.0
        assert features[0, 0] == pytest.approx(1.0)   # -30 dBm -> 1
        assert features[1, 1] == pytest.approx(0.0)   # missing -> 0

    def test_unknown_macs_in_transform_ignored(self):
        featurizer = MatrixFeaturizer()
        featurizer.fit([record("r1", {"a": -40.0})])
        features = featurizer.transform([record("x", {"a": -50.0, "new": -30.0})])
        assert features.shape == (1, 1)

    def test_requires_macs(self):
        featurizer = MatrixFeaturizer()
        with pytest.raises(ValueError):
            featurizer.fit([])


class TestCosineDissimilarity:
    def test_identical_rows_zero(self):
        a = np.array([[1.0, 2.0, 3.0]])
        assert cosine_dissimilarity(a)[0, 0] == pytest.approx(0.0)

    def test_orthogonal_rows_one(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cosine_dissimilarity(a)[0, 1] == pytest.approx(1.0)

    def test_zero_rows_handled(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        d = cosine_dissimilarity(a)
        assert np.isfinite(d).all()

    def test_rectangular(self):
        a = np.random.default_rng(0).normal(size=(4, 3))
        b = np.random.default_rng(1).normal(size=(6, 3))
        assert cosine_dissimilarity(a, b).shape == (4, 6)


class TestClassicalMDS:
    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            ClassicalMDS(dimension=0)

    def test_recovers_euclidean_configuration(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(20, 2))
        from scipy.spatial.distance import cdist

        mds = ClassicalMDS(dimension=2)
        embedding = mds.fit(cdist(points, points))
        recovered = cdist(embedding, embedding)
        np.testing.assert_allclose(recovered, cdist(points, points), atol=1e-6)

    def test_out_of_sample_consistent_with_fit(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(15, 3))
        from scipy.spatial.distance import cdist

        mds = ClassicalMDS(dimension=3)
        train_embedding = mds.fit(cdist(points, points))
        projected = mds.transform(cdist(points, points))
        np.testing.assert_allclose(projected, train_embedding, atol=1e-6)

    def test_requires_square_matrix(self):
        with pytest.raises(ValueError):
            ClassicalMDS().fit(np.zeros((3, 4)))

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            ClassicalMDS().transform(np.zeros((1, 3)))

    def test_dimension_larger_than_points_padded(self):
        mds = ClassicalMDS(dimension=8)
        embedding = mds.fit(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert embedding.shape == (2, 8)
