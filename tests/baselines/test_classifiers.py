"""End-to-end tests for every baseline classifier on a small building.

Each baseline must (a) respect the shared FloorClassifier contract, (b) fail
cleanly when misused, and (c) reach clearly-above-chance accuracy on the easy
shared fixture (three well-separated floors).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AutoencoderProxClassifier,
    GraficsClassifier,
    MatrixProxClassifier,
    MDSProxClassifier,
    SAEClassifier,
    ScalableDNNClassifier,
)
from repro.core import GraficsConfig
from repro.core.embedding import EmbeddingConfig


def fast_factories():
    """Factories configured for speed; accuracy thresholds are lenient."""
    fast_embedding = EmbeddingConfig(samples_per_edge=40.0, seed=0)
    return {
        "grafics": lambda: GraficsClassifier(GraficsConfig(embedding=fast_embedding)),
        "grafics-line": lambda: GraficsClassifier(
            GraficsConfig(embedder="line", embedding=fast_embedding)),
        "matrix": MatrixProxClassifier,
        "mds": MDSProxClassifier,
        "autoencoder": lambda: AutoencoderProxClassifier(epochs=8, seed=0),
        "sae": lambda: SAEClassifier(pretrain_epochs=4, train_epochs=15, seed=0),
        "scalable-dnn": lambda: ScalableDNNClassifier(pretrain_epochs=4,
                                                      train_epochs=15, seed=0),
    }


@pytest.fixture(scope="module")
def shared_split(small_split):
    return small_split


# Minimum accuracy each method must reach on the easy fixture.  GRAFICS with
# LINE and the conv-autoencoder are genuinely weak with only 4 labels/floor
# (exactly the paper's observation in Fig. 13 and Fig. 11), so their bars are
# at/near chance: the test checks the contract, not their quality.
ACCURACY_FLOOR = {
    "grafics": 0.85,
    "grafics-line": 0.30,
    "matrix": 0.55,
    "mds": 0.55,
    "autoencoder": 0.34,
    "sae": 0.55,
    "scalable-dnn": 0.55,
}


@pytest.mark.parametrize("name", list(fast_factories()))
def test_fit_predict_contract_and_accuracy(name, shared_split):
    classifier = fast_factories()[name]()
    classifier.fit(list(shared_split.train_records), shared_split.labels)
    test_records = [r.without_floor() for r in shared_split.test_records]
    predictions = classifier.predict(test_records)

    assert set(predictions) == {r.record_id for r in test_records}
    truth = shared_split.test_ground_truth()
    known_floors = set(truth.values())
    assert set(predictions.values()) <= known_floors

    accuracy = np.mean([predictions[rid] == floor for rid, floor in truth.items()])
    assert accuracy >= ACCURACY_FLOOR[name], f"{name} accuracy {accuracy:.2f}"


@pytest.mark.parametrize("name", ["matrix", "mds", "autoencoder", "sae",
                                  "scalable-dnn", "grafics"])
def test_predict_before_fit_raises(name):
    classifier = fast_factories()[name]()
    with pytest.raises(RuntimeError):
        classifier.predict([])


@pytest.mark.parametrize("name", ["matrix", "scalable-dnn", "grafics"])
def test_fit_rejects_bad_labels(name, shared_split):
    classifier = fast_factories()[name]()
    with pytest.raises(ValueError):
        classifier.fit(list(shared_split.train_records), {})
    with pytest.raises(ValueError):
        classifier.fit(list(shared_split.train_records), {"unknown-record": 0})


def test_fit_predict_helper(shared_split):
    classifier = MatrixProxClassifier()
    predictions = classifier.fit_predict(
        list(shared_split.train_records), shared_split.labels,
        [r.without_floor() for r in shared_split.test_records])
    assert len(predictions) == len(shared_split.test_records)


def test_grafics_adapter_exposes_training_assignments(shared_split):
    classifier = GraficsClassifier(GraficsConfig(
        embedding=EmbeddingConfig(samples_per_edge=40.0, seed=0)))
    with pytest.raises(RuntimeError):
        classifier.training_assignments()
    classifier.fit(list(shared_split.train_records), shared_split.labels)
    assignments = classifier.training_assignments()
    assert set(assignments) == {r.record_id for r in shared_split.train_records}


def test_grafics_adapter_names():
    assert GraficsClassifier().name == "GRAFICS"
    assert "line" in GraficsClassifier(GraficsConfig(embedder="line")).name
    assert GraficsClassifier(name="custom").name == "custom"


def test_supervised_baselines_predict_only_known_floors(shared_split):
    classifier = ScalableDNNClassifier(pretrain_epochs=2, train_epochs=5, seed=0)
    classifier.fit(list(shared_split.train_records), shared_split.labels)
    predictions = classifier.predict(
        [r.without_floor() for r in shared_split.test_records[:10]])
    assert set(predictions.values()) <= set(shared_split.labels.values())


def test_autoencoder_reconstruction_learns(shared_split):
    from repro.baselines.autoencoder import ConvAutoencoder
    from repro.baselines.base import MatrixFeaturizer

    features = MatrixFeaturizer().fit_transform(
        list(shared_split.train_records)[:60])
    autoencoder = ConvAutoencoder(num_features=features.shape[1],
                                  embedding_dimension=8, epochs=1, seed=0)
    before = np.mean((autoencoder.reconstruct(features) - features) ** 2)
    autoencoder.fit(features)
    after = np.mean((autoencoder.reconstruct(features) - features) ** 2)
    assert after < before
    assert autoencoder.encode(features).shape == (features.shape[0], 8)


def test_autoencoder_requires_four_conv_blocks():
    from repro.baselines.autoencoder import ConvAutoencoder

    with pytest.raises(ValueError):
        ConvAutoencoder(num_features=10, channels=(8, 8))


def test_sae_stacked_encoder_shapes(shared_split):
    from repro.baselines.base import MatrixFeaturizer
    from repro.baselines.sae import StackedAutoencoder

    features = MatrixFeaturizer().fit_transform(
        list(shared_split.train_records)[:50])
    stacked = StackedAutoencoder(features.shape[1], layer_sizes=(16, 8),
                                 epochs_per_layer=2, seed=0)
    with pytest.raises(RuntimeError):
        stacked.encoder()
    stacked.fit(features)
    codes = stacked.encode(features)
    assert codes.shape == (features.shape[0], 8)


def test_grafics_line_recovers_with_more_labels(small_building):
    """Paper Fig. 13: LINE inside GRAFICS improves a lot with more labels."""
    from repro.data import make_experiment_split

    split = make_experiment_split(small_building, labels_per_floor=20, seed=0)
    classifier = GraficsClassifier(GraficsConfig(
        embedder="line",
        embedding=EmbeddingConfig(samples_per_edge=100.0, seed=0)))
    classifier.fit(list(split.train_records), split.labels)
    predictions = classifier.predict(
        [r.without_floor() for r in split.test_records])
    truth = split.test_ground_truth()
    accuracy = np.mean([predictions[rid] == floor for rid, floor in truth.items()])
    assert accuracy > 0.6
