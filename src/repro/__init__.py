"""repro — a reproduction of GRAFICS (ICDCS 2022).

GRAFICS identifies the floor on which a crowdsourced RF (WiFi RSS) sample was
collected using a bipartite graph model, the E-LINE graph embedding and a
proximity-based hierarchical clustering that needs only a handful of
floor-labeled samples per floor.

Public entry points:

* :class:`repro.GRAFICS` / :class:`repro.GraficsConfig` — the end-to-end system.
* :class:`repro.FloorServingService` — the production serving stack (routing,
  caching, micro-batching, telemetry, hot swap).
* :mod:`repro.core` — graph, embeddings, clustering, online inference.
* :mod:`repro.serving` — router, prediction cache, micro-batcher, telemetry.
* :mod:`repro.stream` — streaming ingestion, sliding-window graph
  maintenance, drift detection and continuous-learning retrains
  (:class:`repro.ContinuousLearningPipeline`).
* :mod:`repro.obs` — tracing, metrics, SLOs, health scorecards and the
  :class:`repro.ObsServer` HTTP endpoint.
* :mod:`repro.faults` — deterministic fault injection (failpoints, seeded
  fault plans) for chaos-testing the serving and learning loop.
* :mod:`repro.data` — synthetic crowdsourced datasets, loaders, splits, statistics.
* :mod:`repro.baselines` — Scalable-DNN, SAE, Autoencoder+Prox, MDS+Prox, matrix+Prox.
* :mod:`repro.evaluation` — micro/macro F metrics and the experiment harness.
* :mod:`repro.nn` — the NumPy neural-network substrate used by the baselines.
"""

from .core import (
    GRAFICS,
    MultiBuildingFloorService,
    BipartiteGraph,
    ELINEEmbedder,
    EmbeddingConfig,
    FingerprintDataset,
    FloorPrediction,
    GraficsConfig,
    GraphEmbedding,
    LINEEmbedder,
    OffsetWeight,
    PowerWeight,
    SignalRecord,
    UnknownEnvironmentError,
    build_graph,
    load_model,
    load_registry,
    save_model,
    save_registry,
)
from . import faults
from .obs import HealthMonitor, ObsServer, SLOMonitor
from .serving import (
    FloorServingService,
    ServingConfig,
    ServingResult,
    ShardedServingService,
)
from .stream import ContinuousLearningPipeline, StreamConfig, StreamResult

__version__ = "1.2.0"

__all__ = [
    "GRAFICS",
    "GraficsConfig",
    "SignalRecord",
    "FingerprintDataset",
    "BipartiteGraph",
    "build_graph",
    "EmbeddingConfig",
    "GraphEmbedding",
    "ELINEEmbedder",
    "LINEEmbedder",
    "OffsetWeight",
    "PowerWeight",
    "FloorPrediction",
    "UnknownEnvironmentError",
    "MultiBuildingFloorService",
    "FloorServingService",
    "ShardedServingService",
    "ServingConfig",
    "ServingResult",
    "ContinuousLearningPipeline",
    "StreamConfig",
    "StreamResult",
    "ObsServer",
    "HealthMonitor",
    "SLOMonitor",
    "faults",
    "save_model",
    "load_model",
    "save_registry",
    "load_registry",
    "__version__",
]
