"""Simple linear projections and text rendering of 2-D embeddings.

Complements the t-SNE module: PCA gives a fast deterministic 2-D view of the
learned embeddings, and :func:`scatter_to_text` renders a labeled 2-D scatter
as an ASCII grid so that examples and benchmark scripts can show the floor
separation without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["pca_project", "scatter_to_text"]


def pca_project(embeddings: np.ndarray, n_components: int = 2) -> np.ndarray:
    """Project embeddings onto their top principal components."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.ndim != 2:
        raise ValueError("embeddings must be a 2-D array")
    if not 1 <= n_components <= embeddings.shape[1]:
        raise ValueError("n_components must be between 1 and the embedding dim")
    centred = embeddings - embeddings.mean(axis=0, keepdims=True)
    _, _, vt = np.linalg.svd(centred, full_matrices=False)
    return centred @ vt[:n_components].T


def scatter_to_text(points: np.ndarray, labels: Sequence[int],
                    width: int = 60, height: int = 24) -> str:
    """Render labeled 2-D points as an ASCII scatter plot.

    Each cell shows the digit of the (modulo-10) floor label of the last point
    that fell into it; empty cells are dots.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = list(labels)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be a (n, 2) array")
    if len(labels) != points.shape[0]:
        raise ValueError("labels must align with points")
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")

    mins = points.min(axis=0)
    maxs = points.max(axis=0)
    spans = np.where(maxs - mins > 0, maxs - mins, 1.0)
    grid = [["." for _ in range(width)] for _ in range(height)]
    for (x, y), label in zip(points, labels):
        column = int((x - mins[0]) / spans[0] * (width - 1))
        row = int((y - mins[1]) / spans[1] * (height - 1))
        grid[height - 1 - row][column] = str(int(label) % 10)
    return "\n".join("".join(row) for row in grid)
