"""Embedding visualisation: t-SNE, PCA projection and ASCII scatter rendering."""

from .projections import pca_project, scatter_to_text
from .tsne import TSNE, TSNEConfig

__all__ = ["TSNE", "TSNEConfig", "pca_project", "scatter_to_text"]
