"""A small NumPy t-SNE implementation (van der Maaten & Hinton, 2008).

The paper uses t-SNE purely as a visualisation tool for Figs. 6 and 8.  This
implementation follows the original exact algorithm (pairwise affinities with
per-point perplexity calibration, gradient descent with early exaggeration
and momentum) and is adequate for the few hundred points those figures show.
It returns coordinates; rendering them is left to the caller (the benchmark
scripts print summary statistics instead of images).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial.distance import cdist

__all__ = ["TSNE", "TSNEConfig"]


@dataclass(frozen=True)
class TSNEConfig:
    """Hyperparameters of the exact t-SNE optimisation."""

    n_components: int = 2
    perplexity: float = 30.0
    learning_rate: float = 100.0
    iterations: int = 400
    early_exaggeration: float = 4.0
    exaggeration_iterations: int = 100
    initial_momentum: float = 0.5
    final_momentum: float = 0.8
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ValueError("n_components must be at least 1")
        if self.perplexity <= 0:
            raise ValueError("perplexity must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be at least 1")


class TSNE:
    """Exact t-SNE projection of high-dimensional embeddings."""

    def __init__(self, config: TSNEConfig | None = None) -> None:
        self.config = config or TSNEConfig()

    # --------------------------------------------------------------- affinity
    @staticmethod
    def _binary_search_beta(distances_row: np.ndarray, target_entropy: float,
                            tolerance: float = 1e-5,
                            max_iterations: int = 50) -> np.ndarray:
        """Find the Gaussian precision giving the target perplexity for one row."""
        beta, beta_min, beta_max = 1.0, -np.inf, np.inf
        probabilities = np.zeros_like(distances_row)
        for _ in range(max_iterations):
            probabilities = np.exp(-distances_row * beta)
            total = probabilities.sum()
            if total <= 0:
                probabilities = np.full_like(distances_row,
                                             1.0 / distances_row.size)
                break
            probabilities /= total
            entropy = -np.sum(probabilities
                              * np.log(np.maximum(probabilities, 1e-12)))
            difference = entropy - target_entropy
            if abs(difference) < tolerance:
                break
            if difference > 0:
                beta_min = beta
                beta = beta * 2.0 if np.isinf(beta_max) else (beta + beta_max) / 2.0
            else:
                beta_max = beta
                beta = beta / 2.0 if np.isinf(beta_min) else (beta + beta_min) / 2.0
        return probabilities

    def _joint_probabilities(self, embeddings: np.ndarray) -> np.ndarray:
        n = embeddings.shape[0]
        squared = cdist(embeddings, embeddings, metric="sqeuclidean")
        perplexity = min(self.config.perplexity, max((n - 1) / 3.0, 1.0))
        target_entropy = np.log(perplexity)
        conditional = np.zeros((n, n))
        for i in range(n):
            mask = np.arange(n) != i
            conditional[i, mask] = self._binary_search_beta(squared[i, mask],
                                                            target_entropy)
        joint = (conditional + conditional.T) / (2.0 * n)
        return np.maximum(joint, 1e-12)

    # ------------------------------------------------------------ optimisation
    def fit_transform(self, embeddings: np.ndarray) -> np.ndarray:
        """Project the rows of ``embeddings`` to ``n_components`` dimensions."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2 or embeddings.shape[0] < 3:
            raise ValueError("need a (n >= 3, dim) array to run t-SNE")
        config = self.config
        rng = np.random.default_rng(config.seed)
        n = embeddings.shape[0]

        p = self._joint_probabilities(embeddings)
        p_exaggerated = p * config.early_exaggeration

        y = rng.normal(0.0, 1e-4, size=(n, config.n_components))
        velocity = np.zeros_like(y)
        gains = np.ones_like(y)

        for iteration in range(config.iterations):
            affinity = 1.0 / (1.0 + cdist(y, y, metric="sqeuclidean"))
            np.fill_diagonal(affinity, 0.0)
            q = np.maximum(affinity / affinity.sum(), 1e-12)

            current_p = (p_exaggerated
                         if iteration < config.exaggeration_iterations else p)
            pq = (current_p - q) * affinity
            gradient = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)

            momentum = (config.initial_momentum
                        if iteration < config.exaggeration_iterations
                        else config.final_momentum)
            same_sign = np.sign(gradient) == np.sign(velocity)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2)
            gains = np.maximum(gains, 0.01)
            velocity = momentum * velocity - config.learning_rate * gains * gradient
            y = y + velocity
            y = y - y.mean(axis=0)
        return y
