"""Quantitative cluster-separation metrics for the embedding-quality study.

The paper's Fig. 6 argues *visually* (via t-SNE) that E-LINE embeddings of a
three-storey building separate the floors while MDS and autoencoder
embeddings do not.  To reproduce that claim quantitatively, this module
computes standard separation measures over embeddings labeled with their
ground-truth floor:

* silhouette score (higher is better; positive means floors form clusters),
* intra/inter-floor distance ratio (lower is better),
* nearest-neighbour purity (fraction of samples whose nearest neighbour is
  from the same floor).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "SeparationReport",
    "silhouette_score",
    "intra_inter_distance_ratio",
    "nearest_neighbor_purity",
    "evaluate_separation",
]


def _validate(embeddings: np.ndarray, labels: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(list(labels), dtype=np.int64)
    if embeddings.ndim != 2 or embeddings.shape[0] != labels.shape[0]:
        raise ValueError("embeddings must be (n, dim) aligned with labels")
    if embeddings.shape[0] < 2:
        raise ValueError("need at least two samples")
    if np.unique(labels).size < 2:
        raise ValueError("need at least two distinct floors")
    return embeddings, labels


def silhouette_score(embeddings: np.ndarray, labels: Sequence[int]) -> float:
    """Mean silhouette coefficient over all samples."""
    embeddings, labels = _validate(embeddings, labels)
    distances = cdist(embeddings, embeddings)
    unique = np.unique(labels)
    n = embeddings.shape[0]
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same[i] = False
        if not same.any():
            scores[i] = 0.0
            continue
        a = distances[i, same].mean()
        b = np.inf
        for other in unique:
            if other == labels[i]:
                continue
            members = labels == other
            b = min(b, distances[i, members].mean())
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def intra_inter_distance_ratio(embeddings: np.ndarray,
                               labels: Sequence[int]) -> float:
    """Mean intra-floor distance divided by mean inter-floor distance."""
    embeddings, labels = _validate(embeddings, labels)
    distances = cdist(embeddings, embeddings)
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    different = ~(labels[:, None] == labels[None, :])
    intra = distances[same]
    inter = distances[different]
    if intra.size == 0 or inter.size == 0:
        raise ValueError("need both intra-floor and inter-floor pairs")
    inter_mean = float(inter.mean())
    if inter_mean == 0:
        return float("inf")
    return float(intra.mean()) / inter_mean


def nearest_neighbor_purity(embeddings: np.ndarray, labels: Sequence[int],
                            k: int = 1) -> float:
    """Fraction of samples whose k nearest neighbours share their floor."""
    embeddings, labels = _validate(embeddings, labels)
    if k < 1:
        raise ValueError("k must be at least 1")
    distances = cdist(embeddings, embeddings)
    np.fill_diagonal(distances, np.inf)
    neighbor_indices = np.argsort(distances, axis=1)[:, :k]
    matches = labels[neighbor_indices] == labels[:, None]
    return float(matches.mean())


@dataclass(frozen=True)
class SeparationReport:
    """Bundle of the three separation metrics for one embedding method."""

    method: str
    silhouette: float
    intra_inter_ratio: float
    nn_purity: float

    def as_row(self) -> dict[str, object]:
        return {
            "method": self.method,
            "silhouette": round(self.silhouette, 4),
            "intra_inter_ratio": round(self.intra_inter_ratio, 4),
            "nn_purity": round(self.nn_purity, 4),
        }


def evaluate_separation(method: str, embeddings: np.ndarray,
                        labels: Sequence[int]) -> SeparationReport:
    """Compute all separation metrics for one method's embeddings."""
    return SeparationReport(
        method=method,
        silhouette=silhouette_score(embeddings, labels),
        intra_inter_ratio=intra_inter_distance_ratio(embeddings, labels),
        nn_purity=nearest_neighbor_purity(embeddings, labels),
    )
