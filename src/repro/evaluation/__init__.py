"""Metrics, experiment protocol and cluster-separation analysis."""

from .experiment import (
    ExperimentProtocol,
    MethodResult,
    compare_methods,
    format_table,
    run_corpus,
    run_repeated,
    run_single_trial,
)
from .metrics import (
    ClassificationReport,
    ConfusionMatrix,
    evaluate_predictions,
    macro_f_score,
    micro_f_score,
)
from .separation import (
    SeparationReport,
    evaluate_separation,
    intra_inter_distance_ratio,
    nearest_neighbor_purity,
    silhouette_score,
)

__all__ = [
    "ExperimentProtocol",
    "MethodResult",
    "run_single_trial",
    "run_repeated",
    "run_corpus",
    "compare_methods",
    "format_table",
    "ClassificationReport",
    "ConfusionMatrix",
    "evaluate_predictions",
    "micro_f_score",
    "macro_f_score",
    "SeparationReport",
    "evaluate_separation",
    "silhouette_score",
    "intra_inter_distance_ratio",
    "nearest_neighbor_purity",
]
