"""Experiment harness reproducing the paper's evaluation protocol (Section VI).

The protocol: per building, split records 70/30 into train/test, reveal only
``labels_per_floor`` labels (default 4) inside the training part, fit a method
on the training records, predict the held-out records online and score with
micro-/macro-F.  Each configuration is repeated with different random seeds
and averaged; corpus-level results additionally average over buildings, which
is how the paper reports its Microsoft (204 buildings) and Hong Kong
(5 buildings) numbers.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field, replace
from statistics import mean, pstdev

from ..baselines.base import FloorClassifier
from ..core.types import FingerprintDataset
from ..data.splits import make_experiment_split
from .metrics import ClassificationReport, evaluate_predictions

__all__ = [
    "ExperimentProtocol",
    "MethodResult",
    "run_single_trial",
    "run_repeated",
    "run_corpus",
    "compare_methods",
    "format_table",
]

#: A zero-argument callable building a fresh, unfitted classifier.
ClassifierFactory = Callable[[], FloorClassifier]


@dataclass(frozen=True)
class ExperimentProtocol:
    """The knobs of the paper's evaluation protocol.

    Attributes
    ----------
    train_ratio:
        Fraction of each building's records used for training (Fig. 12 sweeps
        this; the default 0.7 matches the main experiments).
    labels_per_floor:
        Number of labeled samples revealed per floor (Fig. 11 sweeps this;
        default 4).
    mac_fraction:
        Fraction of the building's MAC addresses assumed to exist on-site
        (Fig. 17 sweeps this; default 1.0).
    repetitions:
        Number of random repetitions to average (the paper uses 10).
    seed:
        Base seed; repetition ``r`` uses ``seed + r``.
    """

    train_ratio: float = 0.7
    labels_per_floor: int = 4
    mac_fraction: float = 1.0
    repetitions: int = 3
    seed: int = 0

    def with_overrides(self, **kwargs) -> "ExperimentProtocol":
        """A copy of the protocol with some fields replaced."""
        return replace(self, **kwargs)


@dataclass
class MethodResult:
    """Aggregated metrics of one method over repetitions (and buildings)."""

    method: str
    micro_f: float
    macro_f: float
    micro_f_std: float = 0.0
    macro_f_std: float = 0.0
    micro_precision: float = 0.0
    micro_recall: float = 0.0
    macro_precision: float = 0.0
    macro_recall: float = 0.0
    trials: int = 0
    extra: dict[str, object] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "method": self.method,
            "micro_f": round(self.micro_f, 4),
            "macro_f": round(self.macro_f, 4),
            "micro_f_std": round(self.micro_f_std, 4),
            "macro_f_std": round(self.macro_f_std, 4),
            "micro_p": round(self.micro_precision, 4),
            "micro_r": round(self.micro_recall, 4),
            "macro_p": round(self.macro_precision, 4),
            "macro_r": round(self.macro_recall, 4),
            "trials": self.trials,
        }
        row.update(self.extra)
        return row


def run_single_trial(factory: ClassifierFactory, dataset: FingerprintDataset,
                     protocol: ExperimentProtocol,
                     seed: int) -> ClassificationReport:
    """One split + fit + online prediction + scoring."""
    split = make_experiment_split(dataset,
                                  train_ratio=protocol.train_ratio,
                                  labels_per_floor=protocol.labels_per_floor,
                                  seed=seed,
                                  mac_fraction=protocol.mac_fraction)
    classifier = factory()
    classifier.fit(list(split.train_records), split.labels)
    # Predictions are made on records stripped of their ground truth.
    test_records = [record.without_floor() for record in split.test_records]
    predicted = classifier.predict(test_records)
    return evaluate_predictions(split.test_ground_truth(), predicted)


def _aggregate(method: str, reports: Sequence[ClassificationReport],
               extra: Mapping[str, object] | None = None) -> MethodResult:
    micro = [r.micro_f for r in reports]
    macro = [r.macro_f for r in reports]
    return MethodResult(
        method=method,
        micro_f=mean(micro),
        macro_f=mean(macro),
        micro_f_std=pstdev(micro) if len(micro) > 1 else 0.0,
        macro_f_std=pstdev(macro) if len(macro) > 1 else 0.0,
        micro_precision=mean(r.micro_precision for r in reports),
        micro_recall=mean(r.micro_recall for r in reports),
        macro_precision=mean(r.macro_precision for r in reports),
        macro_recall=mean(r.macro_recall for r in reports),
        trials=len(reports),
        extra=dict(extra or {}),
    )


def run_repeated(method: str, factory: ClassifierFactory,
                 dataset: FingerprintDataset, protocol: ExperimentProtocol,
                 extra: Mapping[str, object] | None = None) -> MethodResult:
    """Run ``protocol.repetitions`` trials on one building and aggregate."""
    reports = [run_single_trial(factory, dataset, protocol, protocol.seed + r)
               for r in range(protocol.repetitions)]
    return _aggregate(method, reports, extra)


def run_corpus(method: str, factory: ClassifierFactory,
               datasets: Iterable[FingerprintDataset],
               protocol: ExperimentProtocol,
               extra: Mapping[str, object] | None = None) -> MethodResult:
    """Average a method over a corpus of buildings (paper-style reporting)."""
    reports: list[ClassificationReport] = []
    for index, dataset in enumerate(datasets):
        for repetition in range(protocol.repetitions):
            reports.append(run_single_trial(
                factory, dataset, protocol,
                seed=protocol.seed + repetition * 1000 + index))
    if not reports:
        raise ValueError("run_corpus needs at least one dataset")
    return _aggregate(method, reports, extra)


def compare_methods(factories: Mapping[str, ClassifierFactory],
                    datasets: Sequence[FingerprintDataset],
                    protocol: ExperimentProtocol) -> list[MethodResult]:
    """Evaluate several methods on the same corpus under the same protocol."""
    results = []
    for method, factory in factories.items():
        if len(datasets) == 1:
            results.append(run_repeated(method, factory, datasets[0], protocol))
        else:
            results.append(run_corpus(method, factory, datasets, protocol))
    return results


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None) -> str:
    """Render result rows as an aligned plain-text table.

    Used by the benchmark scripts to print paper-style tables next to the
    pytest-benchmark timing output.
    """
    rows = [dict(row) for row in rows]
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
              for c in columns}
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "-+-".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(" | ".join(str(row.get(c, "")).ljust(widths[c])
                                for c in columns))
    return "\n".join(lines)
