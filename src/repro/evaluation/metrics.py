"""Classification metrics used in the paper's evaluation (Section VI-A).

For floor ``i`` the paper counts true positives ``TP_i``, false positives
``FP_i`` and false negatives ``FN_i`` and reports:

* micro-averaged precision/recall/F (pooled counts over floors), and
* macro-averaged precision/recall/F (unweighted mean of per-floor values).

For single-label multi-class classification micro-P equals micro-R equals
accuracy, which is also how the paper's micro plots behave.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConfusionMatrix",
    "ClassificationReport",
    "evaluate_predictions",
    "micro_f_score",
    "macro_f_score",
]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Row = true floor, column = predicted floor."""

    floors: tuple[int, ...]
    counts: np.ndarray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        n = len(self.floors)
        if counts.shape != (n, n):
            raise ValueError("counts must be square and match the floor list")
        object.__setattr__(self, "counts", counts)

    @classmethod
    def from_labels(cls, true: Sequence[int], predicted: Sequence[int],
                    floors: Sequence[int] | None = None) -> "ConfusionMatrix":
        true = [int(t) for t in true]
        predicted = [int(p) for p in predicted]
        if len(true) != len(predicted):
            raise ValueError("true and predicted must have the same length")
        if not true:
            raise ValueError("cannot build a confusion matrix from no samples")
        if floors is None:
            floors = sorted(set(true) | set(predicted))
        floors = tuple(int(f) for f in floors)
        index = {f: i for i, f in enumerate(floors)}
        counts = np.zeros((len(floors), len(floors)), dtype=np.int64)
        for t, p in zip(true, predicted):
            counts[index[t], index[p]] += 1
        return cls(floors=floors, counts=counts)

    # -------------------------------------------------------------- per floor
    def true_positives(self) -> np.ndarray:
        return np.diag(self.counts)

    def false_positives(self) -> np.ndarray:
        return self.counts.sum(axis=0) - np.diag(self.counts)

    def false_negatives(self) -> np.ndarray:
        return self.counts.sum(axis=1) - np.diag(self.counts)

    def support(self) -> np.ndarray:
        """Number of true samples per floor."""
        return self.counts.sum(axis=1)


def _safe_divide(numerator: np.ndarray | float, denominator: np.ndarray | float):
    numerator = np.asarray(numerator, dtype=np.float64)
    denominator = np.asarray(denominator, dtype=np.float64)
    return np.divide(numerator, denominator,
                     out=np.zeros_like(numerator, dtype=np.float64),
                     where=denominator > 0)


@dataclass(frozen=True)
class ClassificationReport:
    """Micro and macro precision/recall/F plus the confusion matrix."""

    confusion: ConfusionMatrix
    micro_precision: float
    micro_recall: float
    micro_f: float
    macro_precision: float
    macro_recall: float
    macro_f: float

    @property
    def accuracy(self) -> float:
        """Fraction of correctly classified samples."""
        return float(self.confusion.true_positives().sum()
                     / max(self.confusion.counts.sum(), 1))

    def per_floor(self) -> dict[int, dict[str, float]]:
        """Per-floor precision, recall, F and support."""
        tp = self.confusion.true_positives()
        fp = self.confusion.false_positives()
        fn = self.confusion.false_negatives()
        precision = _safe_divide(tp, tp + fp)
        recall = _safe_divide(tp, tp + fn)
        f = _safe_divide(2 * precision * recall, precision + recall)
        support = self.confusion.support()
        return {floor: {"precision": float(precision[i]),
                        "recall": float(recall[i]),
                        "f": float(f[i]),
                        "support": int(support[i])}
                for i, floor in enumerate(self.confusion.floors)}

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary view used by the experiment tables."""
        return {
            "micro_precision": self.micro_precision,
            "micro_recall": self.micro_recall,
            "micro_f": self.micro_f,
            "macro_precision": self.macro_precision,
            "macro_recall": self.macro_recall,
            "macro_f": self.macro_f,
            "accuracy": self.accuracy,
        }


def evaluate_predictions(true_floors: Mapping[str, int],
                         predicted_floors: Mapping[str, int]) -> ClassificationReport:
    """Compute the paper's metrics from {record_id: floor} mappings.

    Every record with ground truth must have a prediction; extra predictions
    (records without ground truth) are ignored.
    """
    missing = set(true_floors) - set(predicted_floors)
    if missing:
        raise ValueError(
            f"missing predictions for {len(missing)} records, e.g. "
            f"{sorted(missing)[:3]}")
    record_ids = sorted(true_floors)
    true = [int(true_floors[r]) for r in record_ids]
    predicted = [int(predicted_floors[r]) for r in record_ids]
    confusion = ConfusionMatrix.from_labels(true, predicted)

    tp = confusion.true_positives()
    fp = confusion.false_positives()
    fn = confusion.false_negatives()

    micro_precision = float(_safe_divide(tp.sum(), tp.sum() + fp.sum()))
    micro_recall = float(_safe_divide(tp.sum(), tp.sum() + fn.sum()))
    micro_f = float(_safe_divide(2 * micro_precision * micro_recall,
                                 micro_precision + micro_recall))

    precision = _safe_divide(tp, tp + fp)
    recall = _safe_divide(tp, tp + fn)
    macro_precision = float(precision.mean())
    macro_recall = float(recall.mean())
    macro_f = float(_safe_divide(2 * macro_precision * macro_recall,
                                 macro_precision + macro_recall))

    return ClassificationReport(
        confusion=confusion,
        micro_precision=micro_precision,
        micro_recall=micro_recall,
        micro_f=micro_f,
        macro_precision=macro_precision,
        macro_recall=macro_recall,
        macro_f=macro_f,
    )


def micro_f_score(true_floors: Mapping[str, int],
                  predicted_floors: Mapping[str, int]) -> float:
    """Shortcut for the micro-F score alone."""
    return evaluate_predictions(true_floors, predicted_floors).micro_f


def macro_f_score(true_floors: Mapping[str, int],
                  predicted_floors: Mapping[str, int]) -> float:
    """Shortcut for the macro-F score alone."""
    return evaluate_predictions(true_floors, predicted_floors).macro_f
