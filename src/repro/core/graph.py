"""Weighted bipartite graph model of crowdsourced RF signal records.

The graph (paper Section IV-A) has two node types:

* **MAC nodes** — one per sensed MAC address (access point BSSID).
* **Record nodes** — one per RF signal record.

An edge connects MAC ``m`` and record ``v`` whenever ``m`` appears in ``v``,
with weight ``c_mv = f(RSS_mv)`` for a strictly positive weight function
``f`` (see :mod:`repro.core.weighting`).  The graph is deliberately
incremental: new records and new MACs can be added at any time (online
inference, paper Section V-A), and MAC nodes can be removed to model AP
removal (paper Section III-A).

Nodes are identified by ``(kind, key)`` pairs externally and by dense integer
indices internally; the dense indices are what the embedding algorithms
operate on.  Removing a node retires its index (indices are never reused), so
embedding matrices indexed by node index stay valid across removals.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from enum import Enum

import numpy as np

from .types import FingerprintDataset, SignalRecord
from .weighting import OffsetWeight, WeightFunction

__all__ = ["NodeKind", "Node", "Edge", "EdgeArrayScratch", "BipartiteGraph",
           "build_graph"]


class EdgeArrayScratch:
    """Reusable output buffers for ``incident_edge_arrays``.

    Consecutive online probes stage same-shaped deltas (one record, a
    handful of observed MACs), so the restricted edge arrays built per
    prediction keep the same length from probe to probe; on a size match
    the previous buffers are refilled in place instead of allocating three
    fresh arrays.  The caller owns the lifetime: buffers are overwritten by
    the next call, so they must not outlive the sampler built from them
    (per-predict trainers never do), and one scratch must not be shared
    across threads (the inference engine keeps one per thread).
    """

    __slots__ = ("sources", "targets", "weights", "reuses")

    def __init__(self) -> None:
        self.sources: np.ndarray | None = None
        self.targets: np.ndarray | None = None
        self.weights: np.ndarray | None = None
        #: Number of calls that reused the buffers (introspection/tests).
        self.reuses = 0

    def fill(self, source_chunks: list[int], target_chunks: list[int],
             weight_chunks: list[float],
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arrays over the chunk lists, reusing the buffers on a size match."""
        count = len(source_chunks)
        if self.sources is not None and self.sources.size == count:
            self.sources[:] = source_chunks
            self.targets[:] = target_chunks
            self.weights[:] = weight_chunks
            self.reuses += 1
        else:
            self.sources = np.asarray(source_chunks, dtype=np.int64)
            self.targets = np.asarray(target_chunks, dtype=np.int64)
            self.weights = np.asarray(weight_chunks, dtype=np.float64)
        return self.sources, self.targets, self.weights


class NodeKind(str, Enum):
    """The two sides of the bipartite graph."""

    MAC = "mac"
    RECORD = "record"


@dataclass(frozen=True)
class Node:
    """A node handle: its kind, external key and dense internal index."""

    kind: NodeKind
    key: str
    index: int


@dataclass(frozen=True)
class Edge:
    """An undirected weighted edge between a MAC node and a record node."""

    mac_index: int
    record_index: int
    weight: float


class BipartiteGraph:
    """Incrementally-built weighted bipartite graph of MACs and records.

    Parameters
    ----------
    weight_function:
        Maps RSS (dBm) to a strictly positive edge weight.  Defaults to the
        paper's ``f(RSS) = RSS + 120``.
    """

    def __init__(self, weight_function: WeightFunction | None = None) -> None:
        self.weight_function = weight_function or OffsetWeight()
        self._nodes: dict[tuple[NodeKind, str], Node] = {}
        self._nodes_by_index: dict[int, Node] = {}
        self._adjacency: dict[int, dict[int, float]] = {}
        self._next_index = 0
        self._total_weight = 0.0
        self._num_edges = 0
        #: Monotonic mutation counter; bumped by every node/edge change and
        #: never reused, so ``(graph, version)`` identifies one exact graph
        #: state.  Samplers and the array views below are cached against it.
        self._version = 0
        #: Weighted degrees by dense index, maintained incrementally: nodes
        #: whose edge set changed are marked dirty and lazily recomputed with
        #: the same ``sum(neighbors.values())`` a full rebuild would run, so
        #: ``degree_array()`` stays bit-identical while costing O(dirty)
        #: instead of O(V+E) per call.
        self._degrees = np.zeros(16, dtype=np.float64)
        self._dirty_degrees: set[int] = set()
        #: Serialises the lazy dirty-degree flush in :meth:`degree_array`.
        #: Mutation-free serving reads one graph from many threads without
        #: any outer lock; if the graph still has dirty degrees at that
        #: point (e.g. it was just rebuilt by the persistence layer), two
        #: concurrent readers must not race the flush.  Mutations
        #: themselves are not covered — a graph is never mutated while
        #: being served (the overlay path exists precisely for that).
        self._degree_flush_lock = threading.Lock()
        #: Version-keyed caches of the index maps and the MAC vocabulary.
        #: The cached containers are never mutated in place — a version bump
        #: builds fresh ones — so handing them out by reference is safe as
        #: long as callers treat them as read-only (they all do: the maps
        #: feed lookups and set operations, never item assignment).
        self._record_map_cache: tuple[int, dict[str, int]] | None = None
        self._mac_map_cache: tuple[int, dict[str, int]] | None = None
        self._mac_vocabulary_cache: tuple[int, frozenset[str]] | None = None

    # ------------------------------------------------------------------ pickling
    def __getstate__(self) -> dict:
        """Pickle support: the flush lock is process-local, not state.

        A pickled graph is the serialization seam of the compute-pool /
        process-per-shard path: read-only model snapshots ship to worker
        processes once per generation.  Everything else round-trips by
        value (arrays, adjacency dicts, version counter), so the restored
        graph is bit-identical to the source — including the version-keyed
        caches, which stay valid because they travel with the version they
        were built against.
        """
        state = self.__dict__.copy()
        state["_degree_flush_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._degree_flush_lock = threading.Lock()

    # ------------------------------------------------------------------ nodes
    @property
    def num_nodes(self) -> int:
        """Number of live nodes (MACs + records)."""
        return len(self._nodes)

    @property
    def num_macs(self) -> int:
        return sum(1 for node in self._nodes.values() if node.kind is NodeKind.MAC)

    @property
    def num_records(self) -> int:
        return sum(1 for node in self._nodes.values() if node.kind is NodeKind.RECORD)

    @property
    def index_capacity(self) -> int:
        """One past the largest index ever assigned (size for embedding matrices)."""
        return self._next_index

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped on every node/edge change).

        Two reads returning the same version guarantee the graph content is
        unchanged between them; the counter is never reused, so caches keyed
        on ``(graph, version)`` can serve their entries without revalidation.
        """
        return self._version

    def nodes(self, kind: NodeKind | None = None) -> list[Node]:
        """All live nodes, optionally filtered by kind, in insertion order."""
        nodes = sorted(self._nodes.values(), key=lambda n: n.index)
        if kind is None:
            return nodes
        return [n for n in nodes if n.kind is kind]

    def mac_nodes(self) -> list[Node]:
        return self.nodes(NodeKind.MAC)

    def record_nodes(self) -> list[Node]:
        return self.nodes(NodeKind.RECORD)

    def has_node(self, kind: NodeKind, key: str) -> bool:
        return (kind, key) in self._nodes

    def get_node(self, kind: NodeKind, key: str) -> Node:
        try:
            return self._nodes[(kind, key)]
        except KeyError:
            raise KeyError(f"no {kind.value} node with key {key!r}") from None

    def node_at(self, index: int) -> Node:
        try:
            return self._nodes_by_index[index]
        except KeyError:
            raise KeyError(f"no live node with index {index}") from None

    def _add_node(self, kind: NodeKind, key: str) -> Node:
        existing = self._nodes.get((kind, key))
        if existing is not None:
            return existing
        node = Node(kind=kind, key=key, index=self._next_index)
        self._next_index += 1
        self._nodes[(kind, key)] = node
        self._nodes_by_index[node.index] = node
        self._adjacency[node.index] = {}
        if node.index >= self._degrees.size:
            grown = np.zeros(max(self._degrees.size * 2, node.index + 1),
                             dtype=np.float64)
            grown[:self._degrees.size] = self._degrees
            self._degrees = grown
        self._degrees[node.index] = 0.0
        self._version += 1
        return node

    def add_mac(self, mac: str) -> Node:
        """Add (or fetch) the node for a MAC address."""
        return self._add_node(NodeKind.MAC, mac)

    # ---------------------------------------------------------------- records
    def add_record(self, record: SignalRecord) -> Node:
        """Add a signal record and its edges to the sensed MAC nodes.

        New MAC nodes are created on demand (paper: the graph "is easily
        extendable for new RF records" and adapts to AP installation).
        """
        key = record.record_id
        if (NodeKind.RECORD, key) in self._nodes:
            raise ValueError(f"record {key!r} is already in the graph")
        record_node = self._add_node(NodeKind.RECORD, key)
        for mac, rss in record.rss.items():
            mac_node = self.add_mac(mac)
            weight = self.weight_function.validate(rss)
            self._set_edge(mac_node.index, record_node.index, weight)
        return record_node

    def add_records(self, records: Iterable[SignalRecord]) -> list[Node]:
        return [self.add_record(record) for record in records]

    def remove_record(self, record_id: str,
                      prune_orphaned_macs: bool = False) -> list[str]:
        """Remove a record node and all of its edges.

        With ``prune_orphaned_macs`` MAC nodes left without any incident edge
        by the removal are removed too (their keys are returned).  This is
        what keeps the graph's memory bounded under sliding-window streaming
        ingestion: a window eviction takes the record *and* any AP that only
        that record ever observed with it.
        """
        node = self.get_node(NodeKind.RECORD, record_id)
        neighbor_indices = list(self._adjacency[node.index])
        self._remove_node(node)
        if not prune_orphaned_macs:
            return []
        pruned = []
        for index in neighbor_indices:
            mac_node = self._nodes_by_index.get(index)
            if mac_node is not None and not self._adjacency[index]:
                self._remove_node(mac_node)
                pruned.append(mac_node.key)
        return pruned

    def remove_mac(self, mac: str) -> None:
        """Remove a MAC node (models AP removal) and all of its edges."""
        node = self.get_node(NodeKind.MAC, mac)
        self._remove_node(node)

    def _remove_node(self, node: Node) -> None:
        for neighbor_index in list(self._adjacency[node.index]):
            weight = self._adjacency[node.index].pop(neighbor_index)
            del self._adjacency[neighbor_index][node.index]
            self._total_weight -= weight
            self._num_edges -= 1
            self._dirty_degrees.add(neighbor_index)
        del self._adjacency[node.index]
        del self._nodes[(node.kind, node.key)]
        del self._nodes_by_index[node.index]
        self._degrees[node.index] = 0.0
        self._dirty_degrees.discard(node.index)
        self._version += 1

    # ------------------------------------------------------------------ edges
    def _set_edge(self, mac_index: int, record_index: int, weight: float) -> None:
        previous = self._adjacency[mac_index].get(record_index)
        if previous is not None:
            self._total_weight -= previous
        else:
            self._num_edges += 1
        self._adjacency[mac_index][record_index] = weight
        self._adjacency[record_index][mac_index] = weight
        self._total_weight += weight
        self._dirty_degrees.add(mac_index)
        self._dirty_degrees.add(record_index)
        self._version += 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (O(1): maintained incrementally)."""
        return self._num_edges

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights (each undirected edge counted once)."""
        return self._total_weight

    def edge_weight(self, mac: str, record_id: str) -> float:
        """Weight of the edge between a MAC and a record (KeyError if absent)."""
        mac_node = self.get_node(NodeKind.MAC, mac)
        record_node = self.get_node(NodeKind.RECORD, record_id)
        try:
            return self._adjacency[mac_node.index][record_node.index]
        except KeyError:
            raise KeyError(f"no edge between {mac!r} and {record_id!r}") from None

    def neighbors(self, index: int) -> dict[int, float]:
        """Mapping neighbor-index -> edge weight for a live node index."""
        try:
            return dict(self._adjacency[index])
        except KeyError:
            raise KeyError(f"no live node with index {index}") from None

    def degree(self, index: int) -> int:
        """Number of neighbors of a node."""
        return len(self._adjacency[index])

    def weighted_degree(self, index: int) -> float:
        """Sum of incident edge weights of a node."""
        return float(sum(self._adjacency[index].values()))

    def edges(self) -> Iterator[Edge]:
        """Iterate over all undirected edges, each reported once."""
        for node in self.nodes(NodeKind.MAC):
            for record_index, weight in self._adjacency[node.index].items():
                yield Edge(mac_index=node.index, record_index=record_index,
                           weight=weight)

    # ------------------------------------------------------------ array views
    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(sources, targets, weights)`` arrays over undirected edges.

        ``sources`` holds MAC node indices and ``targets`` record node indices.
        These arrays feed the alias samplers used by LINE / E-LINE training;
        the samplers themselves are cached per graph version one level up
        (:class:`~repro.core.embedding.sampler.SamplerCache`), so this build
        runs once per graph state on the training paths.
        """
        source_chunks: list[np.ndarray] = []
        target_chunks: list[np.ndarray] = []
        weight_chunks: list[np.ndarray] = []
        for node in self.nodes(NodeKind.MAC):
            neighbors = self._adjacency[node.index]
            if not neighbors:
                continue
            count = len(neighbors)
            source_chunks.append(np.full(count, node.index, dtype=np.int64))
            target_chunks.append(np.fromiter(neighbors.keys(), dtype=np.int64,
                                             count=count))
            weight_chunks.append(np.fromiter(neighbors.values(),
                                             dtype=np.float64, count=count))
        if not source_chunks:
            empty_int = np.empty(0, dtype=np.int64)
            return empty_int, empty_int.copy(), np.empty(0, dtype=np.float64)
        return (np.concatenate(source_chunks),
                np.concatenate(target_chunks),
                np.concatenate(weight_chunks))

    def incident_edge_arrays(
            self, node_indices: np.ndarray,
            scratch: EdgeArrayScratch | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(sources, targets, weights)`` over edges incident to given nodes.

        Exactly the subset (and the order) a mask filter over
        :meth:`edge_arrays` would keep, but built from the adjacency of the
        restricted nodes alone — O(incident edges), independent of |E|.
        This is what makes per-prediction trainer construction in the online
        path cheap.  Indices of retired nodes select nothing.  ``scratch``
        optionally reuses a previous call's output buffers when the edge
        count matches (see :class:`EdgeArrayScratch` for the ownership
        rules); the returned values are identical either way.
        """
        wanted = np.zeros(self.index_capacity, dtype=bool)
        wanted[np.asarray(node_indices, dtype=np.int64)] = True
        mac_indices: set[int] = set()
        for index in np.flatnonzero(wanted):
            node = self._nodes_by_index.get(int(index))
            if node is None:
                continue
            if node.kind is NodeKind.MAC:
                mac_indices.add(int(index))
            else:
                mac_indices.update(self._adjacency[int(index)])
        source_chunks: list[int] = []
        target_chunks: list[int] = []
        weight_chunks: list[float] = []
        for mac_index in sorted(mac_indices):
            mac_wanted = wanted[mac_index]
            for record_index, weight in self._adjacency[mac_index].items():
                if mac_wanted or wanted[record_index]:
                    source_chunks.append(mac_index)
                    target_chunks.append(record_index)
                    weight_chunks.append(weight)
        if scratch is not None:
            return scratch.fill(source_chunks, target_chunks, weight_chunks)
        return (np.asarray(source_chunks, dtype=np.int64),
                np.asarray(target_chunks, dtype=np.int64),
                np.asarray(weight_chunks, dtype=np.float64))

    def _flush_degrees(self) -> None:
        if self._dirty_degrees:
            # The unlocked truthiness peek keeps the clean (serving) case
            # lock-free; the flush itself is serialised so concurrent
            # readers of a just-rebuilt graph cannot race the iteration.
            with self._degree_flush_lock:
                for index in self._dirty_degrees:
                    neighbors = self._adjacency.get(index)
                    if neighbors is not None:
                        self._degrees[index] = sum(neighbors.values())
                self._dirty_degrees.clear()

    def degree_array(self) -> np.ndarray:
        """Weighted degrees indexed by dense node index (zeros for retired indices)."""
        self._flush_degrees()
        return self._degrees[:self.index_capacity].copy()

    def degrees_at(self, indices: np.ndarray) -> np.ndarray:
        """Weighted degrees at the given dense indices (a fresh small array).

        The same values :meth:`degree_array` reports at those positions,
        without the O(V) copy — the delta-composed negative sampler reads a
        handful of boundary-MAC degrees per prediction.
        """
        self._flush_degrees()
        return self._degrees[np.asarray(indices, dtype=np.int64)]

    def record_index_map(self) -> dict[str, int]:
        """Mapping record id -> dense node index for all live record nodes.

        Cached per :attr:`version`; treat the returned dict as read-only
        (mutations would corrupt the shared cache entry).
        """
        cached = self._record_map_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        mapping = {node.key: node.index for node in self.record_nodes()}
        self._record_map_cache = (self._version, mapping)
        return mapping

    def mac_index_map(self) -> dict[str, int]:
        """Mapping MAC address -> dense node index for all live MAC nodes.

        Cached per :attr:`version`; treat the returned dict as read-only.
        """
        cached = self._mac_map_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        mapping = {node.key: node.index for node in self.mac_nodes()}
        self._mac_map_cache = (self._version, mapping)
        return mapping

    def mac_vocabulary(self) -> frozenset[str]:
        """The set of live MAC addresses, cached per :attr:`version`.

        This is the view the online unknown-environment check and building
        attribution need; caching it means a read-mostly serving path never
        rebuilds an O(|vocabulary|) set per prediction.
        """
        cached = self._mac_vocabulary_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        vocabulary = frozenset(self.mac_index_map())
        self._mac_vocabulary_cache = (self._version, vocabulary)
        return vocabulary

    def unknown_mac_indices(self, known: frozenset[str] | set[str]) -> list[int]:
        """Dense indices of live MAC nodes whose key is not in ``known``.

        Used by the incremental embedder to find MAC nodes that an existing
        embedding does not cover.  The set difference runs over the cached
        vocabulary, so the common serving case (every MAC already embedded)
        costs one C-level set difference instead of a Python sweep over all
        MAC nodes.
        """
        unknown = self.mac_vocabulary() - known
        if not unknown:
            return []
        mac_map = self.mac_index_map()
        return [mac_map[key] for key in unknown]

    # ------------------------------------------------------------------ misc
    def connected_components(self) -> list[set[int]]:
        """Connected components over live node indices (BFS)."""
        unvisited = set(self._adjacency)
        components: list[set[int]] = []
        while unvisited:
            start = unvisited.pop()
            component = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for neighbor in self._adjacency[current]:
                    if neighbor in unvisited:
                        unvisited.discard(neighbor)
                        component.add(neighbor)
                        frontier.append(neighbor)
            components.append(component)
        return components

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` (for analysis and debugging)."""
        import networkx as nx

        graph = nx.Graph()
        for node in self.nodes():
            graph.add_node(node.index, kind=node.kind.value, key=node.key)
        for edge in self.edges():
            graph.add_edge(edge.mac_index, edge.record_index, weight=edge.weight)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BipartiteGraph(macs={self.num_macs}, records={self.num_records}, "
                f"edges={self.num_edges})")


def build_graph(dataset: FingerprintDataset | Sequence[SignalRecord],
                weight_function: WeightFunction | None = None) -> BipartiteGraph:
    """Build a bipartite graph from a dataset or a sequence of records."""
    graph = BipartiteGraph(weight_function=weight_function)
    records = dataset.records if isinstance(dataset, FingerprintDataset) else dataset
    graph.add_records(records)
    return graph
