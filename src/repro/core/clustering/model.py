"""Centroid-based floor classifier built from the clustering result (Section V-B).

Once the proximity-based hierarchical clustering has grouped all embedded
records, each cluster is summarised by the centroid of its members' ego
embeddings and by the floor label of its single labeled member.  A new
sample's floor is predicted as the label of the cluster whose centroid is
closest (L2) to the sample's ego embedding.  Multiple clusters may carry the
same floor label (when several labeled samples exist per floor).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..embedding.base import GraphEmbedding
from .hierarchical import ClusteringResult

__all__ = ["FloorCluster", "ClusterModel"]


@dataclass(frozen=True)
class FloorCluster:
    """One trained cluster: its id, floor label, centroid and member records."""

    cluster_id: int
    floor: int
    centroid: np.ndarray
    member_record_ids: tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.member_record_ids)


class ClusterModel:
    """Nearest-centroid floor predictor over the trained clusters."""

    def __init__(self, clusters: Sequence[FloorCluster]) -> None:
        if not clusters:
            raise ValueError("a ClusterModel needs at least one cluster")
        self._clusters = list(clusters)
        self._centroids = np.vstack([c.centroid for c in self._clusters])
        self._floors = np.array([c.floor for c in self._clusters], dtype=np.int64)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_clustering(cls, clustering: ClusteringResult,
                        embedding: GraphEmbedding) -> "ClusterModel":
        """Build the model from a clustering result and the trained embedding."""
        clusters = []
        for cluster_id, member_ids in clustering.cluster_members.items():
            vectors = embedding.record_matrix(member_ids)
            clusters.append(FloorCluster(
                cluster_id=cluster_id,
                floor=clustering.cluster_labels[cluster_id],
                centroid=vectors.mean(axis=0),
                member_record_ids=tuple(member_ids),
            ))
        return cls(clusters)

    # ---------------------------------------------------------------- queries
    @property
    def clusters(self) -> list[FloorCluster]:
        return list(self._clusters)

    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    @property
    def floors(self) -> list[int]:
        """Sorted distinct floor labels the model can predict."""
        return sorted(set(int(f) for f in self._floors))

    def centroid_matrix(self) -> np.ndarray:
        """All centroids stacked into a ``(num_clusters, dim)`` array."""
        return self._centroids.copy()

    # ------------------------------------------------------------- prediction
    def predict(self, vector: np.ndarray) -> int:
        """Predict the floor of a single ego-embedding vector."""
        return int(self.predict_batch(np.atleast_2d(vector))[0])

    def predict_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Predict floors for a ``(n, dim)`` batch of ego embeddings."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self._centroids.shape[1]:
            raise ValueError(
                f"expected vectors of dimension {self._centroids.shape[1]}, "
                f"got {vectors.shape[1]}")
        distances = np.linalg.norm(
            vectors[:, None, :] - self._centroids[None, :, :], axis=2)
        nearest = np.argmin(distances, axis=1)
        return self._floors[nearest]

    def predict_with_distance(self, vector: np.ndarray) -> tuple[int, float]:
        """Predict the floor and return the distance to the winning centroid."""
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        distances = np.linalg.norm(self._centroids - vector, axis=1)
        best = int(np.argmin(distances))
        return int(self._floors[best]), float(distances[best])

    def cluster_for(self, record_id: str) -> FloorCluster | None:
        """The trained cluster that contains ``record_id``, if any."""
        for cluster in self._clusters:
            if record_id in cluster.member_record_ids:
                return cluster
        return None
