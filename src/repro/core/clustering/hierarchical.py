"""Proximity-based hierarchical clustering (paper Section IV-C).

Starting from one singleton cluster per embedded record, the algorithm
repeatedly merges the two *closest* clusters subject to the constraint that a
cluster may contain **at most one floor-labeled sample**.  Merging stops when
no admissible merge remains, at which point (provided at least one labeled
sample exists) every cluster contains exactly one labeled sample, whose floor
becomes the cluster's label.

The inter-cluster distance is the mean pairwise Euclidean distance between
members (paper Eq. 11).  That distance obeys the Lance–Williams recurrence
for average linkage,

    d(C_i ∪ C_j, C_k) = (|C_i| d(C_i, C_k) + |C_j| d(C_j, C_k)) / (|C_i| + |C_j|),

so merges can be computed without revisiting raw embeddings.  Average linkage
is *reducible* (merging two clusters never brings the merged cluster closer
to a third cluster than the nearer of its parts was), so a lazy
nearest-neighbour heap over a dense distance matrix yields the exact greedy
merge order in roughly O(n² log n) time, which comfortably handles the
building sizes used in the paper's evaluation (a few thousand records per
building).
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "MergeStep",
    "ClusteringResult",
    "ProximityClustering",
    "average_pairwise_distance",
]


def average_pairwise_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Mean pairwise Euclidean distance between two sets of embeddings (Eq. 11)."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    return float(cdist(a, b).mean())


@dataclass(frozen=True)
class MergeStep:
    """One merge of the agglomeration (indices refer to original records)."""

    first: int
    second: int
    distance: float
    merged_size: int


@dataclass
class ClusteringResult:
    """Outcome of the proximity-based hierarchical clustering.

    Attributes
    ----------
    assignments:
        Mapping record id -> final cluster id (a representative record index).
    cluster_labels:
        Mapping cluster id -> floor label (from its single labeled member).
    cluster_members:
        Mapping cluster id -> list of member record ids.
    merges:
        The merge history, in order, for progress visualisation (Fig. 8).
    record_ids:
        The record ids in the row order used during clustering.
    """

    assignments: dict[str, int]
    cluster_labels: dict[int, int]
    cluster_members: dict[int, list[str]]
    record_ids: list[str]
    merges: list[MergeStep] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        return len(self.cluster_members)

    def predicted_floor(self, record_id: str) -> int:
        """Floor label virtually assigned to an (unlabeled) training record."""
        return self.cluster_labels[self.assignments[record_id]]

    def floors(self) -> list[int]:
        return sorted(set(self.cluster_labels.values()))

    def assignments_at_fraction(self, fraction: float) -> dict[str, int]:
        """Cluster assignment after the first ``fraction`` of merges (Fig. 8).

        ``fraction`` = 1.0 reproduces the final grouping; 0.0 returns the
        initial all-singletons state.  The returned cluster ids are
        representative record indices of the partial union-find state and are
        only meaningful for grouping records together.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        cutoff = int(round(fraction * len(self.merges)))
        parent: dict[int, int] = {}

        def find(x: int) -> int:
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        for step in self.merges[:cutoff]:
            root_a, root_b = find(step.first), find(step.second)
            if root_a != root_b:
                parent[root_b] = root_a
        return {rid: find(i) for i, rid in enumerate(self.record_ids)}


class ProximityClustering:
    """Constrained average-linkage agglomerative clustering on record embeddings.

    Parameters
    ----------
    allow_unreachable:
        When ``True``, clusters that end without a labeled sample (possible
        only in degenerate label configurations) are labeled with the floor of
        the nearest labeled cluster instead of raising an error.
    """

    def __init__(self, allow_unreachable: bool = False) -> None:
        self.allow_unreachable = allow_unreachable

    def fit(self, record_ids: Sequence[str], embeddings: np.ndarray,
            labels: Mapping[str, int]) -> ClusteringResult:
        """Cluster the records given their embeddings and the few known labels.

        Parameters
        ----------
        record_ids:
            Ids of all records to cluster (labeled and unlabeled alike).
        embeddings:
            Array of shape ``(len(record_ids), dimension)`` with the ego
            embeddings, row-aligned with ``record_ids``.
        labels:
            Mapping from record id to floor label for the *labeled* subset
            only.  Must be non-empty and every key must appear in
            ``record_ids``.
        """
        record_ids = list(record_ids)
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2 or embeddings.shape[0] != len(record_ids):
            raise ValueError("embeddings must be a (n_records, dim) array")
        if len(set(record_ids)) != len(record_ids):
            raise ValueError("record_ids contains duplicates")
        if not labels:
            raise ValueError("at least one floor-labeled record is required")
        unknown = set(labels) - set(record_ids)
        if unknown:
            raise ValueError(
                f"labeled records not present in record_ids: {sorted(unknown)[:5]}")

        n = len(record_ids)
        position = {rid: i for i, rid in enumerate(record_ids)}
        labeled_counts = np.zeros(n, dtype=np.int64)
        cluster_label: dict[int, int] = {}
        for rid, floor in labels.items():
            index = position[rid]
            labeled_counts[index] = 1
            cluster_label[index] = int(floor)

        state = _AgglomerationState(embeddings, labeled_counts)
        merges: list[MergeStep] = []
        heap: list[tuple[float, int, int, int, int]] = []
        for i in range(n):
            candidate = state.nearest_valid(i)
            if candidate is not None:
                j, d = candidate
                heapq.heappush(heap, (d, i, j, state.version[i], state.version[j]))

        while heap:
            d, i, j, vi, vj = heapq.heappop(heap)
            if not state.active[i]:
                continue
            if (state.version[i] != vi or not state.active[j]
                    or state.version[j] != vj or not state.valid_pair(i, j)):
                candidate = state.nearest_valid(i)
                if candidate is not None:
                    nj, nd = candidate
                    heapq.heappush(heap, (nd, i, nj, state.version[i],
                                          state.version[nj]))
                continue

            merges.append(MergeStep(first=i, second=j, distance=d,
                                    merged_size=int(state.size[i] + state.size[j])))
            state.merge(i, j)
            if j in cluster_label and i not in cluster_label:
                cluster_label[i] = cluster_label[j]
            candidate = state.nearest_valid(i)
            if candidate is not None:
                nj, nd = candidate
                heapq.heappush(heap, (nd, i, nj, state.version[i],
                                      state.version[nj]))

        return self._finalize(record_ids, state, cluster_label, merges)

    def _finalize(self, record_ids: list[str], state: "_AgglomerationState",
                  cluster_label: dict[int, int],
                  merges: list[MergeStep]) -> ClusteringResult:
        active_clusters = [i for i in range(len(record_ids)) if state.active[i]]
        unlabeled = [c for c in active_clusters if state.labeled_counts[c] == 0]
        if unlabeled:
            if not self.allow_unreachable:
                raise RuntimeError(
                    f"{len(unlabeled)} clusters ended without a labeled sample; "
                    "pass allow_unreachable=True to label them by the nearest "
                    "labeled cluster")
            labeled_clusters = [c for c in active_clusters
                                if state.labeled_counts[c] >= 1]
            for c in unlabeled:
                distances = state.distance_matrix[c, labeled_clusters]
                nearest = labeled_clusters[int(np.argmin(distances))]
                cluster_label[c] = cluster_label[nearest]

        assignments: dict[str, int] = {}
        members: dict[int, list[str]] = {c: [] for c in active_clusters}
        for i, rid in enumerate(record_ids):
            root = state.find(i)
            assignments[rid] = root
            members[root].append(rid)
        labels_out = {c: cluster_label[c] for c in active_clusters}
        return ClusteringResult(assignments=assignments, cluster_labels=labels_out,
                                cluster_members=members, record_ids=record_ids,
                                merges=merges)


class _AgglomerationState:
    """Dense-matrix union-find state for the constrained agglomeration."""

    def __init__(self, embeddings: np.ndarray, labeled_counts: np.ndarray) -> None:
        n = embeddings.shape[0]
        self.distance_matrix = cdist(embeddings, embeddings)
        np.fill_diagonal(self.distance_matrix, np.inf)
        self.active = np.ones(n, dtype=bool)
        self.size = np.ones(n, dtype=np.int64)
        self.labeled_counts = labeled_counts.copy()
        self.version = np.zeros(n, dtype=np.int64)
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return int(root)

    def valid_pair(self, i: int, j: int) -> bool:
        """Whether clusters ``i`` and ``j`` may merge (at most one labeled sample)."""
        return bool(self.labeled_counts[i] + self.labeled_counts[j] <= 1)

    def nearest_valid(self, i: int) -> tuple[int, float] | None:
        """The closest cluster that ``i`` is allowed to merge with, if any."""
        if not self.active[i]:
            return None
        mask = self.active.copy()
        mask[i] = False
        if self.labeled_counts[i] >= 1:
            mask &= self.labeled_counts == 0
        if not mask.any():
            return None
        row = np.where(mask, self.distance_matrix[i], np.inf)
        j = int(np.argmin(row))
        if not np.isfinite(row[j]):
            return None
        return j, float(row[j])

    def merge(self, i: int, j: int) -> None:
        """Merge cluster ``j`` into cluster ``i`` (Lance–Williams average linkage)."""
        size_i, size_j = self.size[i], self.size[j]
        total = size_i + size_j
        merged_row = (size_i * self.distance_matrix[i]
                      + size_j * self.distance_matrix[j]) / total
        self.distance_matrix[i, :] = merged_row
        self.distance_matrix[:, i] = merged_row
        self.distance_matrix[i, i] = np.inf
        self.distance_matrix[j, :] = np.inf
        self.distance_matrix[:, j] = np.inf

        self.size[i] = total
        self.labeled_counts[i] += self.labeled_counts[j]
        self.active[j] = False
        self.parent[j] = i
        self.version[i] += 1
        self.version[j] += 1
