"""Proximity-based hierarchical clustering and the centroid floor classifier."""

from .hierarchical import (
    ClusteringResult,
    MergeStep,
    ProximityClustering,
    average_pairwise_distance,
)
from .model import ClusterModel, FloorCluster

__all__ = [
    "ClusteringResult",
    "MergeStep",
    "ProximityClustering",
    "average_pairwise_distance",
    "ClusterModel",
    "FloorCluster",
]
