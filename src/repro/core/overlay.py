"""Read-only delta views over a frozen bipartite graph.

The paper's online phase (Section V-A) embeds every new RF sample against
the *frozen* trained model: the sample is conceptually appended to the
bipartite graph, embedded, classified — and, unless it is persisted,
forgotten again.  Implementing that literally (mutate the shared graph,
predict, undo the mutation) makes read-mostly serving traffic pay for graph
churn it immediately reverts: every prediction bumps
:attr:`BipartiteGraph.version` (evicting the sampler cache), dirties the
degree array and must hold the serving write lock.

:class:`GraphOverlay` gives the online path the same enlarged-graph view
without touching the base graph.  Staged records (and the MAC nodes they
introduce) are allocated dense indices *past* the base graph's
``index_capacity``, and every composed view — incident-edge arrays, the
weighted degree array, index maps — is built from base + delta exactly as
the mutated graph would have built it, bit for bit (test-enforced), so the
embedding trainer consumes its RNG in precisely the same order and online
predictions stay byte-identical to the historical mutating path.

``persist=True`` predictions become an explicit :meth:`GraphOverlay.commit`:
the staged records are replayed onto the base graph in staging order, which
reproduces the exact node indices and adjacency insertion order a direct
``add_record`` sequence would have produced.

An overlay is a short-lived, single-threaded view.  It pins the base
graph's version at construction and refuses to operate once the base has
been mutated underneath it (:class:`StaleOverlayError`); concurrent readers
each build their own overlay over the shared immutable base.
"""

from __future__ import annotations

import numpy as np

from ..obs import runtime as obs
from .graph import BipartiteGraph, EdgeArrayScratch, Node, NodeKind
from .types import SignalRecord

__all__ = ["StaleOverlayError", "GraphOverlay"]


class StaleOverlayError(RuntimeError):
    """Raised when an overlay is used after its base graph was mutated."""


class GraphOverlay:
    """A bipartite-graph delta view: base graph + staged records, no mutation.

    Duck-types the subset of :class:`BipartiteGraph` the incremental
    embedding path reads (``index_capacity``, ``num_edges``, node lookups,
    ``incident_edge_arrays``, ``degree_array``, index maps), with every view
    composed from the immutable base and the overlay's private delta.
    """

    #: Marks overlay views for code that must treat them differently from a
    #: real graph (the trainer's sampler cache keys on graph identity and
    #: version; an ephemeral overlay is never worth caching against).
    is_overlay = True

    def __init__(self, base: BipartiteGraph) -> None:
        self.base = base
        self._base_version = base.version
        self._base_capacity = base.index_capacity
        self._next_index = base.index_capacity
        self._delta_nodes: dict[tuple[NodeKind, str], Node] = {}
        self._delta_by_index: dict[int, Node] = {}
        #: Delta adjacency, keyed by node index.  Keys are delta node
        #: indices *and* base MAC indices that gained delta edges; for the
        #: latter the mapping holds only the delta part.
        self._delta_adjacency: dict[int, dict[int, float]] = {}
        self._delta_edges = 0
        self._staged_records: list[SignalRecord] = []
        self._committed = False

    # ------------------------------------------------------------ guard rails
    def _check_live(self) -> None:
        if self._committed:
            raise StaleOverlayError(
                "overlay has been committed; build a new overlay for further "
                "staging")
        if self.base.version != self._base_version:
            raise StaleOverlayError(
                "base graph was mutated since this overlay was created; the "
                "composed views are no longer valid")

    # ---------------------------------------------------------------- lookups
    @property
    def weight_function(self):
        return self.base.weight_function

    @property
    def index_capacity(self) -> int:
        """One past the largest index (base capacity + staged delta nodes)."""
        return self._next_index

    @property
    def base_capacity(self) -> int:
        """The base graph's index capacity; delta indices start here."""
        return self._base_capacity

    @property
    def num_edges(self) -> int:
        return self.base.num_edges + self._delta_edges

    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes + len(self._delta_nodes)

    @property
    def num_delta_nodes(self) -> int:
        return len(self._delta_nodes)

    @property
    def staged_records(self) -> list[SignalRecord]:
        return list(self._staged_records)

    def has_node(self, kind: NodeKind, key: str) -> bool:
        return ((kind, key) in self._delta_nodes
                or self.base.has_node(kind, key))

    def get_node(self, kind: NodeKind, key: str) -> Node:
        node = self._delta_nodes.get((kind, key))
        if node is not None:
            return node
        return self.base.get_node(kind, key)

    def node_at(self, index: int) -> Node:
        node = self._delta_by_index.get(index)
        if node is not None:
            return node
        return self.base.node_at(index)

    def delta_mac_nodes(self) -> list[Node]:
        """Staged MAC nodes (MACs unseen by the base graph), by index."""
        return [node for node in self._delta_by_index.values()
                if node.kind is NodeKind.MAC]

    # ---------------------------------------------------------------- staging
    def add_record(self, record: SignalRecord) -> Node:
        """Stage a signal record (and any new MAC nodes) in the delta.

        Mirrors :meth:`BipartiteGraph.add_record` exactly — same index
        allocation order (record node first, then unseen MACs in RSS order),
        same weight validation — without touching the base graph.
        """
        self._check_live()
        key = record.record_id
        if self.has_node(NodeKind.RECORD, key):
            raise ValueError(f"record {key!r} is already in the graph")
        record_node = self._add_delta_node(NodeKind.RECORD, key)
        for mac, rss in record.rss.items():
            mac_node = self._delta_nodes.get((NodeKind.MAC, mac))
            if mac_node is None:
                if self.base.has_node(NodeKind.MAC, mac):
                    mac_node = self.base.get_node(NodeKind.MAC, mac)
                else:
                    mac_node = self._add_delta_node(NodeKind.MAC, mac)
            weight = self.weight_function.validate(rss)
            self._delta_adjacency.setdefault(mac_node.index, {})[
                record_node.index] = weight
            self._delta_adjacency[record_node.index][mac_node.index] = weight
            self._delta_edges += 1
        self._staged_records.append(record)
        return record_node

    def _add_delta_node(self, kind: NodeKind, key: str) -> Node:
        node = Node(kind=kind, key=key, index=self._next_index)
        self._next_index += 1
        self._delta_nodes[(kind, key)] = node
        self._delta_by_index[node.index] = node
        self._delta_adjacency[node.index] = {}
        return node

    # ----------------------------------------------------------------- commit
    def commit(self) -> list[Node]:
        """Apply the staged records to the base graph (the ``persist`` path).

        Replays the records through :meth:`BipartiteGraph.add_record` in
        staging order, which assigns exactly the indices the overlay already
        handed out (the overlay allocates from the base's ``index_capacity``
        in the same order).  The overlay is spent afterwards.
        """
        self._check_live()
        nodes = [self.base.add_record(record)
                 for record in self._staged_records]
        self._committed = True
        obs.metric_increment("overlay_commits_total")
        obs.metric_increment("overlay_committed_records_total",
                             len(self._staged_records))
        obs.metric_increment("overlay_committed_nodes_total",
                             len(self._delta_nodes))
        obs.metric_increment("overlay_committed_edges_total",
                             self._delta_edges)
        return nodes

    # ------------------------------------------------------------ array views
    def degree_array(self) -> np.ndarray:
        """Weighted degrees over base + delta, bit-identical to a mutated base.

        The base graph recomputes a touched node's degree as a left fold of
        ``sum(neighbors.values())``; the composed value here continues the
        same fold from the base degree (the fold's prefix), so every entry
        matches the mutated graph's recompute bit for bit.
        """
        self._check_live()
        degrees = np.empty(self._next_index, dtype=np.float64)
        degrees[:self._base_capacity] = self.base.degree_array()
        degrees[self._base_capacity:] = 0.0
        for index, neighbors in self._delta_adjacency.items():
            if not neighbors:
                continue
            value = degrees[index]
            for weight in neighbors.values():
                value += weight
            degrees[index] = value
        return degrees

    def delta_degree_patch(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, degrees)`` for the nodes whose degree the delta moved.

        The indices are every node holding delta edges — staged nodes plus
        boundary base MACs that gained edges — in ascending order; the
        degrees are the composed (base + delta) values, computed with the
        same left fold :meth:`degree_array` uses so each entry matches the
        full composed array bit for bit.  O(delta), never materialises the
        base degree array; this is what :class:`DeltaNegativeSampler`
        patches the cached base noise distribution with.
        """
        self._check_live()
        touched = sorted(index for index, neighbors
                         in self._delta_adjacency.items() if neighbors)
        indices = np.asarray(touched, dtype=np.int64)
        degrees = np.zeros(len(touched), dtype=np.float64)
        boundary = indices < self._base_capacity
        if boundary.any():
            degrees[boundary] = self.base.degrees_at(indices[boundary])
        for position, index in enumerate(touched):
            value = degrees[position]
            for weight in self._delta_adjacency[index].values():
                value += weight
            degrees[position] = value
        return indices, degrees

    def incident_edge_arrays(
            self, node_indices: np.ndarray,
            scratch: EdgeArrayScratch | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(sources, targets, weights)`` over edges incident to given nodes.

        Exactly the arrays :meth:`BipartiteGraph.incident_edge_arrays` would
        return on the mutated graph, in the same order (MAC nodes by index,
        per-MAC adjacency in insertion order with base edges before delta
        edges).  When every requested node is a delta node — the online
        inference case — only the delta is walked with set membership
        instead of an O(index_capacity) mask: O(staged edges), independent
        of both |E| and the degree of the touched MACs.  ``scratch``
        optionally reuses a previous call's output buffers when the edge
        count matches; the returned values are identical either way.
        """
        self._check_live()
        wanted_indices = np.asarray(node_indices, dtype=np.int64)
        delta_only = (wanted_indices.size == 0
                      or int(wanted_indices.min()) >= self._base_capacity)

        source_chunks: list[int] = []
        target_chunks: list[int] = []
        weight_chunks: list[float] = []
        if delta_only:
            # Every wanted node lives in the delta, so membership is a tiny
            # set and no base edge can qualify (neither endpoint is wanted):
            # the base sweep is skipped wholesale.
            wanted_set = set(map(int, wanted_indices))
            mac_indices: set[int] = set()
            for index in wanted_set:
                node = self._delta_by_index.get(index)
                if node is None:
                    continue
                if node.kind is NodeKind.MAC:
                    mac_indices.add(index)
                else:
                    mac_indices.update(
                        self._delta_adjacency.get(index, ()))
            for mac_index in sorted(mac_indices):
                mac_wanted = mac_index in wanted_set
                for record_index, weight in self._delta_adjacency.get(
                        mac_index, {}).items():
                    if mac_wanted or record_index in wanted_set:
                        source_chunks.append(mac_index)
                        target_chunks.append(record_index)
                        weight_chunks.append(weight)
        else:
            wanted = np.zeros(self._next_index, dtype=bool)
            wanted[wanted_indices] = True

            mac_indices = set()
            for index in np.flatnonzero(wanted):
                node = self._delta_by_index.get(int(index))
                if node is None:
                    try:
                        node = self.base.node_at(int(index))
                    except KeyError:
                        continue    # retired base index selects nothing
                if node.kind is NodeKind.MAC:
                    mac_indices.add(int(index))
                else:
                    mac_indices.update(self._iter_adjacency_keys(int(index)))

            for mac_index in sorted(mac_indices):
                mac_wanted = wanted[mac_index]
                # Base edges come first, exactly as the mutated adjacency
                # dict would iterate them.
                for record_index, weight in self._base_neighbors(mac_index):
                    if mac_wanted or wanted[record_index]:
                        source_chunks.append(mac_index)
                        target_chunks.append(record_index)
                        weight_chunks.append(weight)
                for record_index, weight in self._delta_adjacency.get(
                        mac_index, {}).items():
                    if mac_wanted or wanted[record_index]:
                        source_chunks.append(mac_index)
                        target_chunks.append(record_index)
                        weight_chunks.append(weight)
        if scratch is not None:
            return scratch.fill(source_chunks, target_chunks, weight_chunks)
        return (np.asarray(source_chunks, dtype=np.int64),
                np.asarray(target_chunks, dtype=np.int64),
                np.asarray(weight_chunks, dtype=np.float64))

    def _base_neighbors(self, index: int):
        """Base-graph adjacency items of a live base index ([] otherwise)."""
        if index >= self._base_capacity:
            return ()
        try:
            return self.base.neighbors(index).items()
        except KeyError:
            return ()

    def _iter_adjacency_keys(self, index: int):
        """Neighbor indices of a node: base part (if any) then delta part."""
        if index < self._base_capacity:
            yield from self.base.neighbors(index)
        yield from self._delta_adjacency.get(index, ())

    # ------------------------------------------------------------- index maps
    def record_index_map(self) -> dict[str, int]:
        """Record id -> index over base + delta (fresh dict, safe to keep)."""
        self._check_live()
        mapping = dict(self.base.record_index_map())
        for (kind, key), node in self._delta_nodes.items():
            if kind is NodeKind.RECORD:
                mapping[key] = node.index
        return mapping

    def mac_index_map(self) -> dict[str, int]:
        """MAC -> index over base + delta (fresh dict, safe to keep)."""
        self._check_live()
        mapping = dict(self.base.mac_index_map())
        for (kind, key), node in self._delta_nodes.items():
            if kind is NodeKind.MAC:
                mapping[key] = node.index
        return mapping

    def unknown_mac_indices(self, known: frozenset[str] | set[str]) -> list[int]:
        """Indices of base + delta MAC nodes missing from ``known``.

        The base part is one cached set difference
        (:meth:`BipartiteGraph.unknown_mac_indices`); the delta part only
        walks the staged MACs, keeping the online hot path O(delta).
        """
        self._check_live()
        indices = self.base.unknown_mac_indices(known)
        for (kind, key), node in self._delta_nodes.items():
            if kind is NodeKind.MAC and key not in known:
                indices.append(node.index)
        return indices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GraphOverlay(base={self.base!r}, "
                f"staged_records={len(self._staged_records)}, "
                f"delta_nodes={len(self._delta_nodes)})")
