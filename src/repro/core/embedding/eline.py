"""E-LINE: the paper's extension of LINE (Section IV-B).

E-LINE keeps LINE's second-order proximity term (Eq. 5) and adds a symmetric
term (Eq. 8) in which the roles of ego and context embeddings are swapped:
the conditional probability of the *ego* of ``j`` given the *context* of
``i``.  Minimising the combined objective (Eq. 9) — in practice its
negative-sampling surrogate (Eq. 10) — makes the ego embeddings of nodes that
are reachable from each other through short local paths similar, even when
they share few direct neighbours.  This matters for floor identification
because two records from the same floor frequently observe disjoint MAC sets
that only overlap through intermediate records.

The class also implements *incremental embedding* of nodes added after the
initial fit (Section V-A): the new node's ego and context vectors are trained
while every other embedding stays frozen, which is cheap enough for real-time
online inference.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import replace

import numpy as np

from ...obs import runtime as obs
from ..graph import BipartiteGraph, NodeKind
from .base import GraphEmbedder, GraphEmbedding
from .trainer import EdgeSamplingTrainer, ObjectiveTerms

__all__ = ["ELINEEmbedder"]

_ELINE_TERMS = ObjectiveTerms(first_order=False, second_order=True, symmetric=True)


class ELINEEmbedder(GraphEmbedder):
    """E-LINE graph embedding (second-order + symmetric ego/context term)."""

    def fit(self, graph: BipartiteGraph,
            warm_start: GraphEmbedding | None = None) -> GraphEmbedding:
        """Learn E-LINE embeddings for every node currently in ``graph``.

        With ``warm_start`` the ego/context vectors of nodes that also exist
        in the previous embedding are used as the starting point (streaming
        retrains, Section V-A): surviving records and MACs resume from their
        learned positions instead of re-converging from random noise.
        """
        trainer = EdgeSamplingTrainer(graph, self.config, _ELINE_TERMS)
        ego, context = trainer.initial_embeddings(warm_start=warm_start)
        losses = trainer.train(ego, context)
        record_index, mac_index = self._index_maps(graph)
        return GraphEmbedding(ego=ego, context=context,
                              record_index=record_index, mac_index=mac_index,
                              config=self.config, training_loss=losses)

    def embed_new_nodes(self, graph: BipartiteGraph, embedding: GraphEmbedding,
                        new_record_ids: Iterable[str],
                        samples_per_new_edge: float | None = None) -> GraphEmbedding:
        """Embed records added to ``graph`` after ``embedding`` was fitted.

        The records named in ``new_record_ids`` (and any MAC nodes that are
        not yet in ``embedding``) get fresh embeddings trained against the
        frozen embeddings of all pre-existing nodes, as described in the
        paper's online-inference section.  Returns a new
        :class:`GraphEmbedding` that covers the enlarged graph; the original
        embedding object is not modified.

        Parameters
        ----------
        graph:
            The bipartite graph after the new records were added.
        embedding:
            The embedding learned before the new records arrived.
        new_record_ids:
            Ids of the records to embed; each must already be a node of
            ``graph`` and must not be present in ``embedding``.
        samples_per_new_edge:
            Edge-sample budget per incident edge of the new nodes (defaults to
            the config's ``samples_per_edge``).
        """
        new_ids = list(new_record_ids)
        if not new_ids:
            return embedding
        ego, context, losses = self.embed_new_nodes_arrays(graph, embedding,
                                                           new_ids,
                                                           samples_per_new_edge)
        record_index, mac_index = self._index_maps(graph)
        return GraphEmbedding(ego=ego, context=context,
                              record_index=record_index, mac_index=mac_index,
                              config=self.config,
                              training_loss=list(embedding.training_loss) + losses)

    def embed_new_nodes_arrays(
            self, graph: BipartiteGraph, embedding: GraphEmbedding,
            new_record_ids: list[str],
            samples_per_new_edge: float | None = None,
            edge_scratch=None,
    ) -> tuple[np.ndarray, np.ndarray, list[float]]:
        """The array-level core of :meth:`embed_new_nodes`.

        Returns ``(ego, context, losses)`` over the enlarged index space
        without assembling a :class:`GraphEmbedding` (the index maps and the
        training-loss history are the only parts a non-persisting online
        prediction never reads — it looks up the new rows by index).
        ``graph`` may be the mutated base graph or a
        :class:`~repro.core.overlay.GraphOverlay` presenting the staged
        records over a frozen base; both produce bit-identical results
        because every composed overlay view matches the mutated graph's and
        the RNG is consumed in the same order either way.  ``edge_scratch``
        optionally carries an :class:`~repro.core.graph.EdgeArrayScratch`
        reused across consecutive same-shaped calls (the serving engine's
        per-thread buffers); results are identical with or without it.
        """
        with obs.span("online.embed") as embed_span:
            embed_span.set("new_records", len(new_record_ids))
            return self._embed_new_nodes_arrays(graph, embedding,
                                                new_record_ids,
                                                samples_per_new_edge,
                                                edge_scratch=edge_scratch)

    def _embed_new_nodes_arrays(
            self, graph: BipartiteGraph, embedding: GraphEmbedding,
            new_record_ids: list[str],
            samples_per_new_edge: float | None = None,
            edge_scratch=None,
    ) -> tuple[np.ndarray, np.ndarray, list[float]]:
        for record_id in new_record_ids:
            if embedding.has_record(record_id):
                raise ValueError(f"record {record_id!r} is already embedded")
            if not graph.has_node(NodeKind.RECORD, record_id):
                raise ValueError(f"record {record_id!r} is not in the graph")

        capacity = graph.index_capacity
        dim = self.config.dimension
        rng = np.random.default_rng(self.config.seed)
        scale = self.config.init_scale / dim

        trainable = np.zeros(capacity, dtype=bool)
        for record_id in new_record_ids:
            node = graph.get_node(NodeKind.RECORD, record_id)
            trainable[node.index] = True
        # MAC nodes unseen by the original embedding are trainable too.
        for index in graph.unknown_mac_indices(embedding.mac_key_set()):
            trainable[index] = True

        # Frozen rows are copied; only the trainable rows draw fresh random
        # vectors.  Drawing a full capacity-sized matrix instead would tie
        # the initialisation (and hence the prediction) to how many retired
        # indices the graph has accumulated, making repeated online
        # predictions of the same record drift apart.  Rows that are neither
        # frozen nor trainable are retired indices; they are never read.
        ego = np.zeros((capacity, dim))
        context = np.zeros((capacity, dim))
        old_rows = min(embedding.ego.shape[0], capacity)
        ego[:old_rows] = embedding.ego[:old_rows]
        context[:old_rows] = embedding.context[:old_rows]
        new_indices = np.flatnonzero(trainable)
        if new_indices.size:
            # One block draw, shaped so the generator consumes doubles in
            # the historical per-row order (ego row, then context row, per
            # index) — byte-identical to the former per-index loop.
            fresh = rng.uniform(-scale, scale,
                                size=(new_indices.size, 2, dim))
            ego[new_indices] = fresh[:, 0, :]
            context[new_indices] = fresh[:, 1, :]

        # The objective restricted to the new nodes only involves their own
        # incident edges, so the positive sampler is built over that subset:
        # this is what makes online inference cheap (Section V-A).
        per_edge = (samples_per_new_edge if samples_per_new_edge is not None
                    else self.config.samples_per_edge)
        incremental_config = replace(self.config, samples_per_edge=per_edge)
        trainer = EdgeSamplingTrainer(graph, incremental_config, _ELINE_TERMS,
                                      restrict_to_nodes=new_indices,
                                      edge_scratch=edge_scratch)
        losses = trainer.train(ego, context, trainable=trainable)
        return ego, context, losses
