"""Sampling utilities for LINE / E-LINE training.

Both algorithms are trained by *edge sampling* with *negative sampling*
(paper Section IV-B, Eq. 10):

* positive examples are edges drawn with probability proportional to their
  weight ``c_ij``;
* negative examples are nodes drawn from the noise distribution
  ``Pr(z) ∝ d_z^{3/4}`` where ``d_z`` is the (weighted) degree of ``z``.

Drawing from an arbitrary discrete distribution in O(1) per sample uses
Walker's alias method, implemented here as :class:`AliasTable`.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from ...obs import runtime as obs

__all__ = ["AliasTable", "EdgeSampler", "NegativeSampler",
           "DeltaNegativeSampler", "SamplerCache", "SAMPLER_MODES",
           "unigram_power_distribution", "validate_sampler_mode"]

#: Legal values of ``EmbeddingConfig.sampler_mode``: ``"exact"`` keeps the
#: byte-identical per-predict rebuild of the overlay negative sampler,
#: ``"delta"`` opts into the composed :class:`DeltaNegativeSampler` (same
#: per-index probabilities, different RNG consumption).
SAMPLER_MODES = ("exact", "delta")


def validate_sampler_mode(mode: str) -> str:
    """Validate a negative-sampling mode name; returns it unchanged."""
    if mode not in SAMPLER_MODES:
        raise ValueError(
            f"unknown sampler_mode {mode!r}; expected one of "
            + ", ".join(repr(known) for known in SAMPLER_MODES))
    return mode


class AliasTable:
    """O(1) sampling from a discrete distribution via Walker's alias method.

    The build partitions and assembles with numpy and runs the sequential
    Walker pairing over native floats — bit-identical to the historical
    pure-Python-list construction (test-enforced by a hypothesis property),
    because every comparison and residual subtraction happens on the same
    IEEE-754 doubles in the same order; only the bookkeeping around them was
    vectorised.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weights; they are normalised internally.
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")

        n = weights.size
        with np.errstate(over="ignore"):
            scale = n / total
        if not np.isfinite(scale):
            # A subnormal total overflows the normalisation; the historical
            # build silently produced a table that sampled zero-weight
            # entries in this regime.
            raise ValueError("weights sum is too small to normalise")
        probabilities = weights * scale
        # Entries never claimed by the pairing loop below are the historical
        # "leftover" entries: probability one, aliased to themselves.
        self._prob = np.ones(n, dtype=np.float64)
        self._alias = np.arange(n, dtype=np.int64)
        self._n = n
        self._weights = weights / total

        if n <= 2:
            # Closed form of the Walker pairing for the tiny tables the
            # per-predict restricted edge samplers build (one or two incident
            # edges): a single entry is always a leftover, and two entries
            # pair at most once — only when exactly one of them is small,
            # which writes the small entry's scaled probability and aliases
            # it to the other.  Bit-identical to the general loop below
            # (test-enforced), without the list conversions.
            if n == 2:
                first, second = probabilities.tolist()
                if (first < 1.0) != (second < 1.0):
                    small_index = 0 if first < 1.0 else 1
                    self._prob[small_index] = first if first < 1.0 else second
                    self._alias[small_index] = 1 - small_index
            return

        scaled = probabilities.tolist()
        small = np.flatnonzero(probabilities < 1.0).tolist()
        large = np.flatnonzero(probabilities >= 1.0).tolist()
        paired_index: list[int] = []
        paired_prob: list[float] = []
        paired_alias: list[int] = []
        while small and large:
            s = small.pop()
            g = large.pop()
            residual_s = scaled[s]
            paired_index.append(s)
            paired_prob.append(residual_s)
            paired_alias.append(g)
            residual_g = scaled[g] - (1.0 - residual_s)
            scaled[g] = residual_g
            if residual_g < 1.0:
                small.append(g)
            else:
                large.append(g)
        if paired_index:
            index = np.asarray(paired_index, dtype=np.int64)
            self._prob[index] = paired_prob
            self._alias[index] = paired_alias

    @property
    def size(self) -> int:
        return self._n

    @property
    def probabilities(self) -> np.ndarray:
        """The normalised target distribution (for tests and diagnostics)."""
        return self._weights.copy()

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` independent indices from the distribution."""
        if count < 0:
            raise ValueError("count must be non-negative")
        columns = rng.integers(0, self._n, size=count)
        coins = rng.random(count)
        accept = coins < self._prob[columns]
        return np.where(accept, columns, self._alias[columns])


def unigram_power_distribution(degrees: np.ndarray, power: float = 0.75) -> np.ndarray:
    """The noise distribution ``Pr(z) ∝ d_z^power`` over node indices.

    Indices with zero degree (retired or isolated nodes) get probability zero.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    if np.any(degrees < 0):
        raise ValueError("degrees must be non-negative")
    weights = np.power(degrees, power, where=degrees > 0,
                       out=np.zeros_like(degrees))
    return weights


class EdgeSampler:
    """Samples directed edges proportionally to their weight.

    The bipartite graph is undirected; following LINE, every undirected edge
    ``(m, v)`` is interpreted as the two directed edges ``m -> v`` and
    ``v -> m`` with the same weight, so a directed sample is an undirected
    sample plus a fair coin for direction.
    """

    def __init__(self, sources: np.ndarray, targets: np.ndarray,
                 weights: np.ndarray) -> None:
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if not (sources.shape == targets.shape == weights.shape):
            raise ValueError("sources, targets and weights must have equal shapes")
        if sources.size == 0:
            raise ValueError("cannot build an EdgeSampler with no edges")
        self._sources = sources
        self._targets = targets
        self._table = AliasTable(weights)

    @property
    def num_edges(self) -> int:
        return self._sources.size

    def sample(self, count: int,
               rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(heads, tails)`` of ``count`` sampled directed edges."""
        picks = self._table.sample(count, rng)
        sources = self._sources[picks]
        targets = self._targets[picks]
        flip = rng.random(count) < 0.5
        heads = np.where(flip, targets, sources)
        tails = np.where(flip, sources, targets)
        return heads, tails


class NegativeSampler:
    """Samples negative nodes from ``Pr(z) ∝ d_z^{3/4}``.

    The alias table is built over the *positive-degree* indices only and the
    drawn positions are mapped back to the original index space.  Zero-degree
    slots could never be sampled anyway, but keeping them inside the table
    would make the RNG consumption (``rng.integers(0, table_size)``) depend
    on how many retired node indices the graph has accumulated — repeated
    online predictions on the same model would then drift apart.  Compacting
    makes sampling a function of the live degree distribution alone, and is
    bit-for-bit identical to the uncompacted table when no degree is zero
    (the offline training case).
    """

    def __init__(self, degrees: np.ndarray, power: float = 0.75) -> None:
        weights = unigram_power_distribution(degrees, power=power)
        live = np.flatnonzero(weights > 0)
        if live.size == 0:
            raise ValueError("cannot build a NegativeSampler: all degrees are zero")
        self._live = live
        # With no zero-degree slots (the offline training case) the live map
        # is the identity; skip the remap gather on the sampling hot path.
        self._identity = live.size == degrees.size
        self._table = AliasTable(weights[live])

    @property
    def live_count(self) -> int:
        """Number of positive-weight indices the table draws from."""
        return self._live.size

    def sample_flat(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` draws as a flat, caller-owned index array.

        Composition helper for :class:`DeltaNegativeSampler`; the returned
        array is freshly allocated, so callers may mutate it.
        """
        flat = self._table.sample(count, rng)
        if not self._identity:
            flat = self._live[flat]
        return flat

    def sample(self, count: int, negatives_per_example: int,
               rng: np.random.Generator) -> np.ndarray:
        """Return an ``(count, negatives_per_example)`` array of node indices."""
        flat = self.sample_flat(count * negatives_per_example, rng)
        return flat.reshape(count, negatives_per_example)


class DeltaNegativeSampler:
    """Negative sampler for an overlay, composed from base + staged delta.

    A ``NegativeSampler(overlay.degree_array())`` rebuild pays an O(V)
    unigram-weight recompute plus an O(V) Walker pairing on *every* cold
    prediction, even though the overlay only changes a handful of degrees
    (the staged nodes and the boundary MACs they attach to).  This sampler
    reuses the base graph's version-cached alias table and unigram weight
    vector and builds a tiny alias table over only the overlay-affected
    indices, then samples the exact composed distribution
    ``Pr(z) ∝ d_z^power`` via a weighted two-level mixture:

    * with probability ``W_base' / W`` draw from the base table, reject-
      redrawing any patched index (their base weight mass is exactly the
      mass subtracted from ``W_base'``, so acceptance re-normalises to the
      unpatched base distribution);
    * otherwise draw from the delta table over the composed weights of the
      patched and staged indices.

    The composed per-index probabilities equal a full rebuild's
    :attr:`AliasTable.probabilities` bit for bit (hypothesis-enforced via
    :attr:`probabilities`), but the RNG *consumption* differs from the
    rebuild — hence the explicit ``sampler_mode="delta"`` opt-in.
    """

    def __init__(self, overlay, base_sampler: NegativeSampler,
                 base_weights: np.ndarray, base_total: float,
                 power: float = 0.75,
                 patch: tuple[np.ndarray, np.ndarray] | None = None) -> None:
        if patch is None:
            patch = overlay.delta_degree_patch()
        indices, degrees = patch
        base_capacity = overlay.base_capacity
        self._capacity = int(overlay.index_capacity)
        self._base_sampler = base_sampler
        self._base_weights = base_weights
        self._patch_indices = indices
        self._patch_weights = unigram_power_distribution(degrees, power=power)

        boundary = indices[indices < base_capacity]
        self._patched = np.zeros(base_capacity, dtype=bool)
        self._patched[boundary] = True
        # The rejection filter gathers this mask per draw; precomputing the
        # complement keeps an O(draws) invert off the sampling hot path.
        self._unpatched = ~self._patched
        patched_base = base_weights[boundary]
        base_mass = float(base_total) - float(patched_base.sum())
        if np.count_nonzero(patched_base > 0) >= base_sampler.live_count:
            # Every live base index is patched: the base branch must be
            # unreachable (the rejection loop could never terminate), and
            # float cancellation must not leave a residue as its mass.
            base_mass = 0.0
        self._base_mass = max(base_mass, 0.0)
        # Weighted acceptance rate of the rejection loop: the fraction of
        # base-table mass that is *not* patched.  Sizes the oversampled
        # one-shot draw in :meth:`_sample_base`.
        self._base_accept = (self._base_mass / float(base_total)
                             if float(base_total) > 0.0 else 0.0)

        live = np.flatnonzero(self._patch_weights > 0)
        self._delta_indices = indices[live]
        if live.size:
            delta_weights = self._patch_weights[live]
            self._delta_mass = float(delta_weights.sum())
            self._delta_table: AliasTable | None = AliasTable(delta_weights)
        else:
            self._delta_mass = 0.0
            self._delta_table = None

        total = self._base_mass + self._delta_mass
        if total <= 0.0:
            raise ValueError("cannot compose a DeltaNegativeSampler: all "
                             "composed degrees are zero")
        self._base_fraction = self._base_mass / total
        self._probability_cache: np.ndarray | None = None

    @property
    def delta_size(self) -> int:
        """Number of positive-weight overlay-affected indices."""
        return self._delta_indices.size

    @property
    def probabilities(self) -> np.ndarray:
        """Composed per-index probabilities over the overlay index space.

        Bit-identical to expanding ``NegativeSampler(overlay.degree_array())``
        back to index space: unpatched entries reuse the cached base weight
        vector (the elementwise ``d^power`` of the very same degrees), the
        patched/staged entries were recomputed from the overlay's composed
        degrees at construction, and the normalising sum runs over the same
        live-compacted array a full rebuild would sum.  O(V) — diagnostics
        and the distribution-equality property tests only; the sampling
        path never materialises this.
        """
        if self._probability_cache is None:
            weights = np.zeros(self._capacity, dtype=np.float64)
            weights[:self._base_weights.size] = self._base_weights
            weights[self._patch_indices] = self._patch_weights
            live = np.flatnonzero(weights > 0)
            compact = weights[live]
            expanded = np.zeros(self._capacity, dtype=np.float64)
            expanded[live] = compact / compact.sum()
            self._probability_cache = expanded
        return self._probability_cache.copy()

    def sample(self, count: int, negatives_per_example: int,
               rng: np.random.Generator) -> np.ndarray:
        """Return a ``(count, negatives_per_example)`` array of node indices."""
        total = count * negatives_per_example
        if self._delta_table is None:
            flat = self._base_sampler.sample_flat(total, rng)
        elif self._base_mass == 0.0:
            flat = self._delta_indices[self._delta_table.sample(total, rng)]
        else:
            coins = rng.random(total)
            from_base = coins < self._base_fraction
            n_base = int(np.count_nonzero(from_base))
            flat = np.empty(total, dtype=np.int64)
            if n_base:
                flat[from_base] = self._sample_base(n_base, rng)
            if n_base != total:
                picks = self._delta_table.sample(total - n_base, rng)
                np.logical_not(from_base, out=from_base)
                flat[from_base] = self._delta_indices[picks]
        return flat.reshape(count, negatives_per_example)

    def _sample_base(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Base-table draws conditioned (by rejection) on unpatched indices.

        Oversamples by the known acceptance rate so one draw-filter round
        almost always fills the request (accepted draws are i.i.d. from the
        conditional distribution, so keeping a prefix and discarding the
        surplus is exact); any shortfall loops with the same oversampling.
        """
        accept = max(self._base_accept, 0.05)
        request = int(count / accept * 1.08) + 16
        draws = self._base_sampler.sample_flat(request, rng)
        kept = draws[self._unpatched[draws]]
        if kept.size >= count:
            return kept[:count]
        out = np.empty(count, dtype=np.int64)
        out[:kept.size] = kept
        filled = kept.size
        while filled < count:
            need = count - filled
            request = int(need / accept * 1.08) + 16
            draws = self._base_sampler.sample_flat(request, rng)
            kept = draws[self._unpatched[draws]]
            take = min(kept.size, need)
            out[filled:filled + take] = kept[:take]
            filled += take
        return out


def _unigram_entry(graph) -> tuple[np.ndarray, float]:
    """The ``(weights, total)`` pair :meth:`SamplerCache.unigram_weights` caches."""
    weights = unigram_power_distribution(graph.degree_array())
    return weights, float(weights.sum())


class SamplerCache:
    """Reuses :class:`EdgeSampler`/:class:`NegativeSampler` per graph version.

    Keyed weakly on the graph object and strongly on its monotonic
    :attr:`~repro.core.graph.BipartiteGraph.version` counter: any mutation
    bumps the version, so a cached sampler is only ever returned for the
    exact graph state it was built from — a hit is byte-identical to a fresh
    construction (samplers are immutable once built).  Repeated trainer
    constructions over an *unchanged* graph (joint ``embed_new_nodes``
    batches at one version, repeated fits/ablations on one graph) reuse the
    alias tables instead of re-running the O(V+E) builds.  Online
    inference stages its probe records on a ``GraphOverlay`` instead of
    mutating the graph, so the graph's version — and therefore any entry
    cached here — survives arbitrarily many ``persist=False`` predictions;
    the overlay's own per-predict samplers are deliberately not cached
    (ephemeral views, one per prediction).  In ``sampler_mode="delta"`` the
    overlay path instead *composes* its negative sampler from the base
    graph's cached table and unigram weight vector
    (:meth:`delta_negative_sampler`), shrinking the per-predict build to
    the staged delta.

    Lookups take a short global lock; sampler construction itself happens
    outside it, so concurrent builds for different graphs (sharded serving)
    never serialise behind each other.  Two threads racing on the same miss
    may both build; the samplers are identical and the last insert wins.
    """

    def __init__(self) -> None:
        self._entries: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _lookup(self, graph, kind: str):
        """Return the cached sampler for the graph's current version."""
        entry = self._entries.get(graph)
        if entry is None or entry["version"] != graph.version:
            if entry is not None:
                # A stale entry for an older graph version is being replaced
                # — the cache's only eviction besides the weakref reaping a
                # dead graph.  Every cached object in the entry is built for
                # the old version and discarded with it, so count one
                # eviction *per object* (the entry holds them under their
                # kind keys, plus the "version" marker): replacing an entry
                # holding both an edge and a negative sampler evicts two
                # samplers, and ``sampler_cache_evictions_total`` must say
                # so.
                discarded = len(entry) - 1
                if discarded:
                    self.evictions += discarded
                    obs.metric_increment("sampler_cache_evictions_total",
                                         discarded)
            entry = {"version": graph.version}
            self._entries[graph] = entry
            return entry, None
        return entry, entry.get(kind)

    def _get(self, graph, kind: str, build) -> object:
        return self._get_with_state(graph, kind, build)[0]

    def _get_with_state(self, graph, kind: str, build) -> tuple[object, bool]:
        """Like :meth:`_get`, but also report whether it was a cache hit."""
        with self._lock:
            entry, sampler = self._lookup(graph, kind)
            if sampler is not None:
                self.hits += 1
                obs.metric_increment("sampler_cache_hits_total")
                return sampler, True
            self.misses += 1
            obs.metric_increment("sampler_cache_misses_total")
        sampler = build()
        with self._lock:
            # Insert only if the graph state is still the one we built for.
            current = self._entries.get(graph)
            if current is not None and current["version"] == graph.version:
                current[kind] = sampler
        return sampler, False

    def edge_sampler(self, graph) -> EdgeSampler:
        """The full-graph edge sampler for the graph's current version."""
        return self._get(graph, "edge",
                         lambda: EdgeSampler(*graph.edge_arrays()))

    def negative_sampler(self, graph) -> NegativeSampler:
        """The full-graph negative sampler for the graph's current version."""
        return self._get(graph, "negative",
                         lambda: NegativeSampler(graph.degree_array()))

    def unigram_weights(self, graph) -> tuple[np.ndarray, float]:
        """Cached ``(weights, total)`` of the graph's noise distribution.

        ``weights`` is the full-length ``d^0.75`` vector over the graph's
        dense index space and ``total`` its sum; both are cached per graph
        version like the samplers (treat the array as read-only).  The
        delta-composed sampler reuses the unpatched entries verbatim, which
        is what makes its composed probabilities bit-identical to a full
        rebuild's.
        """
        return self._get(graph, "unigram", lambda: _unigram_entry(graph))

    #: Bound on memoised delta compositions kept per base-graph version.
    #: Sized to cover a serving fleet cycling through a working set of
    #: repeated probes; overflow clears the memo (the parts it composes
    #: over stay cached, so a refill costs only the tiny delta builds).
    DELTA_MEMO_CAPACITY = 128

    def restricted_edge_sampler(self, base, sources: np.ndarray,
                                targets: np.ndarray,
                                weights: np.ndarray) -> EdgeSampler:
        """Memoised :class:`EdgeSampler` over restricted incident edges.

        Keyed by the edge-array *content* (and the base graph's version via
        the entry), so a re-predicted record — whose staged overlay yields
        byte-identical restricted arrays — skips the alias build.  The
        sampler is built over private copies: callers routinely pass
        scratch-buffer views that the next prediction overwrites in place.
        Delta-mode only; the exact mode never reaches this path.
        """
        key = (sources.tobytes(), targets.tobytes(), weights.tobytes())
        with self._lock:
            entry = self._entries.get(base)
            if entry is not None and entry["version"] == base.version:
                memoised = entry.get("restricted_edge", {}).get(key)
                if memoised is not None:
                    self.hits += 1
                    obs.metric_increment("sampler_cache_hits_total")
                    return memoised
        sampler = EdgeSampler(sources.copy(), targets.copy(), weights.copy())
        with self._lock:
            current = self._entries.get(base)
            if current is not None and current["version"] == base.version:
                memo = current.setdefault("restricted_edge", {})
                if len(memo) >= self.DELTA_MEMO_CAPACITY:
                    memo.clear()
                memo[key] = sampler
        return sampler

    def delta_negative_sampler(self, overlay) -> DeltaNegativeSampler:
        """Compose the overlay's staged delta with its base's cached parts.

        The base negative sampler and unigram weight vector come from this
        cache (built on first use per base-graph version); only the tiny
        delta table over the overlay-affected indices is constructed per
        call.  Identical staged deltas (the same record re-predicted, a
        fleet replaying a probe working set) skip even that: finished
        compositions are memoised per base-graph version, keyed by the
        patch content, and a :class:`DeltaNegativeSampler` is immutable
        after construction, so sharing one across predictions (and
        threads) is exact — every draw depends only on the caller's RNG.
        ``delta_sampler_hits_total`` counts compositions fully served from
        cache (memoised or composed from cached base parts),
        ``delta_sampler_rebuilds_total`` those that had to (re)build a
        base part first.
        """
        base = overlay.base
        indices, degrees = overlay.delta_degree_patch()
        key = (int(overlay.index_capacity),
               indices.tobytes(), degrees.tobytes())
        with self._lock:
            entry = self._entries.get(base)
            if entry is not None and entry["version"] == base.version:
                memoised = entry.get("delta", {}).get(key)
                if memoised is not None:
                    self.hits += 1
                    obs.metric_increment("sampler_cache_hits_total")
                    obs.metric_increment("delta_sampler_hits_total")
                    return memoised
        sampler, sampler_hit = self._get_with_state(
            base, "negative", lambda: NegativeSampler(base.degree_array()))
        (weights, total), unigram_hit = self._get_with_state(
            base, "unigram", lambda: _unigram_entry(base))
        if sampler_hit and unigram_hit:
            obs.metric_increment("delta_sampler_hits_total")
        else:
            obs.metric_increment("delta_sampler_rebuilds_total")
        composed = DeltaNegativeSampler(overlay, sampler, weights, total,
                                        patch=(indices, degrees))
        with self._lock:
            current = self._entries.get(base)
            if current is not None and current["version"] == base.version:
                memo = current.setdefault("delta", {})
                if len(memo) >= self.DELTA_MEMO_CAPACITY:
                    memo.clear()
                memo[key] = composed
        return composed

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
