"""Sampling utilities for LINE / E-LINE training.

Both algorithms are trained by *edge sampling* with *negative sampling*
(paper Section IV-B, Eq. 10):

* positive examples are edges drawn with probability proportional to their
  weight ``c_ij``;
* negative examples are nodes drawn from the noise distribution
  ``Pr(z) ∝ d_z^{3/4}`` where ``d_z`` is the (weighted) degree of ``z``.

Drawing from an arbitrary discrete distribution in O(1) per sample uses
Walker's alias method, implemented here as :class:`AliasTable`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AliasTable", "EdgeSampler", "NegativeSampler", "unigram_power_distribution"]


class AliasTable:
    """O(1) sampling from a discrete distribution via Walker's alias method.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weights; they are normalised internally.
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")

        n = weights.size
        probabilities = weights * (n / total)
        self._prob = np.zeros(n, dtype=np.float64)
        self._alias = np.zeros(n, dtype=np.int64)

        small = [i for i, p in enumerate(probabilities) if p < 1.0]
        large = [i for i, p in enumerate(probabilities) if p >= 1.0]
        probabilities = probabilities.copy()
        while small and large:
            s = small.pop()
            g = large.pop()
            self._prob[s] = probabilities[s]
            self._alias[s] = g
            probabilities[g] = probabilities[g] - (1.0 - probabilities[s])
            if probabilities[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        for leftover in large + small:
            self._prob[leftover] = 1.0
            self._alias[leftover] = leftover

        self._n = n
        self._weights = weights / total

    @property
    def size(self) -> int:
        return self._n

    @property
    def probabilities(self) -> np.ndarray:
        """The normalised target distribution (for tests and diagnostics)."""
        return self._weights.copy()

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` independent indices from the distribution."""
        if count < 0:
            raise ValueError("count must be non-negative")
        columns = rng.integers(0, self._n, size=count)
        coins = rng.random(count)
        accept = coins < self._prob[columns]
        return np.where(accept, columns, self._alias[columns])


def unigram_power_distribution(degrees: np.ndarray, power: float = 0.75) -> np.ndarray:
    """The noise distribution ``Pr(z) ∝ d_z^power`` over node indices.

    Indices with zero degree (retired or isolated nodes) get probability zero.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    if np.any(degrees < 0):
        raise ValueError("degrees must be non-negative")
    weights = np.power(degrees, power, where=degrees > 0,
                       out=np.zeros_like(degrees))
    return weights


class EdgeSampler:
    """Samples directed edges proportionally to their weight.

    The bipartite graph is undirected; following LINE, every undirected edge
    ``(m, v)`` is interpreted as the two directed edges ``m -> v`` and
    ``v -> m`` with the same weight, so a directed sample is an undirected
    sample plus a fair coin for direction.
    """

    def __init__(self, sources: np.ndarray, targets: np.ndarray,
                 weights: np.ndarray) -> None:
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if not (sources.shape == targets.shape == weights.shape):
            raise ValueError("sources, targets and weights must have equal shapes")
        if sources.size == 0:
            raise ValueError("cannot build an EdgeSampler with no edges")
        self._sources = sources
        self._targets = targets
        self._table = AliasTable(weights)

    @property
    def num_edges(self) -> int:
        return self._sources.size

    def sample(self, count: int,
               rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(heads, tails)`` of ``count`` sampled directed edges."""
        picks = self._table.sample(count, rng)
        heads = self._sources[picks].copy()
        tails = self._targets[picks].copy()
        flip = rng.random(count) < 0.5
        heads[flip], tails[flip] = tails[flip], heads[flip].copy()
        return heads, tails


class NegativeSampler:
    """Samples negative nodes from ``Pr(z) ∝ d_z^{3/4}``.

    The alias table is built over the *positive-degree* indices only and the
    drawn positions are mapped back to the original index space.  Zero-degree
    slots could never be sampled anyway, but keeping them inside the table
    would make the RNG consumption (``rng.integers(0, table_size)``) depend
    on how many retired node indices the graph has accumulated — repeated
    online predictions on the same model would then drift apart.  Compacting
    makes sampling a function of the live degree distribution alone, and is
    bit-for-bit identical to the uncompacted table when no degree is zero
    (the offline training case).
    """

    def __init__(self, degrees: np.ndarray, power: float = 0.75) -> None:
        weights = unigram_power_distribution(degrees, power=power)
        live = np.flatnonzero(weights > 0)
        if live.size == 0:
            raise ValueError("cannot build a NegativeSampler: all degrees are zero")
        self._live = live
        self._table = AliasTable(weights[live])

    def sample(self, count: int, negatives_per_example: int,
               rng: np.random.Generator) -> np.ndarray:
        """Return an ``(count, negatives_per_example)`` array of node indices."""
        total = count * negatives_per_example
        flat = self._live[self._table.sample(total, rng)]
        return flat.reshape(count, negatives_per_example)
