"""Sampling utilities for LINE / E-LINE training.

Both algorithms are trained by *edge sampling* with *negative sampling*
(paper Section IV-B, Eq. 10):

* positive examples are edges drawn with probability proportional to their
  weight ``c_ij``;
* negative examples are nodes drawn from the noise distribution
  ``Pr(z) ∝ d_z^{3/4}`` where ``d_z`` is the (weighted) degree of ``z``.

Drawing from an arbitrary discrete distribution in O(1) per sample uses
Walker's alias method, implemented here as :class:`AliasTable`.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from ...obs import runtime as obs

__all__ = ["AliasTable", "EdgeSampler", "NegativeSampler", "SamplerCache",
           "unigram_power_distribution"]


class AliasTable:
    """O(1) sampling from a discrete distribution via Walker's alias method.

    The build partitions and assembles with numpy and runs the sequential
    Walker pairing over native floats — bit-identical to the historical
    pure-Python-list construction (test-enforced by a hypothesis property),
    because every comparison and residual subtraction happens on the same
    IEEE-754 doubles in the same order; only the bookkeeping around them was
    vectorised.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weights; they are normalised internally.
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")

        n = weights.size
        with np.errstate(over="ignore"):
            scale = n / total
        if not np.isfinite(scale):
            # A subnormal total overflows the normalisation; the historical
            # build silently produced a table that sampled zero-weight
            # entries in this regime.
            raise ValueError("weights sum is too small to normalise")
        probabilities = weights * scale
        # Entries never claimed by the pairing loop below are the historical
        # "leftover" entries: probability one, aliased to themselves.
        self._prob = np.ones(n, dtype=np.float64)
        self._alias = np.arange(n, dtype=np.int64)

        scaled = probabilities.tolist()
        small = np.flatnonzero(probabilities < 1.0).tolist()
        large = np.flatnonzero(probabilities >= 1.0).tolist()
        paired_index: list[int] = []
        paired_prob: list[float] = []
        paired_alias: list[int] = []
        while small and large:
            s = small.pop()
            g = large.pop()
            residual_s = scaled[s]
            paired_index.append(s)
            paired_prob.append(residual_s)
            paired_alias.append(g)
            residual_g = scaled[g] - (1.0 - residual_s)
            scaled[g] = residual_g
            if residual_g < 1.0:
                small.append(g)
            else:
                large.append(g)
        if paired_index:
            index = np.asarray(paired_index, dtype=np.int64)
            self._prob[index] = paired_prob
            self._alias[index] = paired_alias

        self._n = n
        self._weights = weights / total

    @property
    def size(self) -> int:
        return self._n

    @property
    def probabilities(self) -> np.ndarray:
        """The normalised target distribution (for tests and diagnostics)."""
        return self._weights.copy()

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` independent indices from the distribution."""
        if count < 0:
            raise ValueError("count must be non-negative")
        columns = rng.integers(0, self._n, size=count)
        coins = rng.random(count)
        accept = coins < self._prob[columns]
        return np.where(accept, columns, self._alias[columns])


def unigram_power_distribution(degrees: np.ndarray, power: float = 0.75) -> np.ndarray:
    """The noise distribution ``Pr(z) ∝ d_z^power`` over node indices.

    Indices with zero degree (retired or isolated nodes) get probability zero.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    if np.any(degrees < 0):
        raise ValueError("degrees must be non-negative")
    weights = np.power(degrees, power, where=degrees > 0,
                       out=np.zeros_like(degrees))
    return weights


class EdgeSampler:
    """Samples directed edges proportionally to their weight.

    The bipartite graph is undirected; following LINE, every undirected edge
    ``(m, v)`` is interpreted as the two directed edges ``m -> v`` and
    ``v -> m`` with the same weight, so a directed sample is an undirected
    sample plus a fair coin for direction.
    """

    def __init__(self, sources: np.ndarray, targets: np.ndarray,
                 weights: np.ndarray) -> None:
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if not (sources.shape == targets.shape == weights.shape):
            raise ValueError("sources, targets and weights must have equal shapes")
        if sources.size == 0:
            raise ValueError("cannot build an EdgeSampler with no edges")
        self._sources = sources
        self._targets = targets
        self._table = AliasTable(weights)

    @property
    def num_edges(self) -> int:
        return self._sources.size

    def sample(self, count: int,
               rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(heads, tails)`` of ``count`` sampled directed edges."""
        picks = self._table.sample(count, rng)
        sources = self._sources[picks]
        targets = self._targets[picks]
        flip = rng.random(count) < 0.5
        heads = np.where(flip, targets, sources)
        tails = np.where(flip, sources, targets)
        return heads, tails


class NegativeSampler:
    """Samples negative nodes from ``Pr(z) ∝ d_z^{3/4}``.

    The alias table is built over the *positive-degree* indices only and the
    drawn positions are mapped back to the original index space.  Zero-degree
    slots could never be sampled anyway, but keeping them inside the table
    would make the RNG consumption (``rng.integers(0, table_size)``) depend
    on how many retired node indices the graph has accumulated — repeated
    online predictions on the same model would then drift apart.  Compacting
    makes sampling a function of the live degree distribution alone, and is
    bit-for-bit identical to the uncompacted table when no degree is zero
    (the offline training case).
    """

    def __init__(self, degrees: np.ndarray, power: float = 0.75) -> None:
        weights = unigram_power_distribution(degrees, power=power)
        live = np.flatnonzero(weights > 0)
        if live.size == 0:
            raise ValueError("cannot build a NegativeSampler: all degrees are zero")
        self._live = live
        # With no zero-degree slots (the offline training case) the live map
        # is the identity; skip the remap gather on the sampling hot path.
        self._identity = live.size == degrees.size
        self._table = AliasTable(weights[live])

    def sample(self, count: int, negatives_per_example: int,
               rng: np.random.Generator) -> np.ndarray:
        """Return an ``(count, negatives_per_example)`` array of node indices."""
        total = count * negatives_per_example
        flat = self._table.sample(total, rng)
        if not self._identity:
            flat = self._live[flat]
        return flat.reshape(count, negatives_per_example)


class SamplerCache:
    """Reuses :class:`EdgeSampler`/:class:`NegativeSampler` per graph version.

    Keyed weakly on the graph object and strongly on its monotonic
    :attr:`~repro.core.graph.BipartiteGraph.version` counter: any mutation
    bumps the version, so a cached sampler is only ever returned for the
    exact graph state it was built from — a hit is byte-identical to a fresh
    construction (samplers are immutable once built).  Repeated trainer
    constructions over an *unchanged* graph (joint ``embed_new_nodes``
    batches at one version, repeated fits/ablations on one graph) reuse the
    alias tables instead of re-running the O(V+E) builds.  Online
    inference stages its probe records on a ``GraphOverlay`` instead of
    mutating the graph, so the graph's version — and therefore any entry
    cached here — survives arbitrarily many ``persist=False`` predictions;
    the overlay's own per-predict samplers are deliberately not cached
    (ephemeral views, one per prediction).

    Lookups take a short global lock; sampler construction itself happens
    outside it, so concurrent builds for different graphs (sharded serving)
    never serialise behind each other.  Two threads racing on the same miss
    may both build; the samplers are identical and the last insert wins.
    """

    def __init__(self) -> None:
        self._entries: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _lookup(self, graph, kind: str):
        """Return the cached sampler for the graph's current version."""
        entry = self._entries.get(graph)
        if entry is None or entry["version"] != graph.version:
            if entry is not None:
                # A stale entry for an older graph version is being
                # replaced — the cache's only eviction besides the weakref
                # reaping a dead graph.
                self.evictions += 1
                obs.metric_increment("sampler_cache_evictions_total")
            entry = {"version": graph.version}
            self._entries[graph] = entry
            return entry, None
        return entry, entry.get(kind)

    def _get(self, graph, kind: str, build) -> object:
        with self._lock:
            entry, sampler = self._lookup(graph, kind)
            if sampler is not None:
                self.hits += 1
                obs.metric_increment("sampler_cache_hits_total")
                return sampler
            self.misses += 1
            obs.metric_increment("sampler_cache_misses_total")
        sampler = build()
        with self._lock:
            # Insert only if the graph state is still the one we built for.
            current = self._entries.get(graph)
            if current is not None and current["version"] == graph.version:
                current[kind] = sampler
        return sampler

    def edge_sampler(self, graph) -> EdgeSampler:
        """The full-graph edge sampler for the graph's current version."""
        return self._get(graph, "edge",
                         lambda: EdgeSampler(*graph.edge_arrays()))

    def negative_sampler(self, graph) -> NegativeSampler:
        """The full-graph negative sampler for the graph's current version."""
        return self._get(graph, "negative",
                         lambda: NegativeSampler(graph.degree_array()))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
