"""Graph embedding algorithms for the GRAFICS bipartite graph."""

from .base import EmbeddingConfig, GraphEmbedder, GraphEmbedding
from .eline import ELINEEmbedder
from .line import LINEEmbedder
from .sampler import AliasTable, EdgeSampler, NegativeSampler
from .trainer import EdgeSamplingTrainer, ObjectiveTerms

__all__ = [
    "EmbeddingConfig",
    "GraphEmbedder",
    "GraphEmbedding",
    "ELINEEmbedder",
    "LINEEmbedder",
    "AliasTable",
    "EdgeSampler",
    "NegativeSampler",
    "EdgeSamplingTrainer",
    "ObjectiveTerms",
]
