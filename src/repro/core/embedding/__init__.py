"""Graph embedding algorithms for the GRAFICS bipartite graph."""

from .base import EmbeddingConfig, GraphEmbedder, GraphEmbedding
from .eline import ELINEEmbedder
from .kernels import (
    KERNEL_NAMES,
    FusedKernel,
    ReferenceKernel,
    TrainingKernel,
    make_kernel,
)
from .line import LINEEmbedder
from .sampler import AliasTable, EdgeSampler, NegativeSampler, SamplerCache
from .trainer import EdgeSamplingTrainer, ObjectiveTerms, clear_sampler_cache

__all__ = [
    "EmbeddingConfig",
    "GraphEmbedder",
    "GraphEmbedding",
    "ELINEEmbedder",
    "LINEEmbedder",
    "AliasTable",
    "EdgeSampler",
    "NegativeSampler",
    "EdgeSamplingTrainer",
    "ObjectiveTerms",
    "KERNEL_NAMES",
    "TrainingKernel",
    "ReferenceKernel",
    "FusedKernel",
    "make_kernel",
    "SamplerCache",
    "clear_sampler_cache",
]
