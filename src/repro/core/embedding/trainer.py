"""Shared edge-sampling SGD engine for LINE and E-LINE.

Both algorithms minimise a negative-sampling objective over sampled edges
(paper Eq. 10).  The engine below is vectorised over mini-batches of edges and
supports three objective terms that the concrete embedders combine:

* ``first_order``   — pull the *ego* embeddings of edge endpoints together
  (LINE's first-order proximity; not useful on a bipartite graph, kept for the
  ablation discussed in Section IV-B / VI-C).
* ``second_order``  — for a directed edge ``i -> j``, pull ``u_i`` (ego of the
  source) towards ``u'_j`` (context of the target); this is LINE's
  second-order proximity.
* ``symmetric``     — E-LINE's additional term: also pull ``u'_i`` towards
  ``u_j`` (Eq. 8), which propagates similarity through multi-hop local
  neighbourhoods.

The engine also supports *frozen* training used during online inference
(Section V-A): only the rows listed in ``trainable`` receive gradient updates,
so a newly added record can be embedded in real time without perturbing the
previously learned embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import BipartiteGraph, NodeKind
from .base import EmbeddingConfig
from .sampler import EdgeSampler, NegativeSampler

__all__ = ["ObjectiveTerms", "EdgeSamplingTrainer", "sigmoid"]

#: Clip for the sigmoid argument to avoid overflow in exp().
_SIGMOID_CLIP = 30.0


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically safe logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -_SIGMOID_CLIP, _SIGMOID_CLIP)))


@dataclass(frozen=True)
class ObjectiveTerms:
    """Which objective terms the trainer optimises."""

    first_order: bool = False
    second_order: bool = True
    symmetric: bool = False

    def __post_init__(self) -> None:
        if not (self.first_order or self.second_order or self.symmetric):
            raise ValueError("at least one objective term must be enabled")


class EdgeSamplingTrainer:
    """Vectorised negative-sampling SGD over sampled edges of a bipartite graph."""

    def __init__(self, graph: BipartiteGraph, config: EmbeddingConfig,
                 terms: ObjectiveTerms,
                 restrict_to_nodes: np.ndarray | None = None) -> None:
        """Create a trainer over all edges or, optionally, a node-incident subset.

        Parameters
        ----------
        restrict_to_nodes:
            Optional array of node indices.  When given, only edges incident
            to at least one of these nodes are sampled as positive examples
            (used for the frozen-graph online embedding of new nodes, whose
            objective only contains terms for their own incident edges).
            Negative samples are still drawn from the full graph.
        """
        if graph.num_edges == 0:
            raise ValueError("cannot train embeddings on a graph with no edges")
        self.graph = graph
        self.config = config
        self.terms = terms
        sources, targets, weights = graph.edge_arrays()
        if restrict_to_nodes is not None:
            wanted = np.zeros(graph.index_capacity, dtype=bool)
            wanted[np.asarray(restrict_to_nodes, dtype=np.int64)] = True
            keep = wanted[sources] | wanted[targets]
            if not keep.any():
                raise ValueError(
                    "restrict_to_nodes selects no edges; the nodes are isolated")
            sources, targets, weights = sources[keep], targets[keep], weights[keep]
        self._num_sampled_edges = int(sources.size)
        self._edge_sampler = EdgeSampler(sources, targets, weights)
        self._negative_sampler = NegativeSampler(graph.degree_array())
        self._rng = np.random.default_rng(config.seed)

    @property
    def num_sampled_edges(self) -> int:
        """Number of edges the positive-example sampler draws from."""
        return self._num_sampled_edges

    # ------------------------------------------------------------------ setup
    def initial_embeddings(self, warm_start=None) -> tuple[np.ndarray, np.ndarray]:
        """Uniformly initialised ego and context matrices sized to the graph.

        Parameters
        ----------
        warm_start:
            Optional :class:`GraphEmbedding` from a previous fit.  Nodes of
            the current graph whose ``(kind, key)`` also appears in the
            previous embedding start from their previous vectors instead of
            random initialisation; nodes new to the graph keep the random
            draw.  The full random matrices are drawn either way, so the RNG
            stream — and therefore everything sampled after initialisation —
            is identical with and without a warm start.
        """
        capacity = self.graph.index_capacity
        dim = self.config.dimension
        scale = self.config.init_scale / dim
        ego = self._rng.uniform(-scale, scale, size=(capacity, dim))
        context = self._rng.uniform(-scale, scale, size=(capacity, dim))
        if warm_start is not None:
            if warm_start.dimension != dim:
                raise ValueError(
                    f"warm-start embedding has dimension {warm_start.dimension}, "
                    f"expected {dim}")
            for node in self.graph.nodes():
                index_map = (warm_start.record_index
                             if node.kind is NodeKind.RECORD
                             else warm_start.mac_index)
                old_row = index_map.get(node.key)
                if old_row is not None:
                    ego[node.index] = warm_start.ego[old_row]
                    context[node.index] = warm_start.context[old_row]
        return ego, context

    def total_samples(self) -> int:
        """Total number of edge samples for a full training run."""
        return max(1, int(self.config.samples_per_edge * self._num_sampled_edges))

    # --------------------------------------------------------------- training
    def train(self, ego: np.ndarray, context: np.ndarray,
              trainable: np.ndarray | None = None,
              total_samples: int | None = None) -> list[float]:
        """Run SGD in place on ``ego`` and ``context``; return per-batch losses.

        Parameters
        ----------
        ego, context:
            Embedding matrices of shape ``(index_capacity, dimension)``,
            modified in place.
        trainable:
            Optional boolean mask over node indices.  When given, gradient
            updates are applied only to rows where the mask is ``True``
            (frozen-graph online inference).  When ``None`` every row is
            trainable.
        total_samples:
            Override for the number of edge samples (defaults to
            ``samples_per_edge * num_edges``).
        """
        config = self.config
        if ego.shape != context.shape:
            raise ValueError("ego and context must have the same shape")
        if ego.shape[0] < self.graph.index_capacity:
            raise ValueError("embedding matrices are smaller than the graph")
        if trainable is not None:
            trainable = np.asarray(trainable, dtype=bool)
            if trainable.shape[0] != ego.shape[0]:
                raise ValueError("trainable mask must match embedding rows")

        remaining = total_samples if total_samples is not None else self.total_samples()
        total = remaining
        losses: list[float] = []
        while remaining > 0:
            batch = min(config.batch_size, remaining)
            progress = 1.0 - remaining / total
            lr = max(config.min_learning_rate,
                     config.learning_rate * (1.0 - progress))
            loss = self._train_batch(ego, context, batch, lr, trainable)
            losses.append(loss)
            remaining -= batch
        return losses

    def _train_batch(self, ego: np.ndarray, context: np.ndarray, batch: int,
                     lr: float, trainable: np.ndarray | None) -> float:
        heads, tails = self._edge_sampler.sample(batch, self._rng)
        negatives = self._negative_sampler.sample(
            batch, self.config.negative_samples, self._rng)

        loss = 0.0
        if self.terms.second_order:
            loss += self._skipgram_step(ego, context, heads, tails, negatives,
                                        lr, trainable)
        if self.terms.symmetric:
            loss += self._skipgram_step(context, ego, heads, tails, negatives,
                                        lr, trainable)
        if self.terms.first_order:
            loss += self._skipgram_step(ego, ego, heads, tails, negatives,
                                        lr, trainable)
        return loss / batch

    def _skipgram_step(self, source_table: np.ndarray, target_table: np.ndarray,
                       heads: np.ndarray, tails: np.ndarray,
                       negatives: np.ndarray, lr: float,
                       trainable: np.ndarray | None) -> float:
        """One negative-sampling step: pull source[heads] towards target[tails].

        ``source_table`` and ``target_table`` select which embedding matrix
        plays the "input" and "output" role; passing (ego, context) gives the
        second-order term, (context, ego) the E-LINE symmetric term and
        (ego, ego) the first-order term.
        """
        config = self.config
        source = source_table[heads]                      # (B, D)
        positive_target = target_table[tails]             # (B, D)
        negative_target = target_table[negatives]         # (B, K, D)

        if config.dropout > 0.0:
            keep = 1.0 - config.dropout
            mask = (self._rng.random(source.shape) < keep) / keep
            source = source * mask

        pos_score = np.einsum("bd,bd->b", source, positive_target)
        neg_score = np.einsum("bd,bkd->bk", source, negative_target)

        pos_sig = sigmoid(pos_score)
        neg_sig = sigmoid(neg_score)

        # Gradients of the negative-sampling loss
        #   -log sigma(pos) - sum_k log sigma(-neg_k)
        pos_coeff = pos_sig - 1.0                          # (B,)
        neg_coeff = neg_sig                                # (B, K)

        grad_source = (pos_coeff[:, None] * positive_target
                       + np.einsum("bk,bkd->bd", neg_coeff, negative_target))
        grad_positive = pos_coeff[:, None] * source
        grad_negative = neg_coeff[:, :, None] * source[:, None, :]

        if trainable is not None:
            grad_source = grad_source * trainable[heads][:, None]
            grad_positive = grad_positive * trainable[tails][:, None]
            grad_negative = grad_negative * trainable[negatives][:, :, None]

        np.add.at(source_table, heads, -lr * grad_source)
        np.add.at(target_table, tails, -lr * grad_positive)
        np.add.at(target_table, negatives.ravel(),
                  -lr * grad_negative.reshape(-1, grad_negative.shape[-1]))

        with np.errstate(divide="ignore"):
            pos_loss = -np.log(np.maximum(pos_sig, 1e-12)).sum()
            neg_loss = -np.log(np.maximum(1.0 - neg_sig, 1e-12)).sum()
        return float(pos_loss + neg_loss)
