"""Shared edge-sampling SGD engine for LINE and E-LINE.

Both algorithms minimise a negative-sampling objective over sampled edges
(paper Eq. 10).  The engine below is vectorised over mini-batches of edges and
supports three objective terms that the concrete embedders combine:

* ``first_order``   — pull the *ego* embeddings of edge endpoints together
  (LINE's first-order proximity; not useful on a bipartite graph, kept for the
  ablation discussed in Section IV-B / VI-C).
* ``second_order``  — for a directed edge ``i -> j``, pull ``u_i`` (ego of the
  source) towards ``u'_j`` (context of the target); this is LINE's
  second-order proximity.
* ``symmetric``     — E-LINE's additional term: also pull ``u'_i`` towards
  ``u_j`` (Eq. 8), which propagates similarity through multi-hop local
  neighbourhoods.

The engine also supports *frozen* training used during online inference
(Section V-A): only the rows listed in ``trainable`` receive gradient updates,
so a newly added record can be embedded in real time without perturbing the
previously learned embeddings.

The per-batch update itself is delegated to a pluggable kernel
(:mod:`repro.core.embedding.kernels`) selected by ``EmbeddingConfig.kernel``:
``reference`` (default, bit-for-bit the historical implementation) or
``fused`` (2x+ throughput, tolerance-equivalent).  Sampling, the
learning-rate schedule and the RNG stream live here, shared by all kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...obs import runtime as obs
from ..graph import BipartiteGraph
from .base import EmbeddingConfig
from .kernels import make_kernel, sigmoid
from .sampler import EdgeSampler, NegativeSampler, SamplerCache

__all__ = ["ObjectiveTerms", "EdgeSamplingTrainer", "sigmoid",
           "clear_sampler_cache"]

#: Process-wide sampler cache: rebuilding alias tables for an unchanged graph
#: (same ``BipartiteGraph.version``) returns the previously built samplers
#: instead of re-running the O(V+E) construction.  Entries are weakly keyed
#: on the graph, so they die with it.
_SAMPLER_CACHE = SamplerCache()


def clear_sampler_cache() -> None:
    """Drop all cached samplers (tests, and explicit memory reclamation)."""
    _SAMPLER_CACHE.clear()


@dataclass(frozen=True)
class ObjectiveTerms:
    """Which objective terms the trainer optimises."""

    first_order: bool = False
    second_order: bool = True
    symmetric: bool = False

    def __post_init__(self) -> None:
        if not (self.first_order or self.second_order or self.symmetric):
            raise ValueError("at least one objective term must be enabled")


class EdgeSamplingTrainer:
    """Vectorised negative-sampling SGD over sampled edges of a bipartite graph."""

    def __init__(self, graph: BipartiteGraph, config: EmbeddingConfig,
                 terms: ObjectiveTerms,
                 restrict_to_nodes: np.ndarray | None = None,
                 use_sampler_cache: bool = True,
                 edge_scratch=None) -> None:
        """Create a trainer over all edges or, optionally, a node-incident subset.

        Parameters
        ----------
        restrict_to_nodes:
            Optional array of node indices.  When given, only edges incident
            to at least one of these nodes are sampled as positive examples
            (used for the frozen-graph online embedding of new nodes, whose
            objective only contains terms for their own incident edges).
            Negative samples are still drawn from the full graph.
        use_sampler_cache:
            Reuse alias samplers previously built for the same graph at the
            same :attr:`BipartiteGraph.version` (default).  Samplers are
            immutable once built, so a cache hit is byte-identical to a fresh
            construction; disable only to benchmark or test the cold path.
        edge_scratch:
            Optional :class:`~repro.core.graph.EdgeArrayScratch` reused for
            the restricted incident-edge arrays across consecutive trainers
            (the per-predict path stages same-shaped deltas back to back).
            The caller owns the buffers' lifetime; they must not outlive the
            next fill or be shared across threads.
        """
        if graph.num_edges == 0:
            raise ValueError("cannot train embeddings on a graph with no edges")
        self.graph = graph
        self.config = config
        self.terms = terms
        # Overlay views are ephemeral (one per online prediction) and have
        # no mutation-versioned identity of their own; caching samplers
        # against them would only churn the cache.  In "delta" mode their
        # negative sampler is instead *composed* from the base graph's
        # cached sampler plus the staged delta — same distribution, no
        # O(V) rebuild.
        delta_negatives = False
        if getattr(graph, "is_overlay", False):
            use_sampler_cache = False
            delta_negatives = config.sampler_mode == "delta"
        with obs.span("embed.alias_build") as alias_span:
            if restrict_to_nodes is None:
                if use_sampler_cache:
                    self._edge_sampler = _SAMPLER_CACHE.edge_sampler(graph)
                else:
                    self._edge_sampler = EdgeSampler(*graph.edge_arrays())
            else:
                # Built straight from the adjacency of the restricted nodes —
                # O(incident edges), not O(E) — in exactly the order a filtered
                # ``edge_arrays()`` would produce.
                sources, targets, weights = graph.incident_edge_arrays(
                    restrict_to_nodes, scratch=edge_scratch)
                if sources.size == 0:
                    raise ValueError("restrict_to_nodes selects no edges; "
                                     "the nodes are isolated")
                if delta_negatives:
                    # Delta mode: a re-predicted record stages an identical
                    # delta, so the restricted arrays — and the sampler over
                    # them — recur byte for byte; memoise by content.
                    self._edge_sampler = _SAMPLER_CACHE.restricted_edge_sampler(
                        graph.base, sources, targets, weights)
                else:
                    self._edge_sampler = EdgeSampler(sources, targets, weights)
            self._num_sampled_edges = self._edge_sampler.num_edges
            if use_sampler_cache:
                self._negative_sampler = _SAMPLER_CACHE.negative_sampler(graph)
            elif delta_negatives:
                self._negative_sampler = (
                    _SAMPLER_CACHE.delta_negative_sampler(graph))
            else:
                self._negative_sampler = NegativeSampler(graph.degree_array())
            alias_span.set("edges", self._num_sampled_edges)
            alias_span.set("cached", use_sampler_cache)
            alias_span.set("negatives",
                           "delta" if delta_negatives else "full")
        self._rng = np.random.default_rng(config.seed)
        self._kernel = make_kernel(config.kernel)
        # In "delta" mode the RNG stream is not contracted (only the sampled
        # distribution is), so the per-batch draws are served as row slices
        # of one pooled draw per run — the composed mixture's fixed numpy
        # costs (coins, rejection filter, scatter) are paid once instead of
        # once per batch.  "exact" mode keeps strict per-batch draws: its
        # contract is byte-identical RNG consumption.
        self._pooled_draws = delta_negatives
        self._positive_pool: tuple[np.ndarray, np.ndarray] | None = None
        self._negative_pool: np.ndarray | None = None
        self._pool_used = 0

    @property
    def num_sampled_edges(self) -> int:
        """Number of edges the positive-example sampler draws from."""
        return self._num_sampled_edges

    @property
    def kernel_name(self) -> str:
        """Name of the training kernel this trainer dispatches to."""
        return self._kernel.name

    # ------------------------------------------------------------------ setup
    def initial_embeddings(self, warm_start=None) -> tuple[np.ndarray, np.ndarray]:
        """Uniformly initialised ego and context matrices sized to the graph.

        Parameters
        ----------
        warm_start:
            Optional :class:`GraphEmbedding` from a previous fit.  Nodes of
            the current graph whose ``(kind, key)`` also appears in the
            previous embedding start from their previous vectors instead of
            random initialisation; nodes new to the graph keep the random
            draw.  The full random matrices are drawn either way, so the RNG
            stream — and therefore everything sampled after initialisation —
            is identical with and without a warm start.
        """
        capacity = self.graph.index_capacity
        dim = self.config.dimension
        scale = self.config.init_scale / dim
        ego = self._rng.uniform(-scale, scale, size=(capacity, dim))
        context = self._rng.uniform(-scale, scale, size=(capacity, dim))
        if warm_start is not None:
            if warm_start.dimension != dim:
                raise ValueError(
                    f"warm-start embedding has dimension {warm_start.dimension}, "
                    f"expected {dim}")
            # Bulk row copy: resolve the shared (kind, key) pairs into index
            # arrays, then fancy-index both matrices once each.  Same rows
            # as the per-node loop this replaces; the RNG stream is untouched
            # because the full random draw above already happened.
            current_rows: list[int] = []
            previous_rows: list[int] = []
            for current_map, previous_map in (
                    (self.graph.record_index_map(), warm_start.record_index),
                    (self.graph.mac_index_map(), warm_start.mac_index)):
                shared = current_map.keys() & previous_map.keys()
                current_rows.extend(current_map[key] for key in shared)
                previous_rows.extend(previous_map[key] for key in shared)
            if current_rows:
                current_index = np.asarray(current_rows, dtype=np.int64)
                previous_index = np.asarray(previous_rows, dtype=np.int64)
                ego[current_index] = warm_start.ego[previous_index]
                context[current_index] = warm_start.context[previous_index]
        return ego, context

    def total_samples(self) -> int:
        """Total number of edge samples for a full training run."""
        return max(1, int(self.config.samples_per_edge * self._num_sampled_edges))

    # --------------------------------------------------------------- training
    def train(self, ego: np.ndarray, context: np.ndarray,
              trainable: np.ndarray | None = None,
              total_samples: int | None = None) -> list[float]:
        """Run SGD in place on ``ego`` and ``context``; return per-batch losses.

        Parameters
        ----------
        ego, context:
            Embedding matrices of shape ``(index_capacity, dimension)``,
            modified in place.
        trainable:
            Optional boolean mask over node indices.  When given, gradient
            updates are applied only to rows where the mask is ``True``
            (frozen-graph online inference).  When ``None`` every row is
            trainable.
        total_samples:
            Override for the number of edge samples (defaults to
            ``samples_per_edge * num_edges``).
        """
        config = self.config
        if ego.shape != context.shape:
            raise ValueError("ego and context must have the same shape")
        if ego.shape[0] < self.graph.index_capacity:
            raise ValueError("embedding matrices are smaller than the graph")
        if trainable is not None:
            trainable = np.asarray(trainable, dtype=bool)
            if trainable.shape[0] != ego.shape[0]:
                raise ValueError("trainable mask must match embedding rows")

        remaining = total_samples if total_samples is not None else self.total_samples()
        total = remaining
        losses: list[float] = []
        tracer = obs.active_tracer()
        if tracer is None:
            # Disabled-path loop: no clock reads, no extra allocation — the
            # byte-for-byte hot path benchmarks run against.
            while remaining > 0:
                batch = min(config.batch_size, remaining)
                progress = 1.0 - remaining / total
                lr = max(config.min_learning_rate,
                         config.learning_rate * (1.0 - progress))
                loss = self._train_batch(ego, context, batch, lr, trainable)
                losses.append(loss)
                remaining -= batch
            return losses

        # Traced loop: accumulate per-phase time in local floats on the
        # tracer's clock and report two aggregate spans at the end — one
        # tracer call per fit, not one per batch.  Sampling and the kernel
        # consume the RNG identically to the untraced loop, so losses (and
        # the resulting embedding) are bit-identical either way.
        clock = tracer.clock
        sampling_seconds = 0.0
        kernel_seconds = 0.0
        while remaining > 0:
            batch = min(config.batch_size, remaining)
            progress = 1.0 - remaining / total
            lr = max(config.min_learning_rate,
                     config.learning_rate * (1.0 - progress))
            started = clock()
            heads, tails, negatives = self._sample_batch(batch)
            sampled = clock()
            loss = self._kernel_step(ego, context, heads, tails, negatives,
                                     lr, trainable, batch)
            sampling_seconds += sampled - started
            kernel_seconds += clock() - sampled
            losses.append(loss)
            remaining -= batch
        tracer.add_span("embed.sampling", sampling_seconds,
                        {"samples": total})
        tracer.add_span("embed.kernel", kernel_seconds,
                        {"samples": total, "kernel": self._kernel.name})
        elapsed = sampling_seconds + kernel_seconds
        if elapsed > 0.0:
            obs.set_gauge("train_edge_samples_per_s", total / elapsed)
        return losses

    def _train_batch(self, ego: np.ndarray, context: np.ndarray, batch: int,
                     lr: float, trainable: np.ndarray | None) -> float:
        heads, tails, negatives = self._sample_batch(batch)
        return self._kernel_step(ego, context, heads, tails, negatives, lr,
                                 trainable, batch)

    #: Upper bound on pooled-draw rows per refill (memory guard; delta-mode
    #: online runs are ~1e3 examples, far below it).
    _POOL_ROW_CAP = 1 << 16

    def _sample_batch(self, batch: int) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]:
        """Draw one batch of positive edges and their negative samples.

        With pooled draws enabled (delta sampler mode) the batch is a row
        slice of one bulk draw covering the whole run; the slices partition
        the pool, so examples are i.i.d. exactly as if drawn per batch.
        """
        if not self._pooled_draws:
            heads, tails = self._edge_sampler.sample(batch, self._rng)
            negatives = self._negative_sampler.sample(
                batch, self.config.negative_samples, self._rng)
            return heads, tails, negatives
        pool = self._negative_pool
        if pool is None or self._pool_used + batch > pool.shape[0]:
            rows = min(max(batch, self.total_samples()), self._POOL_ROW_CAP)
            self._positive_pool = self._edge_sampler.sample(rows, self._rng)
            self._negative_pool = pool = self._negative_sampler.sample(
                rows, self.config.negative_samples, self._rng)
            self._pool_used = 0
        start = self._pool_used
        self._pool_used = end = start + batch
        heads, tails = self._positive_pool
        return heads[start:end], tails[start:end], pool[start:end]

    def _kernel_step(self, ego: np.ndarray, context: np.ndarray,
                     heads: np.ndarray, tails: np.ndarray,
                     negatives: np.ndarray, lr: float,
                     trainable: np.ndarray | None, batch: int) -> float:
        """Apply one kernel update; returns the mean per-sample loss."""
        loss = self._kernel.train_batch(
            ego, context, heads, tails, negatives, learning_rate=lr,
            terms=self.terms, config=self.config, rng=self._rng,
            trainable=trainable)
        return loss / batch
