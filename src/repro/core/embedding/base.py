"""Common interfaces and result container for graph embedding algorithms."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from ..graph import BipartiteGraph
from .kernels import validate_kernel
from .sampler import validate_sampler_mode

__all__ = ["EmbeddingConfig", "GraphEmbedding", "GraphEmbedder"]


@dataclass(frozen=True)
class EmbeddingConfig:
    """Hyperparameters shared by LINE and E-LINE.

    The defaults mirror the paper's experiment settings (Section VI-A):
    8-dimensional embeddings, learning rate 0.001, dropout 0.1, and five
    negative samples per positive edge.

    Attributes
    ----------
    dimension:
        Length of the ego and context embedding vectors.
    learning_rate:
        Initial SGD learning rate (decays linearly to ``min_learning_rate``).
    min_learning_rate:
        Floor of the linear learning-rate decay.
    negative_samples:
        Number of negative nodes drawn per positive edge (``K`` in Eq. 10).
    samples_per_edge:
        Total number of edge samples drawn during training, expressed as a
        multiple of the number of edges in the graph.
    batch_size:
        Number of edges per SGD mini-batch.
    dropout:
        Probability of zeroing an embedding coordinate in the forward pass of
        a training step (a light regulariser; the paper reports 0.1).
    init_scale:
        Embeddings are initialised uniformly in ``[-init_scale, init_scale]``.
    seed:
        Seed of the training random generator (``None`` for nondeterministic).
    kernel:
        Mini-batch training kernel (:mod:`repro.core.embedding.kernels`):
        ``"reference"`` (default; bit-for-bit the historical update, backing
        every byte-identity guarantee) or ``"fused"`` (2x+ throughput,
        seed-deterministic, tolerance-equivalent to the reference).
    sampler_mode:
        Negative-sampler construction on overlay graphs (the per-prediction
        cold path): ``"exact"`` (default; rebuild the full alias table,
        byte-identical to the historical path) or ``"delta"`` (compose the
        base graph's cached sampler with the overlay's staged delta — the
        same noise distribution exactly, but a different RNG consumption
        order, so predictions are equal in accuracy rather than bytes).
        Ordinary (non-overlay) fits are unaffected by this setting.
    """

    dimension: int = 8
    learning_rate: float = 0.025
    min_learning_rate: float = 1e-4
    negative_samples: int = 5
    samples_per_edge: float = 40.0
    batch_size: int = 512
    dropout: float = 0.1
    init_scale: float = 0.5
    seed: int | None = 0
    kernel: str = "reference"
    sampler_mode: str = "exact"

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.negative_samples < 1:
            raise ValueError("negative_samples must be at least 1")
        if self.samples_per_edge <= 0:
            raise ValueError("samples_per_edge must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        validate_kernel(self.kernel)
        validate_sampler_mode(self.sampler_mode)


@dataclass
class GraphEmbedding:
    """Learned ego/context embeddings, addressable by record id or MAC.

    Attributes
    ----------
    ego:
        Array of shape ``(index_capacity, dimension)``; row ``i`` is the ego
        embedding of the node with dense index ``i``.
    context:
        Context embeddings, same shape as ``ego``.
    record_index:
        Mapping from record id to dense node index.
    mac_index:
        Mapping from MAC address to dense node index.
    config:
        The configuration the embeddings were trained with.
    """

    ego: np.ndarray
    context: np.ndarray
    record_index: dict[str, int]
    mac_index: dict[str, int]
    config: EmbeddingConfig
    training_loss: list[float] = field(default_factory=list)
    _mac_keys: frozenset[str] | None = field(default=None, init=False,
                                             repr=False, compare=False)

    @property
    def dimension(self) -> int:
        return int(self.ego.shape[1])

    def mac_key_set(self) -> frozenset[str]:
        """The embedded MAC vocabulary as a set, built once per embedding.

        The incremental embedder needs "which graph MACs am I missing?" on
        every online prediction; caching the key set here keeps that check a
        C-level set difference instead of a per-call set build.
        """
        if self._mac_keys is None:
            self._mac_keys = frozenset(self.mac_index)
        return self._mac_keys

    def record_vector(self, record_id: str) -> np.ndarray:
        """Ego embedding of one record (the representation used downstream)."""
        try:
            index = self.record_index[record_id]
        except KeyError:
            raise KeyError(f"no embedding for record {record_id!r}") from None
        return self.ego[index]

    def mac_vector(self, mac: str) -> np.ndarray:
        """Ego embedding of one MAC node."""
        try:
            index = self.mac_index[mac]
        except KeyError:
            raise KeyError(f"no embedding for MAC {mac!r}") from None
        return self.ego[index]

    def record_matrix(self, record_ids: Sequence[str]) -> np.ndarray:
        """Stack the ego embeddings of the given records into an array."""
        rows = [self.record_index[r] for r in record_ids]
        return self.ego[rows]

    def has_record(self, record_id: str) -> bool:
        return record_id in self.record_index


class GraphEmbedder(ABC):
    """Base class for algorithms that embed the bipartite graph's nodes.

    ``kernel`` optionally overrides ``config.kernel`` for this embedder
    (convenience for call sites that thread a kernel choice without
    rebuilding the whole config).
    """

    def __init__(self, config: EmbeddingConfig | None = None,
                 kernel: str | None = None) -> None:
        self.config = config or EmbeddingConfig()
        if kernel is not None and kernel != self.config.kernel:
            self.config = replace(self.config, kernel=kernel)

    @abstractmethod
    def fit(self, graph: BipartiteGraph,
            warm_start: GraphEmbedding | None = None) -> GraphEmbedding:
        """Learn embeddings for every node currently in the graph.

        ``warm_start`` optionally carries the embedding of a previous fit;
        nodes surviving from the previous graph are initialised from their
        old vectors (continuous-learning retrains converge from where the
        previous model left off), while nodes new to the graph are
        initialised randomly as usual.
        """

    @staticmethod
    def _index_maps(graph: BipartiteGraph) -> tuple[dict[str, int], dict[str, int]]:
        # The graph caches these per version (overlays compose base + delta);
        # both are treated as read-only downstream, so sharing is safe.
        return graph.record_index_map(), graph.mac_index_map()
