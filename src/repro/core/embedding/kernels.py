"""Pluggable mini-batch training kernels for the edge-sampling SGD engine.

The :class:`~repro.core.embedding.trainer.EdgeSamplingTrainer` owns *what* to
train on (sampled edges, negatives, the learning-rate schedule); a kernel owns
*how* one mini-batch updates the embedding tables.  Two kernels ship:

* ``reference`` — bit-for-bit the original ``_skipgram_step`` implementation:
  one skip-gram step per objective term, each gathering its own rows and
  scattering its gradients through ``np.add.at``.  This is the default, and
  every byte-identity guarantee of the serving and streaming stacks (cache
  hits equal recomputation, checkpoint-resume replays, sharded == one-lock)
  is stated — and test-enforced — against it.  Frozen training (a
  ``trainable`` mask, the online-inference path) computes and scatters only
  the trainable-row subset of the gradients; the subset updates are the
  same values in the same accumulation order as the historical
  full-batch-then-mask scatter (whose masked-out updates were exact zeros),
  so online predictions remain byte-identical while the per-batch cost
  tracks the handful of trainable rows.

* ``fused`` — a throughput-optimised kernel that processes all enabled
  objective terms from one pre-batch snapshot of the tables:

  - the positive target and the ``K`` negative targets are gathered as one
    ``(B, K+1)`` row block, so scores, sigmoids and loss terms for positives
    and negatives fuse into single vectorised passes over preallocated
    buffers;
  - the three ``np.add.at`` scatters per term are replaced by one weighted
    ``np.bincount`` segment-sum per table over flattened ``row * D + d``
    bins, covering the ``B`` source-row gradients and the ``B*(K+1)`` target
    updates together; the ``(B, K, D)`` negative-gradient tensor of the
    reference kernel is never allocated per batch — the
    coefficient-times-source products broadcast straight into a slice of one
    reusable weight buffer;
  - all enabled terms share the sampled edges/negatives and the gathered row
    blocks, and their updates are applied after all terms are evaluated
    (Jacobi-style within a batch, where the reference applies terms
    sequentially, Gauss-Seidel-style).

  The fused kernel consumes the training RNG in exactly the same order as the
  reference (dropout masks are drawn per term, same shapes, same sequence),
  so it is seed-deterministic: the same seed always yields the same
  embeddings.  Its results differ from the reference only through float
  summation order and the within-batch term ordering; the test suite pins it
  to the reference within tolerance on a single batch and to equal end-to-end
  floor accuracy on the synthetic presets.

Kernels are selected through ``EmbeddingConfig.kernel`` and threaded through
``GRAFICS.fit``, the serving retrain path and the streaming retrain executor;
see the README's "Performance & training kernels" section.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar

import numpy as np

__all__ = [
    "KERNEL_NAMES",
    "TrainingKernel",
    "ReferenceKernel",
    "FusedKernel",
    "make_kernel",
    "validate_kernel",
    "sigmoid",
]

#: Clip for the sigmoid argument to avoid overflow in exp().
_SIGMOID_CLIP = 30.0

#: Floor inside the log() of the loss, mirroring the reference step.
_LOG_FLOOR = 1e-12


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically safe logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -_SIGMOID_CLIP, _SIGMOID_CLIP)))


class TrainingKernel(ABC):
    """One mini-batch of negative-sampling SGD over the embedding tables.

    A kernel is stateless with respect to training progress — everything it
    needs arrives per call — but may keep internal scratch buffers, so one
    kernel instance belongs to one trainer (it is not shared across threads).
    """

    name: ClassVar[str]

    @abstractmethod
    def train_batch(self, ego: np.ndarray, context: np.ndarray,
                    heads: np.ndarray, tails: np.ndarray,
                    negatives: np.ndarray, *, learning_rate: float,
                    terms, config, rng: np.random.Generator,
                    trainable: np.ndarray | None = None) -> float:
        """Apply one mini-batch update in place; return the summed loss.

        ``heads``/``tails`` are the sampled directed edges (shape ``(B,)``)
        and ``negatives`` the sampled noise nodes (shape ``(B, K)``).
        ``terms`` selects the objective terms (an ``ObjectiveTerms``), and
        ``trainable`` optionally masks which rows may receive updates.
        """


class ReferenceKernel(TrainingKernel):
    """The original per-term skip-gram step — the byte-identity baseline."""

    name = "reference"

    def train_batch(self, ego, context, heads, tails, negatives, *,
                    learning_rate, terms, config, rng, trainable=None):
        loss = 0.0
        if terms.second_order:
            loss += self._skipgram_step(ego, context, heads, tails, negatives,
                                        learning_rate, trainable, config, rng)
        if terms.symmetric:
            loss += self._skipgram_step(context, ego, heads, tails, negatives,
                                        learning_rate, trainable, config, rng)
        if terms.first_order:
            loss += self._skipgram_step(ego, ego, heads, tails, negatives,
                                        learning_rate, trainable, config, rng)
        return loss

    @staticmethod
    def _skipgram_step(source_table: np.ndarray, target_table: np.ndarray,
                       heads: np.ndarray, tails: np.ndarray,
                       negatives: np.ndarray, lr: float,
                       trainable: np.ndarray | None, config,
                       rng: np.random.Generator) -> float:
        """One negative-sampling step: pull source[heads] towards target[tails].

        ``source_table`` and ``target_table`` select which embedding matrix
        plays the "input" and "output" role; passing (ego, context) gives the
        second-order term, (context, ego) the E-LINE symmetric term and
        (ego, ego) the first-order term.
        """
        source = source_table[heads]                      # (B, D)
        positive_target = target_table[tails]             # (B, D)
        negative_target = target_table[negatives]         # (B, K, D)

        if config.dropout > 0.0:
            keep = 1.0 - config.dropout
            mask = (rng.random(source.shape) < keep) / keep
            source = source * mask

        pos_score = np.einsum("bd,bd->b", source, positive_target)
        neg_score = np.einsum("bd,bkd->bk", source, negative_target)

        pos_sig = sigmoid(pos_score)
        neg_sig = sigmoid(neg_score)

        # Gradients of the negative-sampling loss
        #   -log sigma(pos) - sum_k log sigma(-neg_k)
        pos_coeff = pos_sig - 1.0                          # (B,)
        neg_coeff = neg_sig                                # (B, K)

        if trainable is None:
            grad_source = (pos_coeff[:, None] * positive_target
                           + np.einsum("bk,bkd->bd", neg_coeff,
                                       negative_target))
            grad_positive = pos_coeff[:, None] * source
            grad_negative = neg_coeff[:, :, None] * source[:, None, :]

            np.add.at(source_table, heads, -lr * grad_source)
            np.add.at(target_table, tails, -lr * grad_positive)
            np.add.at(target_table, negatives.ravel(),
                      -lr * grad_negative.reshape(-1,
                                                  grad_negative.shape[-1]))
        else:
            # Frozen training (online inference): gradients land on the few
            # trainable rows only, so compute and scatter just that subset.
            # Values are identical to masking the full-batch gradients and
            # scattering everything — the dropped updates are exact zeros,
            # the kept ones are the same elementwise products in the same
            # accumulation order — but the per-batch cost tracks the number
            # of trainable-row touches instead of B * (K + 1), and the
            # (B, K, D) negative-gradient tensor is never materialised.
            head_rows = np.flatnonzero(trainable[heads])
            if head_rows.size:
                grad_source = (
                    pos_coeff[head_rows][:, None] * positive_target[head_rows]
                    + np.einsum("bk,bkd->bd", neg_coeff[head_rows],
                                negative_target[head_rows]))
                np.add.at(source_table, heads[head_rows], -lr * grad_source)
            tail_rows = np.flatnonzero(trainable[tails])
            if tail_rows.size:
                grad_positive = pos_coeff[tail_rows][:, None] * source[tail_rows]
                np.add.at(target_table, tails[tail_rows], -lr * grad_positive)
            negative_mask = trainable[negatives]
            if negative_mask.any():
                rows, cols = np.nonzero(negative_mask)     # row-major order
                grad_negative = neg_coeff[rows, cols][:, None] * source[rows]
                np.add.at(target_table, negatives[rows, cols],
                          -lr * grad_negative)

        with np.errstate(divide="ignore"):
            pos_loss = -np.log(np.maximum(pos_sig, _LOG_FLOOR)).sum()
            neg_loss = -np.log(np.maximum(1.0 - neg_sig, _LOG_FLOOR)).sum()
        return float(pos_loss + neg_loss)


class FusedKernel(TrainingKernel):
    """Segment-sum scatter kernel sharing samples and gathers across terms."""

    name = "fused"

    #: When the table is more than this many times larger than the per-batch
    #: update count, the scatter compacts the touched rows via ``np.unique``
    #: instead of running a full-table bincount.  The compact branch applies
    #: the dense and outer contributions in two subtractions instead of one,
    #: so the paths agree to the last few ulps (test-enforced), not
    #: bit-for-bit.  The choice depends on the batch size, so a truncated
    #: final batch of a large-table run may take the compact branch while
    #: the full batches took the direct one; for a given (config, graph,
    #: sample budget) the branch sequence is still deterministic.
    _COMPACT_RATIO = 4

    def __init__(self) -> None:
        self._scratch: dict = {}

    # -------------------------------------------------------------- scratch
    def _buffers(self, count: int, batch: int, block: int, dim: int) -> dict:
        """Per-(terms, B, K+1, D) scratch buffers, reused across batches."""
        buffers = self._scratch.get((count, batch, block, dim))
        if buffers is None:
            flat = batch * block
            bins = np.empty(batch * dim + flat * dim, dtype=np.int64)
            buffers = {
                "tgt_idx": np.empty((batch, block), dtype=np.int64),
                "sources": np.empty((count, batch, dim)),
                "targets": np.empty((count, flat, dim)),
                "uniform": np.empty((count, batch, dim)),
                "mask": np.empty((count, batch, dim), dtype=bool),
                "sig": np.empty((count * batch, block)),
                "lbuf": np.empty((count * batch, block)),
                "grads": np.empty((count * batch, dim)),
                # Flattened (row, dim) -> row * dim + d scatter bins; the
                # head bins and the target bins live in one contiguous
                # buffer so the common one-dense-one-outer scatter needs no
                # concatenation at all.
                "bins": bins,
                "head_bins": bins[:batch * dim].reshape(batch, dim),
                "target_bins": bins[batch * dim:].reshape(flat, dim),
                "head_scaled": np.empty(batch, dtype=np.int64),
                "target_scaled": np.empty(flat, dtype=np.int64),
                "dim_range": np.arange(dim, dtype=np.int64),
                "weights": np.empty(batch * dim + flat * dim),
            }
            self._scratch[(count, batch, block, dim)] = buffers
        return buffers

    # ---------------------------------------------------------------- batch
    def train_batch(self, ego, context, heads, tails, negatives, *,
                    learning_rate, terms, config, rng, trainable=None):
        batch, num_negatives = negatives.shape
        dim = ego.shape[1]
        block = num_negatives + 1

        # Same term ordering as the reference kernel (second, symmetric,
        # first) so the dropout-mask RNG stream is consumed identically.
        term_tables = []
        if terms.second_order:
            term_tables.append((ego, context))
        if terms.symmetric:
            term_tables.append((context, ego))
        if terms.first_order:
            term_tables.append((ego, ego))
        count = len(term_tables)
        buffers = self._buffers(count, batch, block, dim)

        # One (B, K+1) index block per batch: column 0 is the positive
        # target, columns 1..K the negatives — one gather, one score einsum
        # and one sigmoid pass cover both roles; stacking the terms on a
        # leading axis turns per-term passes into single calls.
        target_idx = buffers["tgt_idx"]
        target_idx[:, 0] = tails
        target_idx[:, 1:] = negatives
        target_flat = target_idx.ravel()

        sources = buffers["sources"]                   # (T, B, D)
        targets = buffers["targets"]                   # (T, B*(K+1), D)
        for slot, (source_table, target_table) in enumerate(term_tables):
            np.take(source_table, heads, axis=0, out=sources[slot],
                    mode="clip")
            np.take(target_table, target_flat, axis=0, out=targets[slot],
                    mode="clip")
        if config.dropout > 0.0:
            keep = 1.0 - config.dropout
            # One (T, B, D) draw consumes the stream exactly like T
            # consecutive (B, D) draws; `src * mask < keep / keep` and
            # `(src * bool) * (1/keep)` are bit-equal, and the boolean
            # product avoids materialising a float mask.
            rng.random(out=buffers["uniform"])
            np.less(buffers["uniform"], keep, out=buffers["mask"])
            sources *= buffers["mask"]
            sources *= 1.0 / keep

        flat_sources = sources.reshape(count * batch, dim)
        flat_targets = targets.reshape(count * batch, block, dim)
        sig = buffers["sig"]
        np.einsum("bkd,bd->bk", flat_targets, flat_sources, out=sig)
        np.clip(sig, -_SIGMOID_CLIP, _SIGMOID_CLIP, out=sig)
        np.negative(sig, out=sig)
        np.exp(sig, out=sig)
        sig += 1.0
        np.reciprocal(sig, out=sig)

        # Loss: -log(sig) for the positive column, -log(1 - sig) for the
        # negatives, floored like the reference.
        lbuf = buffers["lbuf"]
        np.subtract(1.0, sig, out=lbuf)
        lbuf[:, 0] = sig[:, 0]
        np.maximum(lbuf, _LOG_FLOOR, out=lbuf)
        np.log(lbuf, out=lbuf)
        loss = -float(lbuf.sum())

        # Gradient coefficients reuse the sigmoid buffer in place: sig - 1
        # on the positive column, sig on the negatives.  grad wrt a source
        # row is its coefficient row times its target block.
        sig[:, 0] -= 1.0
        grad_sources = buffers["grads"]
        np.einsum("bk,bkd->bd", sig, flat_targets, out=grad_sources)
        coeff = sig.reshape(count, batch, block)
        grads = grad_sources.reshape(count, batch, dim)
        if trainable is not None:
            grads *= trainable[heads][:, None]
            coeff *= trainable[target_flat].reshape(batch, block)

        # The scatter-bin vector (see _scatter) only depends on the
        # per-table part structure — every dense part scatters to ``heads``
        # and every outer part to ``target_flat`` — so tables with the same
        # structure share one bin build per batch.
        index_cache: dict = {}
        for table in (ego, context):
            dense = [grads[slot] for slot, (source_table, _)
                     in enumerate(term_tables) if source_table is table]
            outer = [(coeff[slot], sources[slot]) for slot, (_, target_table)
                     in enumerate(term_tables) if target_table is table]
            if dense or outer:
                self._scatter(table, dense, outer, heads, target_flat,
                              learning_rate, index_cache, buffers)
        return loss

    # -------------------------------------------------------------- scatter
    def _scatter(self, table, dense, outer, heads, target_flat, lr,
                 index_cache, buffers):
        """One fused segment-sum per table — no (B, K, D) gradient tensor.

        Every update is a (row, dim) -> value triple; flattening the pair to
        ``row * dim + d`` turns the whole scatter (source-row gradients and
        per-negative coefficient-times-source products alike) into a single
        weighted ``np.bincount``.  The weights are written into one
        preallocated buffer — broadcast products for the outer parts land
        directly in their slice, so the per-example gradient block is never
        allocated per batch.
        """
        rows, dim = table.shape
        dense_size = heads.size * dim
        outer_size = target_flat.size * dim
        total_size = len(dense) * dense_size + len(outer) * outer_size
        if rows * dim > self._COMPACT_RATIO * total_size:
            self._scatter_compact(table, dense, outer, heads, target_flat,
                                  lr, buffers)
            return
        if not index_cache:
            # First scatter of this batch: fill the shared bin arrays.
            np.multiply(heads, dim, out=buffers["head_scaled"])
            np.add(buffers["head_scaled"][:, None], buffers["dim_range"],
                   out=buffers["head_bins"])
            np.multiply(target_flat, dim, out=buffers["target_scaled"])
            np.add(buffers["target_scaled"][:, None], buffers["dim_range"],
                   out=buffers["target_bins"])
            index_cache["filled"] = True
        key = (len(dense), len(outer))
        index = index_cache.get(key)
        if index is None:
            if key == (1, 1):
                index = buffers["bins"]
            elif key == (1, 0):
                index = buffers["bins"][:dense_size]
            elif key == (0, 1):
                index = buffers["bins"][dense_size:]
            else:
                index = np.concatenate(
                    [buffers["bins"][:dense_size]] * len(dense)
                    + [buffers["bins"][dense_size:]] * len(outer))
            index_cache[key] = index
        shared = buffers["weights"]
        weights = (shared[:index.size] if index.size <= shared.size
                   else np.empty(index.size))
        offset = 0
        for grad in dense:
            weights[offset:offset + dense_size].reshape(grad.shape)[:] = grad
            offset += dense_size
        for coeff, source in outer:
            block = weights[offset:offset + outer_size]
            np.einsum("bk,bd->bkd", coeff, source,
                      out=block.reshape(coeff.shape + (dim,)))
            offset += outer_size
        totals = np.bincount(index, weights=weights, minlength=rows * dim)
        np.multiply(totals, lr, out=totals)
        table -= totals.reshape(rows, dim)

    def _scatter_compact(self, table, dense, outer, heads, target_flat, lr,
                         buffers):
        """Large sparse tables: scatter the few dense rows directly and
        compact the outer updates to the touched rows before bincounting."""
        for grad in dense:
            np.add.at(table, heads, grad * (-lr))
        if not outer:
            return
        dim = table.shape[1]
        outer_size = target_flat.size * dim
        unique, inverse = np.unique(target_flat, return_inverse=True)
        compact = (inverse[:, None] * dim
                   + buffers["dim_range"]).ravel()
        weights = np.empty(len(outer) * outer_size)
        offset = 0
        for coeff, source in outer:
            block = weights[offset:offset + outer_size]
            np.einsum("bk,bd->bkd", coeff, source,
                      out=block.reshape(coeff.shape + (dim,)))
            offset += outer_size
        if len(outer) > 1:
            compact = np.tile(compact, len(outer))
        totals = np.bincount(compact, weights=weights,
                             minlength=unique.size * dim)
        table[unique] -= lr * totals.reshape(unique.size, dim)


_KERNELS: dict[str, type[TrainingKernel]] = {
    ReferenceKernel.name: ReferenceKernel,
    FusedKernel.name: FusedKernel,
}

#: Names accepted by ``EmbeddingConfig.kernel``.
KERNEL_NAMES = tuple(sorted(_KERNELS))


def validate_kernel(name: str) -> str:
    """Check a kernel name and return it (shared by every config entry point)."""
    if name not in _KERNELS:
        known = ", ".join(KERNEL_NAMES)
        raise ValueError(f"unknown training kernel {name!r}; known: {known}")
    return name


def make_kernel(name: str) -> TrainingKernel:
    """Instantiate a training kernel by name (one instance per trainer)."""
    return _KERNELS[validate_kernel(name)]()
