"""LINE embeddings of the bipartite graph (Tang et al., WWW 2015).

Included primarily as the baseline that E-LINE improves on (paper Fig. 13 and
the Section VI-C ablation on proximity orders).  Three variants are exposed:

* ``order="second"`` — second-order proximity only (the variant the paper
  reports for GRAFICS-with-LINE, since first-order proximity is meaningless
  on a bipartite graph where edges only connect nodes of different types);
* ``order="first"``  — first-order proximity only;
* ``order="combined"`` — both terms jointly (the paper trains them jointly in
  its comparison rather than concatenating, which is what we do here too).
"""

from __future__ import annotations

from ..graph import BipartiteGraph
from .base import EmbeddingConfig, GraphEmbedder, GraphEmbedding
from .trainer import EdgeSamplingTrainer, ObjectiveTerms

__all__ = ["LINEEmbedder"]

_ORDERS = {
    "first": ObjectiveTerms(first_order=True, second_order=False),
    "second": ObjectiveTerms(first_order=False, second_order=True),
    "combined": ObjectiveTerms(first_order=True, second_order=True),
}


class LINEEmbedder(GraphEmbedder):
    """LINE graph embedding with selectable proximity order."""

    def __init__(self, config: EmbeddingConfig | None = None,
                 order: str = "second", kernel: str | None = None) -> None:
        super().__init__(config, kernel=kernel)
        if order not in _ORDERS:
            known = ", ".join(sorted(_ORDERS))
            raise ValueError(f"unknown LINE order {order!r}; known: {known}")
        self.order = order

    def fit(self, graph: BipartiteGraph,
            warm_start: GraphEmbedding | None = None) -> GraphEmbedding:
        """Learn LINE embeddings for every node of ``graph``."""
        trainer = EdgeSamplingTrainer(graph, self.config, _ORDERS[self.order])
        ego, context = trainer.initial_embeddings(warm_start=warm_start)
        losses = trainer.train(ego, context)
        record_index, mac_index = self._index_maps(graph)
        return GraphEmbedding(ego=ego, context=context,
                              record_index=record_index, mac_index=mac_index,
                              config=self.config, training_loss=losses)
