"""Edge-weight functions for the bipartite graph (paper Section IV-A, Eq. 1–2).

The paper attaches weight ``c_mv = f(RSS_mv)`` to the edge between MAC ``m``
and record ``v``.  The recommended weight function is an affine offset

    f(RSS) = RSS + alpha,   alpha > max |RSS|

(the paper uses ``alpha = 120``), which keeps every weight strictly positive
while preserving the *differences* between RSS values.  The paper's Section
VI-D compares this against a dBm-to-milliwatt conversion

    g(RSS) = 10 ** (RSS / 10)

and shows that the offset function performs substantially better because the
power conversion squashes all typical indoor RSS values (-40..-95 dBm) into a
nearly uniform tiny range.  Both functions are provided here so that the
Fig. 16 benchmark can reproduce the comparison.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "WeightFunction",
    "OffsetWeight",
    "PowerWeight",
    "ClippedOffsetWeight",
    "get_weight_function",
]

#: Default offset used by the paper: f(RSS) = RSS + 120.
DEFAULT_OFFSET = 120.0


class WeightFunction(ABC):
    """Maps an RSS value in dBm to a strictly positive edge weight."""

    @abstractmethod
    def __call__(self, rss: float) -> float:
        """Return the edge weight for one RSS reading."""

    def validate(self, rss: float) -> float:
        """Apply the function and assert positivity (graph embedding requires it)."""
        weight = self(rss)
        if weight <= 0:
            raise ValueError(
                f"{type(self).__name__} produced non-positive weight {weight!r} "
                f"for RSS {rss!r}; edge weights must be strictly positive"
            )
        return weight


@dataclass(frozen=True)
class OffsetWeight(WeightFunction):
    """The paper's recommended weight function ``f(RSS) = RSS + offset``.

    ``offset`` must exceed the magnitude of the most negative RSS value that
    will ever be observed; the paper (and this implementation) defaults to 120
    which is below the noise floor of commodity WiFi radios.
    """

    offset: float = DEFAULT_OFFSET

    def __call__(self, rss: float) -> float:
        return float(rss) + self.offset


@dataclass(frozen=True)
class PowerWeight(WeightFunction):
    """The alternative weight function ``g(RSS) = 10 ** (RSS / 10)``.

    Converts dBm to milliwatts.  Included to reproduce the paper's Fig. 16
    ablation, which shows it performs poorly because typical indoor RSS values
    all map to vanishingly small, near-identical weights.
    """

    scale: float = 1.0

    def __call__(self, rss: float) -> float:
        return self.scale * 10.0 ** (float(rss) / 10.0)


@dataclass(frozen=True)
class ClippedOffsetWeight(WeightFunction):
    """Offset weight with a floor, robust to RSS values below ``-offset``.

    Crowdsourced data occasionally contains bogus readings (e.g. -127 dBm
    sentinel values from some chipsets).  This variant clips such readings to
    ``min_weight`` instead of producing a non-positive weight.
    """

    offset: float = DEFAULT_OFFSET
    min_weight: float = 1.0

    def __call__(self, rss: float) -> float:
        return max(float(rss) + self.offset, self.min_weight)


_REGISTRY = {
    "offset": OffsetWeight,
    "power": PowerWeight,
    "clipped-offset": ClippedOffsetWeight,
}


def get_weight_function(name: str, **kwargs) -> WeightFunction:
    """Look up a weight function by name (``offset``, ``power``, ``clipped-offset``).

    Extra keyword arguments are forwarded to the constructor, e.g.
    ``get_weight_function("offset", offset=110.0)``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown weight function {name!r}; known: {known}") from None
    return factory(**kwargs)
