"""GRAFICS core: bipartite graph, E-LINE embeddings, clustering and inference."""

from .clustering import ClusterModel, ClusteringResult, ProximityClustering
from .embedding import ELINEEmbedder, EmbeddingConfig, GraphEmbedding, LINEEmbedder
from .graph import BipartiteGraph, Edge, Node, NodeKind, build_graph
from .inference import FloorPrediction, OnlineInferenceEngine, UnknownEnvironmentError
from .overlay import GraphOverlay, StaleOverlayError
from .persistence import (
    load_model,
    load_registry,
    load_stream_state,
    save_model,
    save_registry,
    save_stream_state,
)
from .pipeline import GRAFICS, GraficsConfig
from .registry import BuildingPrediction, MultiBuildingFloorService
from .types import FingerprintDataset, SignalRecord, records_to_matrix
from .weighting import (
    ClippedOffsetWeight,
    OffsetWeight,
    PowerWeight,
    WeightFunction,
    get_weight_function,
)

__all__ = [
    "GRAFICS",
    "GraficsConfig",
    "save_model",
    "load_model",
    "save_registry",
    "save_stream_state",
    "load_stream_state",
    "load_registry",
    "MultiBuildingFloorService",
    "BuildingPrediction",
    "BipartiteGraph",
    "build_graph",
    "GraphOverlay",
    "StaleOverlayError",
    "Node",
    "NodeKind",
    "Edge",
    "SignalRecord",
    "FingerprintDataset",
    "records_to_matrix",
    "EmbeddingConfig",
    "GraphEmbedding",
    "ELINEEmbedder",
    "LINEEmbedder",
    "ProximityClustering",
    "ClusteringResult",
    "ClusterModel",
    "OnlineInferenceEngine",
    "FloorPrediction",
    "UnknownEnvironmentError",
    "WeightFunction",
    "OffsetWeight",
    "PowerWeight",
    "ClippedOffsetWeight",
    "get_weight_function",
]
