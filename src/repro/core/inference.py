"""Online inference for GRAFICS (paper Section V).

Given a trained graph, embedding and cluster model, the
:class:`OnlineInferenceEngine` handles newly arriving RF samples:

1. the sample is staged as a new record node on a read-only
   :class:`~repro.core.overlay.GraphOverlay` of the training graph (new MAC
   nodes are staged on demand) — the shared graph itself is not touched;
2. its ego/context embeddings are trained against the overlay while every
   previously learned embedding stays frozen
   (:meth:`ELINEEmbedder.embed_new_nodes`);
3. its floor is predicted as the label of the cluster whose centroid is
   nearest in the ego embedding space.

Inference is therefore *mutation-free*: a ``persist=False`` prediction
leaves the graph's version counter (and every cache keyed on it) untouched,
and concurrent predictions against one model need no mutual exclusion.
``persist=True`` commits the overlay's staged delta onto the graph, which
reproduces exactly the state the historical mutate-in-place path built.
Either way the predictions are byte-identical to that historical path
(test-enforced): every composed overlay view matches the mutated graph's
bit for bit, so the embedding RNG is consumed in the same order.

A sample whose MAC addresses are *all* unseen carries no information that
connects it to the building; the paper discards such samples as likely
collected outside the building, and this engine raises
:class:`UnknownEnvironmentError` for them.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from ..obs import runtime as obs
from .clustering.model import ClusterModel
from .embedding.base import GraphEmbedding
from .embedding.eline import ELINEEmbedder
from .graph import BipartiteGraph, EdgeArrayScratch, NodeKind
from .overlay import GraphOverlay
from .types import SignalRecord

__all__ = ["UnknownEnvironmentError", "FloorPrediction", "OnlineInferenceEngine"]


class UnknownEnvironmentError(ValueError):
    """Raised when an online sample shares no MAC with the training graph."""


@dataclass(frozen=True)
class FloorPrediction:
    """The outcome of one online inference."""

    record_id: str
    floor: int
    distance: float
    embedding: np.ndarray


class OnlineInferenceEngine:
    """Embeds and classifies new RF samples against a trained GRAFICS model.

    Parameters
    ----------
    graph:
        The training bipartite graph.  The engine never mutates it except
        to commit the staged delta of a ``persist=True`` prediction;
        ``persist=False`` traffic is read-only (overlay-based), so the
        graph's version counter — and every sampler/vocabulary cache keyed
        on it — survives arbitrarily many predictions.
    embedding:
        The embedding trained offline over ``graph``.
    cluster_model:
        The nearest-centroid floor classifier from the offline clustering.
    embedder:
        The embedder used for the incremental (frozen) embedding step.
    sampler_mode:
        Optional override of the embedder config's negative-sampler mode for
        the per-prediction cold path (``"exact"`` or ``"delta"``, see
        :class:`~repro.core.embedding.base.EmbeddingConfig`).  ``None``
        keeps whatever the embedder config says.
    """

    def __init__(self, graph: BipartiteGraph, embedding: GraphEmbedding,
                 cluster_model: ClusterModel,
                 embedder: ELINEEmbedder | None = None,
                 sampler_mode: str | None = None) -> None:
        self.graph = graph
        self.embedding = embedding
        self.cluster_model = cluster_model
        self.embedder = embedder or ELINEEmbedder(embedding.config)
        if (sampler_mode is not None
                and sampler_mode != self.embedder.config.sampler_mode):
            self.embedder = type(self.embedder)(
                replace(self.embedder.config, sampler_mode=sampler_mode))
        # Per-thread scratch buffers for the restricted incident-edge arrays
        # (consecutive cold predictions usually stage same-shaped deltas).
        # Thread-local: the buffers are reused in place, so they must never
        # be visible to a concurrent prediction.
        self._scratch = threading.local()

    # -------------------------------------------------------------- inference
    def predict(self, record: SignalRecord, persist: bool = False) -> FloorPrediction:
        """Predict the floor of one new RF sample.

        Parameters
        ----------
        record:
            The online measurement.  Its id must not collide with a record
            already in the graph.
        persist:
            When ``True`` the record (and its embedding) stay in the model so
            that subsequent samples can benefit from the added connectivity;
            when ``False`` (default) the graph is restored afterwards.
        """
        return self._predict_group([record], persist=persist)[0]

    def predict_batch(self, records: Sequence[SignalRecord],
                      persist: bool = False,
                      independent: bool = False) -> list[FloorPrediction]:
        """Predict the floors of a batch of new RF samples.

        Parameters
        ----------
        records:
            The online measurements.
        persist:
            Keep the records (and their embeddings) in the model afterwards.
        independent:
            When ``False`` (default) the whole batch is embedded jointly in
            one SGD run over the union of the new nodes' edges — the
            transductive fast path used by the experiment harness, where
            batch members reinforce each other through shared MACs.  When
            ``True`` every record is embedded on its own against the frozen
            model, exactly as :meth:`predict` would: the result for a record
            does not depend on which other records happen to share its
            batch, and ``predict_batch(rs, independent=True)`` is identical
            to ``[predict(r) for r in rs]``.  The serving layer uses this
            mode so that micro-batching and caching never change what a
            request would have received on its own.
        """
        records = list(records)
        if not records:
            return []
        if independent:
            return [self._predict_group([record], persist=persist)[0]
                    for record in records]
        return self._predict_group(records, persist=persist)

    def _predict_group(self, records: Sequence[SignalRecord],
                       persist: bool = False) -> list[FloorPrediction]:
        """Embed ``records`` jointly against the frozen model and classify them.

        The records are staged on a :class:`GraphOverlay`; the shared graph
        is only written when ``persist=True`` commits the staged delta.
        """
        with obs.span("online.predict") as predict_span:
            predict_span.set("records", len(records))
            with obs.span("online.stage"):
                known_macs = self.graph.mac_vocabulary()
                for record in records:
                    if self.graph.has_node(NodeKind.RECORD, record.record_id):
                        raise ValueError(f"record {record.record_id!r} is "
                                         "already part of the model")
                    if known_macs.isdisjoint(record.rss):
                        raise UnknownEnvironmentError(
                            f"record {record.record_id!r} contains only MAC "
                            "addresses never observed in the building; it was "
                            "likely collected outside the building")

                overlay = GraphOverlay(self.graph)
                for record in records:
                    overlay.add_record(record)

            new_ids = [record.record_id for record in records]
            enlarged = None
            if persist:
                enlarged = self.embedder.embed_new_nodes(
                    overlay, self.embedding, new_ids)
                ego = enlarged.ego
            else:
                # The non-persisting path reads the new rows by overlay
                # index, so the full GraphEmbedding (composed index maps,
                # loss history) is never assembled.
                scratch = getattr(self._scratch, "edges", None)
                if scratch is None:
                    scratch = self._scratch.edges = EdgeArrayScratch()
                ego, _, _ = self.embedder.embed_new_nodes_arrays(
                    overlay, self.embedding, new_ids, edge_scratch=scratch)

            with obs.span("online.classify"):
                predictions = []
                for record in records:
                    vector = ego[overlay.get_node(NodeKind.RECORD,
                                                  record.record_id).index]
                    floor, distance = \
                        self.cluster_model.predict_with_distance(vector)
                    predictions.append(FloorPrediction(
                        record_id=record.record_id, floor=floor,
                        distance=distance, embedding=vector.copy()))

            if persist:
                overlay.commit()
                self.embedding = enlarged
            return predictions
