"""Saving and loading trained GRAFICS models.

A deployed floor-identification service trains offline (possibly on a beefy
machine) and serves online inference elsewhere, so the trained state must be
serialisable.  A GRAFICS model is fully described by:

* the bipartite graph's record/MAC vocabulary and weighted edges (needed to
  embed new samples against the frozen embeddings),
* the ego/context embedding matrices,
* the trained clusters (members, floor labels, centroids),
* the configuration (embedding hyperparameters and weight function).

The on-disk format is a single ``.npz`` file holding the numeric arrays plus
a JSON blob for the structured metadata.  Only the weight functions shipped
with the library can be restored by name; custom weight functions require the
caller to rebuild the configuration manually after loading.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from .clustering.hierarchical import ClusteringResult
from .clustering.model import ClusterModel, FloorCluster
from .embedding.base import EmbeddingConfig, GraphEmbedding
from .graph import BipartiteGraph, NodeKind
from .pipeline import GRAFICS, GraficsConfig
from .weighting import ClippedOffsetWeight, OffsetWeight, PowerWeight, WeightFunction

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1


def _weight_function_to_dict(weight_function: WeightFunction) -> dict:
    if isinstance(weight_function, ClippedOffsetWeight):
        return {"name": "clipped-offset", "offset": weight_function.offset,
                "min_weight": weight_function.min_weight}
    if isinstance(weight_function, OffsetWeight):
        return {"name": "offset", "offset": weight_function.offset}
    if isinstance(weight_function, PowerWeight):
        return {"name": "power", "scale": weight_function.scale}
    raise ValueError(
        f"cannot serialise custom weight function {type(weight_function).__name__}; "
        "use one of the built-in weight functions or rebuild the config manually")


def _weight_function_from_dict(payload: dict) -> WeightFunction:
    name = payload["name"]
    if name == "offset":
        return OffsetWeight(offset=payload["offset"])
    if name == "clipped-offset":
        return ClippedOffsetWeight(offset=payload["offset"],
                                   min_weight=payload["min_weight"])
    if name == "power":
        return PowerWeight(scale=payload["scale"])
    raise ValueError(f"unknown weight function {name!r} in saved model")


def save_model(model: GRAFICS, path: str | Path) -> None:
    """Serialise a fitted GRAFICS model to ``path`` (a ``.npz`` file)."""
    if not model.is_fitted:
        raise ValueError("cannot save an unfitted GRAFICS model")
    path = Path(path)
    graph = model.graph

    edges = [[graph.node_at(edge.mac_index).key,
              graph.node_at(edge.record_index).key,
              edge.weight]
             for edge in graph.edges()]

    clustering = model.clustering
    metadata = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "embedding_dimension": model.config.embedding_dimension,
            "embedder": model.config.embedder,
            "allow_unreachable_clusters": model.config.allow_unreachable_clusters,
            "weight_function": _weight_function_to_dict(model.config.weight_function),
            "embedding": asdict(model.config.resolved_embedding_config()),
        },
        "record_index": model.embedding.record_index,
        "mac_index": model.embedding.mac_index,
        "edges": edges,
        "clusters": [
            {
                "cluster_id": cluster.cluster_id,
                "floor": cluster.floor,
                "member_record_ids": list(cluster.member_record_ids),
            }
            for cluster in model.cluster_model.clusters
        ],
        "cluster_assignments": clustering.assignments if clustering else {},
        "cluster_labels": ({str(k): v for k, v in clustering.cluster_labels.items()}
                           if clustering else {}),
    }

    centroids = np.vstack([c.centroid for c in model.cluster_model.clusters])
    np.savez_compressed(
        path,
        ego=model.embedding.ego,
        context=model.embedding.context,
        centroids=centroids,
        metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"),
                               dtype=np.uint8),
    )


def _rebuild_graph(edges: list, weight_function: WeightFunction) -> BipartiteGraph:
    """Reconstruct the bipartite graph with the stored edge weights."""
    graph = BipartiteGraph(weight_function=weight_function)
    per_record: dict[str, dict[str, float]] = {}
    for mac, record_id, weight in edges:
        per_record.setdefault(record_id, {})[mac] = float(weight)
    for record_id, weighted_macs in per_record.items():
        record_node = graph._add_node(NodeKind.RECORD, record_id)  # noqa: SLF001
        for mac, weight in weighted_macs.items():
            mac_node = graph.add_mac(mac)
            graph._set_edge(mac_node.index, record_node.index, weight)  # noqa: SLF001
    return graph


def load_model(path: str | Path) -> GRAFICS:
    """Restore a GRAFICS model saved with :func:`save_model`.

    The returned model supports online inference (``predict`` /
    ``predict_batch``) exactly like the freshly trained one.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        ego = archive["ego"]
        context = archive["context"]
        centroids = archive["centroids"]
        metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))

    if metadata.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format version "
                         f"{metadata.get('format_version')!r}")

    config_blob = metadata["config"]
    embedding_config = EmbeddingConfig(**config_blob["embedding"])
    config = GraficsConfig(
        embedding_dimension=config_blob["embedding_dimension"],
        embedder=config_blob["embedder"],
        allow_unreachable_clusters=config_blob["allow_unreachable_clusters"],
        weight_function=_weight_function_from_dict(config_blob["weight_function"]),
        embedding=embedding_config,
    )

    graph = _rebuild_graph(metadata["edges"], config.weight_function)

    # Dense indices assigned during the rebuild generally differ from the
    # original ones, so embedding rows are re-ordered to the new indices.
    old_record_index = metadata["record_index"]
    old_mac_index = metadata["mac_index"]
    dim = ego.shape[1]
    new_ego = np.zeros((graph.index_capacity, dim))
    new_context = np.zeros((graph.index_capacity, dim))
    record_index: dict[str, int] = {}
    mac_index: dict[str, int] = {}
    for node in graph.nodes():
        if node.kind is NodeKind.RECORD:
            old_row = old_record_index[node.key]
            record_index[node.key] = node.index
        else:
            old_row = old_mac_index[node.key]
            mac_index[node.key] = node.index
        new_ego[node.index] = ego[old_row]
        new_context[node.index] = context[old_row]

    embedding = GraphEmbedding(ego=new_ego, context=new_context,
                               record_index=record_index, mac_index=mac_index,
                               config=embedding_config)

    clusters = [FloorCluster(cluster_id=int(blob["cluster_id"]),
                             floor=int(blob["floor"]),
                             centroid=centroids[i],
                             member_record_ids=tuple(blob["member_record_ids"]))
                for i, blob in enumerate(metadata["clusters"])]
    cluster_model = ClusterModel(clusters)

    clustering = ClusteringResult(
        assignments={k: int(v) for k, v in metadata["cluster_assignments"].items()},
        cluster_labels={int(k): int(v)
                        for k, v in metadata["cluster_labels"].items()},
        cluster_members={c.cluster_id: list(c.member_record_ids)
                         for c in clusters},
        record_ids=list(metadata["cluster_assignments"].keys()),
    )

    model = GRAFICS(config)
    model.graph = graph
    model.embedding = embedding
    model.clustering = clustering
    model.cluster_model = cluster_model
    return model
