"""Saving and loading trained GRAFICS models.

A deployed floor-identification service trains offline (possibly on a beefy
machine) and serves online inference elsewhere, so the trained state must be
serialisable.  A GRAFICS model is fully described by:

* the bipartite graph's record/MAC vocabulary and weighted edges (needed to
  embed new samples against the frozen embeddings),
* the ego/context embedding matrices,
* the trained clusters (members, floor labels, centroids),
* the configuration (embedding hyperparameters and weight function).

The on-disk format is a single ``.npz`` file holding the numeric arrays plus
a JSON blob for the structured metadata.  Only the weight functions shipped
with the library can be restored by name; custom weight functions require the
caller to rebuild the configuration manually after loading.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path

import numpy as np

from .clustering.hierarchical import ClusteringResult
from .clustering.model import ClusterModel, FloorCluster
from .embedding.base import EmbeddingConfig, GraphEmbedding
from .graph import BipartiteGraph, NodeKind
from .pipeline import GRAFICS, GraficsConfig
from .registry import MultiBuildingFloorService
from .weighting import ClippedOffsetWeight, OffsetWeight, PowerWeight, WeightFunction

__all__ = ["save_model", "load_model", "save_registry", "load_registry"]

_FORMAT_VERSION = 1
_REGISTRY_FORMAT_VERSION = 1
_REGISTRY_MANIFEST = "manifest.json"


def _weight_function_to_dict(weight_function: WeightFunction) -> dict:
    if isinstance(weight_function, ClippedOffsetWeight):
        return {"name": "clipped-offset", "offset": weight_function.offset,
                "min_weight": weight_function.min_weight}
    if isinstance(weight_function, OffsetWeight):
        return {"name": "offset", "offset": weight_function.offset}
    if isinstance(weight_function, PowerWeight):
        return {"name": "power", "scale": weight_function.scale}
    raise ValueError(
        f"cannot serialise custom weight function {type(weight_function).__name__}; "
        "use one of the built-in weight functions or rebuild the config manually")


def _weight_function_from_dict(payload: dict) -> WeightFunction:
    name = payload["name"]
    if name == "offset":
        return OffsetWeight(offset=payload["offset"])
    if name == "clipped-offset":
        return ClippedOffsetWeight(offset=payload["offset"],
                                   min_weight=payload["min_weight"])
    if name == "power":
        return PowerWeight(scale=payload["scale"])
    raise ValueError(f"unknown weight function {name!r} in saved model")


def save_model(model: GRAFICS, path: str | Path) -> None:
    """Serialise a fitted GRAFICS model to ``path`` (a ``.npz`` file)."""
    if not model.is_fitted:
        raise ValueError("cannot save an unfitted GRAFICS model")
    path = Path(path)
    graph = model.graph

    edges = [[graph.node_at(edge.mac_index).key,
              graph.node_at(edge.record_index).key,
              edge.weight]
             for edge in graph.edges()]

    clustering = model.clustering
    metadata = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "embedding_dimension": model.config.embedding_dimension,
            "embedder": model.config.embedder,
            "allow_unreachable_clusters": model.config.allow_unreachable_clusters,
            "weight_function": _weight_function_to_dict(model.config.weight_function),
            "embedding": asdict(model.config.resolved_embedding_config()),
        },
        "record_index": model.embedding.record_index,
        "mac_index": model.embedding.mac_index,
        "edges": edges,
        "clusters": [
            {
                "cluster_id": cluster.cluster_id,
                "floor": cluster.floor,
                "member_record_ids": list(cluster.member_record_ids),
            }
            for cluster in model.cluster_model.clusters
        ],
        "cluster_assignments": clustering.assignments if clustering else {},
        "cluster_labels": ({str(k): v for k, v in clustering.cluster_labels.items()}
                           if clustering else {}),
    }

    centroids = np.vstack([c.centroid for c in model.cluster_model.clusters])
    np.savez_compressed(
        path,
        ego=model.embedding.ego,
        context=model.embedding.context,
        centroids=centroids,
        metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"),
                               dtype=np.uint8),
    )


def _rebuild_graph(edges: list, weight_function: WeightFunction) -> BipartiteGraph:
    """Reconstruct the bipartite graph with the stored edge weights."""
    graph = BipartiteGraph(weight_function=weight_function)
    per_record: dict[str, dict[str, float]] = {}
    for mac, record_id, weight in edges:
        per_record.setdefault(record_id, {})[mac] = float(weight)
    for record_id, weighted_macs in per_record.items():
        record_node = graph._add_node(NodeKind.RECORD, record_id)  # noqa: SLF001
        for mac, weight in weighted_macs.items():
            mac_node = graph.add_mac(mac)
            graph._set_edge(mac_node.index, record_node.index, weight)  # noqa: SLF001
    return graph


def load_model(path: str | Path) -> GRAFICS:
    """Restore a GRAFICS model saved with :func:`save_model`.

    The returned model supports online inference (``predict`` /
    ``predict_batch``) exactly like the freshly trained one.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        ego = archive["ego"]
        context = archive["context"]
        centroids = archive["centroids"]
        metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))

    if metadata.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format version "
                         f"{metadata.get('format_version')!r}")

    config_blob = metadata["config"]
    embedding_config = EmbeddingConfig(**config_blob["embedding"])
    config = GraficsConfig(
        embedding_dimension=config_blob["embedding_dimension"],
        embedder=config_blob["embedder"],
        allow_unreachable_clusters=config_blob["allow_unreachable_clusters"],
        weight_function=_weight_function_from_dict(config_blob["weight_function"]),
        embedding=embedding_config,
    )

    graph = _rebuild_graph(metadata["edges"], config.weight_function)

    # Dense indices assigned during the rebuild generally differ from the
    # original ones, so embedding rows are re-ordered to the new indices.
    old_record_index = metadata["record_index"]
    old_mac_index = metadata["mac_index"]
    dim = ego.shape[1]
    new_ego = np.zeros((graph.index_capacity, dim))
    new_context = np.zeros((graph.index_capacity, dim))
    record_index: dict[str, int] = {}
    mac_index: dict[str, int] = {}
    for node in graph.nodes():
        if node.kind is NodeKind.RECORD:
            old_row = old_record_index[node.key]
            record_index[node.key] = node.index
        else:
            old_row = old_mac_index[node.key]
            mac_index[node.key] = node.index
        new_ego[node.index] = ego[old_row]
        new_context[node.index] = context[old_row]

    embedding = GraphEmbedding(ego=new_ego, context=new_context,
                               record_index=record_index, mac_index=mac_index,
                               config=embedding_config)

    clusters = [FloorCluster(cluster_id=int(blob["cluster_id"]),
                             floor=int(blob["floor"]),
                             centroid=centroids[i],
                             member_record_ids=tuple(blob["member_record_ids"]))
                for i, blob in enumerate(metadata["clusters"])]
    cluster_model = ClusterModel(clusters)

    clustering = ClusteringResult(
        assignments={k: int(v) for k, v in metadata["cluster_assignments"].items()},
        cluster_labels={int(k): int(v)
                        for k, v in metadata["cluster_labels"].items()},
        cluster_members={c.cluster_id: list(c.member_record_ids)
                         for c in clusters},
        record_ids=list(metadata["cluster_assignments"].keys()),
    )

    model = GRAFICS(config)
    model.graph = graph
    model.embedding = embedding
    model.clustering = clustering
    model.cluster_model = cluster_model
    return model


# --------------------------------------------------------------- registries
def _registry_model_filename(building_id: str) -> str:
    """Stable, filesystem-safe filename for one building's model.

    Derived from the building id (not from its position in the registry) so
    that re-saving a reordered or partially retrained registry only ever
    overwrites a building's file with a newer model of the *same* building.
    A crash between the per-building writes and the manifest swap then
    leaves the old manifest pointing at the right buildings — possibly a
    fresher model for some, never another building's model.
    """
    digest = hashlib.sha1(building_id.encode("utf-8")).hexdigest()[:16]
    return f"building-{digest}.npz"


def _atomic_save_model(model: GRAFICS, path: Path) -> None:
    """Write a model file via a same-directory temp file and atomic rename."""
    # The suffix must stay ".npz" or np.savez would append one and the
    # rename would move the wrong (empty) file.
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp.npz")
    os.close(fd)
    try:
        save_model(model, tmp_name)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


def save_registry(service: MultiBuildingFloorService, directory: str | Path) -> None:
    """Serialise a whole multi-building registry to ``directory``.

    Each building's model becomes one ``.npz`` file (via :func:`save_model`)
    and a ``manifest.json`` records building ids, their attribution
    vocabularies and the registration order — the order is part of the
    attribution semantics (it breaks overlap ties), so it must survive the
    round trip.  Every file is written to a temporary name and atomically
    renamed, model files are named after the building id rather than its
    position, and the manifest is swapped in last: a crash mid-save leaves
    the directory loading either the old registry or the new one per
    building, never a model filed under another building's id.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    buildings = []
    for building_id, vocabulary in service.vocabularies.items():
        filename = _registry_model_filename(building_id)
        _atomic_save_model(service.model_for(building_id),
                           directory / filename)
        buildings.append({
            "building_id": building_id,
            "file": filename,
            "vocabulary": sorted(vocabulary),
        })
    manifest = {
        "format_version": _REGISTRY_FORMAT_VERSION,
        "min_overlap": service.min_overlap,
        "buildings": buildings,
    }
    tmp_path = directory / (_REGISTRY_MANIFEST + ".tmp")
    tmp_path.write_text(json.dumps(manifest, indent=2))
    tmp_path.replace(directory / _REGISTRY_MANIFEST)


def load_registry(directory: str | Path,
                  config: GraficsConfig | None = None) -> MultiBuildingFloorService:
    """Restore a registry saved with :func:`save_registry`.

    ``config`` only affects buildings trained *after* loading; the restored
    per-building models keep the configurations they were trained with.
    """
    directory = Path(directory)
    manifest_path = directory / _REGISTRY_MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(
            f"{directory} does not contain a registry manifest "
            f"({_REGISTRY_MANIFEST})")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != _REGISTRY_FORMAT_VERSION:
        raise ValueError(f"unsupported registry format version "
                         f"{manifest.get('format_version')!r}")

    service = MultiBuildingFloorService(config,
                                        min_overlap=manifest["min_overlap"])
    for blob in manifest["buildings"]:
        model = load_model(directory / blob["file"])
        service.install_model(blob["building_id"], model,
                              vocabulary=blob["vocabulary"])
    return service
