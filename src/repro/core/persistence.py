"""Saving and loading trained GRAFICS models.

A deployed floor-identification service trains offline (possibly on a beefy
machine) and serves online inference elsewhere, so the trained state must be
serialisable.  A GRAFICS model is fully described by:

* the bipartite graph's record/MAC vocabulary and weighted edges (needed to
  embed new samples against the frozen embeddings),
* the ego/context embedding matrices,
* the trained clusters (members, floor labels, centroids),
* the configuration (embedding hyperparameters and weight function).

The on-disk format is a single ``.npz`` file holding the numeric arrays plus
a JSON blob for the structured metadata.  Only the weight functions shipped
with the library can be restored by name; custom weight functions require the
caller to rebuild the configuration manually after loading.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..faults import failpoints
from .clustering.hierarchical import ClusteringResult
from .clustering.model import ClusterModel, FloorCluster
from .embedding.base import EmbeddingConfig, GraphEmbedding
from .graph import BipartiteGraph, NodeKind
from .pipeline import GRAFICS, GraficsConfig
from .registry import MultiBuildingFloorService
from .types import SignalRecord
from .weighting import ClippedOffsetWeight, OffsetWeight, PowerWeight, WeightFunction

__all__ = [
    "CheckpointCorruptError",
    "save_model",
    "load_model",
    "save_registry",
    "load_registry",
    "save_stream_state",
    "load_stream_state",
    "record_to_payload",
    "record_from_payload",
    "grafics_config_to_payload",
    "grafics_config_from_payload",
]

_FORMAT_VERSION = 1
_REGISTRY_FORMAT_VERSION = 1
_REGISTRY_MANIFEST = "manifest.json"
_STREAM_STATE_VERSION = 1


class CheckpointCorruptError(ValueError):
    """A checkpoint payload failed its integrity check.

    Raised when a stream-state or model file is truncated, unparseable, or
    fails its stored SHA-256 digest — i.e. the bytes on disk are not the
    bytes a writer produced.  Distinct from :class:`FileNotFoundError`
    (nothing was ever written there) and from plain :class:`ValueError`
    version mismatches (a well-formed file from an incompatible writer):
    corruption is the one case where falling back to the retained
    previous-generation checkpoint is the right move, and ``resume()``
    keys that decision off this type.
    """


def _state_digest(state: dict) -> str:
    """SHA-256 over the canonical JSON form of a stream-state payload.

    The state is round-tripped through JSON first so the digest of the
    in-memory dict (whose keys may be ints) matches the digest of the
    reloaded dict (whose keys are the strings JSON made of them).
    """
    normalised = json.loads(json.dumps(state))
    blob = json.dumps(normalised, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _sweep_stale_tmp_files(directory: Path) -> int:
    """Delete leftover ``*.tmp`` / ``*.tmp.npz`` files from crashed writes.

    Atomic writers clean their temp file up on every in-process unwind, so
    anything still matching these patterns was orphaned by a hard kill
    mid-write.  Callers (registry save/load) assume a single writer per
    registry directory — the same assumption the atomic-rename scheme
    itself already makes.
    """
    removed = 0
    for stale in list(directory.glob("*.tmp")) + list(directory.glob("*.tmp.npz")):
        try:
            stale.unlink()
        except OSError:
            continue
        removed += 1
    return removed


def _weight_function_to_dict(weight_function: WeightFunction) -> dict:
    if isinstance(weight_function, ClippedOffsetWeight):
        return {"name": "clipped-offset", "offset": weight_function.offset,
                "min_weight": weight_function.min_weight}
    if isinstance(weight_function, OffsetWeight):
        return {"name": "offset", "offset": weight_function.offset}
    if isinstance(weight_function, PowerWeight):
        return {"name": "power", "scale": weight_function.scale}
    raise ValueError(
        f"cannot serialise custom weight function {type(weight_function).__name__}; "
        "use one of the built-in weight functions or rebuild the config manually")


def _weight_function_from_dict(payload: dict) -> WeightFunction:
    name = payload["name"]
    if name == "offset":
        return OffsetWeight(offset=payload["offset"])
    if name == "clipped-offset":
        return ClippedOffsetWeight(offset=payload["offset"],
                                   min_weight=payload["min_weight"])
    if name == "power":
        return PowerWeight(scale=payload["scale"])
    raise ValueError(f"unknown weight function {name!r} in saved model")


def grafics_config_to_payload(config: GraficsConfig) -> dict:
    """A GRAFICS configuration as a JSON-serialisable dict.

    Used inside saved model files and by the stream-state checkpoint, which
    must restore the *training* configuration too — retrains on a resumed
    node have to build models with exactly the hyperparameters the
    uninterrupted node would have used.
    """
    return {
        "embedding_dimension": config.embedding_dimension,
        "embedder": config.embedder,
        "allow_unreachable_clusters": config.allow_unreachable_clusters,
        "weight_function": _weight_function_to_dict(config.weight_function),
        "embedding": asdict(config.resolved_embedding_config()),
    }


def grafics_config_from_payload(payload: dict) -> GraficsConfig:
    """Rebuild a GRAFICS configuration written by the payload writer."""
    return GraficsConfig(
        embedding_dimension=payload["embedding_dimension"],
        embedder=payload["embedder"],
        allow_unreachable_clusters=payload["allow_unreachable_clusters"],
        weight_function=_weight_function_from_dict(payload["weight_function"]),
        embedding=EmbeddingConfig(**payload["embedding"]),
    )


def save_model(model: GRAFICS, path: str | Path) -> None:
    """Serialise a fitted GRAFICS model to ``path`` (a ``.npz`` file)."""
    if not model.is_fitted:
        raise ValueError("cannot save an unfitted GRAFICS model")
    path = Path(path)
    graph = model.graph

    edges = [[graph.node_at(edge.mac_index).key,
              graph.node_at(edge.record_index).key,
              edge.weight]
             for edge in graph.edges()]

    clustering = model.clustering
    metadata = {
        "format_version": _FORMAT_VERSION,
        "config": grafics_config_to_payload(model.config),
        "record_index": model.embedding.record_index,
        "mac_index": model.embedding.mac_index,
        "edges": edges,
        "clusters": [
            {
                "cluster_id": cluster.cluster_id,
                "floor": cluster.floor,
                "member_record_ids": list(cluster.member_record_ids),
            }
            for cluster in model.cluster_model.clusters
        ],
        "cluster_assignments": clustering.assignments if clustering else {},
        "cluster_labels": ({str(k): v for k, v in clustering.cluster_labels.items()}
                           if clustering else {}),
    }

    centroids = np.vstack([c.centroid for c in model.cluster_model.clusters])
    np.savez_compressed(
        path,
        ego=model.embedding.ego,
        context=model.embedding.context,
        centroids=centroids,
        metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"),
                               dtype=np.uint8),
    )


def _rebuild_graph(edges: list, weight_function: WeightFunction,
                   record_index: dict | None = None,
                   mac_index: dict | None = None) -> BipartiteGraph:
    """Reconstruct the bipartite graph with the stored edge weights.

    When the saved node→row maps are given and contiguous (always true for
    graphs built by ``GRAFICS.fit``), nodes are recreated in their original
    index order, so every node lands on exactly the index it had when the
    model was saved.  This matters beyond aesthetics: online inference seeds
    its negative sampler over the node index space, so a graph rebuilt in a
    different order would give subtly different (still valid, but not
    byte-identical) predictions than the model that was saved — breaking the
    serving guarantee that a restart serves exactly what the live process
    served.
    """
    graph = BipartiteGraph(weight_function=weight_function)
    if record_index is not None and mac_index is not None:
        order = sorted(
            [(row, NodeKind.RECORD, key) for key, row in record_index.items()]
            + [(row, NodeKind.MAC, key) for key, row in mac_index.items()])
        if [row for row, _, _ in order] == list(range(len(order))):
            for _, kind, key in order:
                if kind is NodeKind.MAC:
                    graph.add_mac(key)
                else:
                    graph._add_node(NodeKind.RECORD, key)  # noqa: SLF001
            for mac, record_id, weight in edges:
                graph._set_edge(  # noqa: SLF001
                    graph.get_node(NodeKind.MAC, mac).index,
                    graph.get_node(NodeKind.RECORD, record_id).index,
                    float(weight))
            return graph
    # Non-contiguous saved indices (not produced by any current writer):
    # rebuild in per-record insertion order and let the caller re-map rows.
    per_record: dict[str, dict[str, float]] = {}
    for mac, record_id, weight in edges:
        per_record.setdefault(record_id, {})[mac] = float(weight)
    for record_id, weighted_macs in per_record.items():
        record_node = graph._add_node(NodeKind.RECORD, record_id)  # noqa: SLF001
        for mac, weight in weighted_macs.items():
            mac_node = graph.add_mac(mac)
            graph._set_edge(mac_node.index, record_node.index, weight)  # noqa: SLF001
    return graph


def load_model(path: str | Path) -> GRAFICS:
    """Restore a GRAFICS model saved with :func:`save_model`.

    The returned model supports online inference (``predict`` /
    ``predict_batch``) exactly like the freshly trained one.
    """
    path = Path(path)
    failpoints.fire("checkpoint.read", path=path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            ego = archive["ego"]
            context = archive["context"]
            centroids = archive["centroids"]
            metadata = json.loads(
                bytes(archive["metadata"].tobytes()).decode("utf-8"))
    except FileNotFoundError:
        raise  # missing is not corrupt; callers distinguish the two
    except (zipfile.BadZipFile, ValueError, KeyError, OSError,
            EOFError) as error:
        # A torn or bit-flipped npz surfaces as whatever layer noticed
        # first (zip directory, array header, metadata JSON); normalise to
        # the typed error recovery paths key on.
        raise CheckpointCorruptError(
            f"model file {path} is corrupt or truncated: {error}") from error

    if metadata.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format version "
                         f"{metadata.get('format_version')!r}")

    config = grafics_config_from_payload(metadata["config"])
    embedding_config = config.embedding

    old_record_index = metadata["record_index"]
    old_mac_index = metadata["mac_index"]
    graph = _rebuild_graph(metadata["edges"], config.weight_function,
                           record_index=old_record_index,
                           mac_index=old_mac_index)

    # Embedding rows are re-ordered to the rebuilt indices.  With the
    # index-preserving rebuild this is an identity copy; the mapping is kept
    # for graphs whose saved indices were not contiguous.
    dim = ego.shape[1]
    new_ego = np.zeros((graph.index_capacity, dim))
    new_context = np.zeros((graph.index_capacity, dim))
    record_index: dict[str, int] = {}
    mac_index: dict[str, int] = {}
    for node in graph.nodes():
        if node.kind is NodeKind.RECORD:
            old_row = old_record_index[node.key]
            record_index[node.key] = node.index
        else:
            old_row = old_mac_index[node.key]
            mac_index[node.key] = node.index
        new_ego[node.index] = ego[old_row]
        new_context[node.index] = context[old_row]

    embedding = GraphEmbedding(ego=new_ego, context=new_context,
                               record_index=record_index, mac_index=mac_index,
                               config=embedding_config)

    clusters = [FloorCluster(cluster_id=int(blob["cluster_id"]),
                             floor=int(blob["floor"]),
                             centroid=centroids[i],
                             member_record_ids=tuple(blob["member_record_ids"]))
                for i, blob in enumerate(metadata["clusters"])]
    cluster_model = ClusterModel(clusters)

    clustering = ClusteringResult(
        assignments={k: int(v) for k, v in metadata["cluster_assignments"].items()},
        cluster_labels={int(k): int(v)
                        for k, v in metadata["cluster_labels"].items()},
        cluster_members={c.cluster_id: list(c.member_record_ids)
                         for c in clusters},
        record_ids=list(metadata["cluster_assignments"].keys()),
    )

    model = GRAFICS(config)
    model.graph = graph
    model.embedding = embedding
    model.clustering = clustering
    model.cluster_model = cluster_model
    return model


# --------------------------------------------------------------- registries
def _registry_model_filename(building_id: str) -> str:
    """Stable, filesystem-safe filename for one building's model.

    Derived from the building id (not from its position in the registry) so
    that re-saving a reordered or partially retrained registry only ever
    overwrites a building's file with a newer model of the *same* building.
    A crash between the per-building writes and the manifest swap then
    leaves the old manifest pointing at the right buildings — possibly a
    fresher model for some, never another building's model.
    """
    digest = hashlib.sha1(building_id.encode("utf-8")).hexdigest()[:16]
    return f"building-{digest}.npz"


def _atomic_save_model(model: GRAFICS, path: Path) -> None:
    """Write a model file via a same-directory temp file and atomic rename."""
    # The suffix must stay ".npz" or np.savez would append one and the
    # rename would move the wrong (empty) file.
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp.npz")
    os.close(fd)
    try:
        save_model(model, tmp_name)
        # Between the temp write and the rename is exactly where a torn
        # write or crash-kill bites; the failpoint sits there on purpose.
        failpoints.fire("checkpoint.write", path=tmp_name)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


def save_registry(service: MultiBuildingFloorService, directory: str | Path) -> None:
    """Serialise a whole multi-building registry to ``directory``.

    Each building's model becomes one ``.npz`` file (via :func:`save_model`)
    and a ``manifest.json`` records building ids, their attribution
    vocabularies and the registration order — the order is part of the
    attribution semantics (it breaks overlap ties), so it must survive the
    round trip.  Every file is written to a temporary name and atomically
    renamed, model files are named after the building id rather than its
    position, and the manifest is swapped in last: a crash mid-save leaves
    the directory loading either the old registry or the new one per
    building, never a model filed under another building's id.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    _sweep_stale_tmp_files(directory)
    buildings = []
    for building_id, vocabulary in service.vocabularies.items():
        filename = _registry_model_filename(building_id)
        _atomic_save_model(service.model_for(building_id),
                           directory / filename)
        buildings.append({
            "building_id": building_id,
            "file": filename,
            "sha256": _file_digest(directory / filename),
            "vocabulary": sorted(vocabulary),
        })
    manifest = {
        "format_version": _REGISTRY_FORMAT_VERSION,
        "min_overlap": service.min_overlap,
        "buildings": buildings,
    }
    tmp_path = directory / (_REGISTRY_MANIFEST + ".tmp")
    tmp_path.write_text(json.dumps(manifest, indent=2))
    tmp_path.replace(directory / _REGISTRY_MANIFEST)


def load_registry(directory: str | Path,
                  config: GraficsConfig | None = None) -> MultiBuildingFloorService:
    """Restore a registry saved with :func:`save_registry`.

    ``config`` only affects buildings trained *after* loading; the restored
    per-building models keep the configurations they were trained with.
    """
    directory = Path(directory)
    manifest_path = directory / _REGISTRY_MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(
            f"{directory} does not contain a registry manifest "
            f"({_REGISTRY_MANIFEST})")
    _sweep_stale_tmp_files(directory)
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointCorruptError(
            f"registry manifest {manifest_path} is not valid JSON "
            f"(torn write?): {error}") from error
    if manifest.get("format_version") != _REGISTRY_FORMAT_VERSION:
        raise ValueError(f"unsupported registry format version "
                         f"{manifest.get('format_version')!r}")

    service = MultiBuildingFloorService(config,
                                        min_overlap=manifest["min_overlap"])
    for blob in manifest["buildings"]:
        model_path = directory / blob["file"]
        # Manifests written before the integrity layer carry no digest;
        # they still load, just without the corruption check.
        expected = blob.get("sha256")
        if expected is not None:
            if not model_path.is_file():
                raise CheckpointCorruptError(
                    f"registry manifest lists {model_path.name} but the "
                    "file is missing")
            if _file_digest(model_path) != expected:
                raise CheckpointCorruptError(
                    f"model file {model_path} does not match its manifest "
                    "sha256 digest (torn write or bitrot)")
        model = load_model(model_path)
        service.install_model(blob["building_id"], model,
                              vocabulary=blob["vocabulary"])
    return service


# ------------------------------------------------------------- stream state
def record_to_payload(record: SignalRecord) -> dict:
    """One signal record as a JSON-serialisable dict (full round trip)."""
    return {
        "record_id": record.record_id,
        "rss": dict(record.rss),
        "floor": record.floor,
        "device": record.device,
        "timestamp": record.timestamp,
    }


def record_from_payload(payload: dict) -> SignalRecord:
    """Rebuild a signal record written by :func:`record_to_payload`."""
    return SignalRecord(
        record_id=str(payload["record_id"]),
        rss={str(mac): float(value)
             for mac, value in payload["rss"].items()},
        floor=None if payload.get("floor") is None else int(payload["floor"]),
        device=payload.get("device"),
        timestamp=payload.get("timestamp"),
    )


def save_stream_state(state: dict, path: str | Path) -> None:
    """Atomically write a stream-state checkpoint (versioned JSON).

    The payload is whatever the continuous-learning pipeline's
    ``state_dict()`` collected — per-building windows, drift baselines,
    scheduler counters, ingest buffers and filter state (see
    :meth:`repro.stream.ContinuousLearningPipeline.checkpoint`).  Models
    are *not* in here; they round-trip separately through
    :func:`save_registry`/:func:`load_registry`.  The file is written to a
    same-directory temporary name and renamed into place, so a crash
    mid-checkpoint leaves the previous checkpoint intact, never a torn one.
    """
    path = Path(path)
    payload = {"format_version": _STREAM_STATE_VERSION,
               "sha256": _state_digest(state), "state": state}
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        tmp_path.write_text(json.dumps(payload, indent=2))
        failpoints.fire("checkpoint.write", path=tmp_path)
        tmp_path.replace(path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise


def load_stream_state(path: str | Path) -> dict:
    """Read a checkpoint written by :func:`save_stream_state`.

    Verifies the embedded SHA-256 digest when one is present (checkpoints
    from before the integrity layer have none and still load); truncated,
    unparseable or digest-failing files raise
    :class:`CheckpointCorruptError`.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no stream-state checkpoint at {path}")
    failpoints.fire("checkpoint.read", path=path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointCorruptError(
            f"stream-state checkpoint {path} is not valid JSON "
            f"(torn write?): {error}") from error
    if not isinstance(payload, dict) or "state" not in payload:
        raise CheckpointCorruptError(
            f"stream-state checkpoint {path} has no state payload")
    if payload.get("format_version") != _STREAM_STATE_VERSION:
        raise ValueError(f"unsupported stream-state format version "
                         f"{payload.get('format_version')!r}")
    expected = payload.get("sha256")
    if expected is not None and _state_digest(payload["state"]) != expected:
        raise CheckpointCorruptError(
            f"stream-state checkpoint {path} does not match its sha256 "
            "digest (torn write or bitrot)")
    return payload["state"]
