"""Core data types used throughout the GRAFICS reproduction.

The fundamental unit of data is a :class:`SignalRecord`: one crowdsourced RF
scan, i.e. a variable-length mapping from sensed MAC addresses to received
signal strength (RSS) values in dBm, optionally annotated with the floor on
which it was collected.  A :class:`FingerprintDataset` is an ordered
collection of records for one building, together with light bookkeeping
(building id, floor names) used by the data generators and the experiment
harness.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

__all__ = [
    "SignalRecord",
    "FingerprintDataset",
    "records_to_matrix",
]

#: Sentinel RSS used when converting variable-length records to a dense matrix
#: (the paper fills missing entries with -120 dBm).
MISSING_RSS = -120.0


@dataclass(frozen=True)
class SignalRecord:
    """One crowdsourced RF measurement sample.

    Parameters
    ----------
    record_id:
        Unique identifier of the record within its dataset.
    rss:
        Mapping from MAC address (any hashable string) to the measured RSS in
        dBm.  RSS values are expected to be negative (e.g. ``-30`` to ``-100``).
    floor:
        Ground-truth floor index, or ``None`` when unknown.  Whether a record
        is *used* as a labeled sample during training is decided separately by
        the experiment harness (see :mod:`repro.data.splits`).
    device:
        Optional identifier of the contributing device (used by the synthetic
        generator to model device heterogeneity).
    timestamp:
        Optional collection timestamp (seconds, arbitrary epoch).
    """

    record_id: str
    rss: Mapping[str, float]
    floor: int | None = None
    device: str | None = None
    timestamp: float | None = None

    def __post_init__(self) -> None:
        if not self.rss:
            raise ValueError(f"record {self.record_id!r} has no RSS readings")
        object.__setattr__(self, "rss", dict(self.rss))

    @property
    def macs(self) -> frozenset[str]:
        """The set of MAC addresses sensed in this record."""
        return frozenset(self.rss)

    @property
    def is_labeled(self) -> bool:
        """Whether the record carries ground-truth floor information."""
        return self.floor is not None

    def __len__(self) -> int:
        return len(self.rss)

    def overlap_ratio(self, other: "SignalRecord") -> float:
        """Intersection-over-union of the MAC sets of two records (paper Fig. 1b)."""
        mine, theirs = self.macs, other.macs
        union = mine | theirs
        if not union:
            return 0.0
        return len(mine & theirs) / len(union)

    def restrict_to(self, macs: Iterable[str]) -> "SignalRecord | None":
        """Return a copy keeping only the given MACs, or ``None`` if empty.

        Used by the MAC-availability sweep (paper Fig. 17) where only a
        fraction of the MAC addresses are assumed to exist on-site.
        """
        allowed = set(macs)
        kept = {m: v for m, v in self.rss.items() if m in allowed}
        if not kept:
            return None
        return SignalRecord(
            record_id=self.record_id,
            rss=kept,
            floor=self.floor,
            device=self.device,
            timestamp=self.timestamp,
        )

    def without_floor(self) -> "SignalRecord":
        """Return a copy of this record with the floor label removed."""
        return SignalRecord(
            record_id=self.record_id,
            rss=self.rss,
            floor=None,
            device=self.device,
            timestamp=self.timestamp,
        )


@dataclass
class FingerprintDataset:
    """A collection of signal records for one building.

    The dataset preserves insertion order of records and offers the
    aggregate views needed by the graph construction, the baselines (dense
    matrix form) and the dataset-statistics benchmarks.
    """

    records: list[SignalRecord] = field(default_factory=list)
    building_id: str = "building"
    floor_names: dict[int, str] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for record in self.records:
            if record.record_id in seen:
                raise ValueError(f"duplicate record id {record.record_id!r}")
            seen.add(record.record_id)

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SignalRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> SignalRecord:
        return self.records[index]

    # -- mutation ------------------------------------------------------------
    def add(self, record: SignalRecord) -> None:
        """Append a record, enforcing id uniqueness."""
        if any(r.record_id == record.record_id for r in self.records):
            raise ValueError(f"duplicate record id {record.record_id!r}")
        self.records.append(record)

    # -- aggregate views -----------------------------------------------------
    @property
    def macs(self) -> list[str]:
        """All distinct MAC addresses, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            for mac in record.rss:
                seen.setdefault(mac, None)
        return list(seen)

    @property
    def floors(self) -> list[int]:
        """Sorted list of distinct floor labels present in the dataset."""
        return sorted({r.floor for r in self.records if r.floor is not None})

    @property
    def labeled_records(self) -> list[SignalRecord]:
        return [r for r in self.records if r.is_labeled]

    @property
    def unlabeled_records(self) -> list[SignalRecord]:
        return [r for r in self.records if not r.is_labeled]

    def records_on_floor(self, floor: int) -> list[SignalRecord]:
        return [r for r in self.records if r.floor == floor]

    def subset(self, records: Sequence[SignalRecord]) -> "FingerprintDataset":
        """Build a new dataset (same metadata) from a subset of records."""
        return FingerprintDataset(
            records=list(records),
            building_id=self.building_id,
            floor_names=dict(self.floor_names),
            metadata=dict(self.metadata),
        )

    def restrict_macs(self, macs: Iterable[str]) -> "FingerprintDataset":
        """Keep only the given MACs; records left empty are dropped (Fig. 17)."""
        allowed = set(macs)
        kept = []
        for record in self.records:
            restricted = record.restrict_to(allowed)
            if restricted is not None:
                kept.append(restricted)
        return self.subset(kept)

    def to_matrix(self, mac_order: Sequence[str] | None = None,
                  missing_value: float = MISSING_RSS):
        """Dense matrix representation (records x MACs) used by the baselines.

        Missing entries are filled with ``missing_value`` (-120 dBm by default,
        the imputation the paper criticises as the "missing value problem").
        Returns ``(matrix, mac_order)``.
        """
        return records_to_matrix(self.records, mac_order=mac_order,
                                 missing_value=missing_value)


def records_to_matrix(records: Sequence[SignalRecord],
                      mac_order: Sequence[str] | None = None,
                      missing_value: float = MISSING_RSS):
    """Convert variable-length records into a dense ``(n_records, n_macs)`` matrix.

    Parameters
    ----------
    records:
        The records to convert.
    mac_order:
        Column order.  When ``None`` the columns follow first-appearance order
        over ``records``.  MACs present in a record but absent from
        ``mac_order`` are silently ignored (this models an online sample that
        contains previously unseen MACs, which the matrix baselines cannot
        represent).
    missing_value:
        Fill value for (record, MAC) pairs without a measurement.
    """
    import numpy as np

    if mac_order is None:
        seen: dict[str, None] = {}
        for record in records:
            for mac in record.rss:
                seen.setdefault(mac, None)
        mac_order = list(seen)
    index = {mac: j for j, mac in enumerate(mac_order)}
    matrix = np.full((len(records), len(mac_order)), float(missing_value))
    for i, record in enumerate(records):
        for mac, rss in record.rss.items():
            j = index.get(mac)
            if j is not None:
                matrix[i, j] = rss
    return matrix, list(mac_order)
