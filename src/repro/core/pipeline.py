"""End-to-end GRAFICS pipeline: offline training and online inference.

:class:`GRAFICS` ties together the four stages of the paper:

1. bipartite graph construction from the crowdsourced records
   (:mod:`repro.core.graph`),
2. E-LINE (or, for ablations, LINE) graph embedding
   (:mod:`repro.core.embedding`),
3. proximity-based hierarchical clustering with the few floor-labeled samples
   (:mod:`repro.core.clustering`),
4. online inference for new samples (:mod:`repro.core.inference`).

Typical usage::

    from repro import GRAFICS, GraficsConfig

    model = GRAFICS(GraficsConfig(embedding_dimension=8))
    model.fit(training_records, labels={"r17": 2, "r903": 0, ...})
    floor = model.predict(new_record).floor
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from ..obs import runtime as obs
from .clustering.hierarchical import ClusteringResult, ProximityClustering
from .clustering.model import ClusterModel
from .embedding.base import EmbeddingConfig, GraphEmbedding
from .embedding.eline import ELINEEmbedder
from .embedding.sampler import validate_sampler_mode
from .embedding.line import LINEEmbedder
from .graph import BipartiteGraph, build_graph
from .inference import FloorPrediction, OnlineInferenceEngine
from .types import FingerprintDataset, SignalRecord
from .weighting import OffsetWeight, WeightFunction

__all__ = ["GraficsConfig", "GRAFICS"]


@dataclass(frozen=True)
class GraficsConfig:
    """Configuration of the whole GRAFICS pipeline.

    Attributes
    ----------
    embedding_dimension:
        Length of the ego/context embedding vectors (paper default: 8).
    embedder:
        ``"eline"`` for the paper's algorithm, ``"line"``, ``"line-first"`` or
        ``"line-combined"`` for the LINE ablations of Fig. 13 / Section VI-C.
    weight_function:
        Edge weight function (paper default: ``f(RSS) = RSS + 120``).
    embedding:
        Full embedding hyperparameters.  ``embedding_dimension`` overrides the
        dimension stored here so the common case needs a single knob.
    kernel:
        Optional training-kernel override (``"reference"``/``"fused"``, see
        :mod:`repro.core.embedding.kernels`); when set it overrides
        ``embedding.kernel`` the same way ``embedding_dimension`` overrides
        the dimension.  ``None`` keeps whatever the embedding config says.
    sampler_mode:
        Optional negative-sampler-mode override for the online cold path
        (``"exact"``/``"delta"``, see
        :class:`~repro.core.embedding.base.EmbeddingConfig`); same override
        semantics as ``kernel``.  ``None`` keeps whatever the embedding
        config says.
    allow_unreachable_clusters:
        Forwarded to :class:`ProximityClustering`.
    """

    embedding_dimension: int = 8
    embedder: str = "eline"
    weight_function: WeightFunction = field(default_factory=OffsetWeight)
    embedding: EmbeddingConfig = field(default_factory=EmbeddingConfig)
    kernel: str | None = None
    sampler_mode: str | None = None
    allow_unreachable_clusters: bool = False

    def resolved_embedding_config(self) -> EmbeddingConfig:
        """The embedding config with the pipeline-level overrides applied."""
        config = self.embedding
        if config.dimension != self.embedding_dimension:
            config = replace(config, dimension=self.embedding_dimension)
        if self.kernel is not None and config.kernel != self.kernel:
            config = replace(config, kernel=self.kernel)
        if (self.sampler_mode is not None
                and config.sampler_mode != self.sampler_mode):
            config = replace(config, sampler_mode=self.sampler_mode)
        return config

    def make_embedder(self):
        """Instantiate the configured graph embedder."""
        config = self.resolved_embedding_config()
        if self.embedder == "eline":
            return ELINEEmbedder(config)
        if self.embedder == "line":
            return LINEEmbedder(config, order="second")
        if self.embedder == "line-first":
            return LINEEmbedder(config, order="first")
        if self.embedder == "line-combined":
            return LINEEmbedder(config, order="combined")
        raise ValueError(f"unknown embedder {self.embedder!r}; expected one of "
                         "'eline', 'line', 'line-first', 'line-combined'")


class GRAFICS:
    """Graph embedding-based floor identification (the paper's full system)."""

    def __init__(self, config: GraficsConfig | None = None) -> None:
        self.config = config or GraficsConfig()
        self.graph: BipartiteGraph | None = None
        self.embedding: GraphEmbedding | None = None
        self.clustering: ClusteringResult | None = None
        self.cluster_model: ClusterModel | None = None
        self._engine: OnlineInferenceEngine | None = None
        self._embedder = None

    # ---------------------------------------------------------------- training
    def fit(self, records: FingerprintDataset | Sequence[SignalRecord],
            labels: Mapping[str, int] | None = None,
            warm_start: GraphEmbedding | None = None,
            kernel: str | None = None,
            sampler_mode: str | None = None) -> "GRAFICS":
        """Run the offline training phase.

        Parameters
        ----------
        records:
            All crowdsourced training records (labeled and unlabeled).  Floor
            attributes on the records themselves are ignored for training —
            only ``labels`` determines which records act as labeled samples —
            so that evaluation code can keep ground truth on the records
            without leaking it.
        labels:
            Mapping record id -> floor for the few labeled samples.  When
            ``None``, the labels are taken from records whose ``floor``
            attribute is set (useful for fully labeled toy examples).
        warm_start:
            Optional embedding of a previously trained model.  Records and
            MACs shared with the previous graph start training from their
            old vectors — the continuous-learning retrain path, where most
            of the sliding window survives from one model generation to the
            next.  Clustering and inference are unaffected beyond the
            embedding initialisation.
        kernel:
            Optional per-fit training-kernel override (``"reference"`` /
            ``"fused"``).  The trained embedding records the kernel it was
            fitted with, so online inference on this model keeps using it.
        sampler_mode:
            Optional per-fit negative-sampler-mode override (``"exact"`` /
            ``"delta"``).  The fit itself is unaffected (offline training
            never sees an overlay); the mode is recorded on the model's
            config and drives this model's online cold path.
        """
        record_list = list(records.records if isinstance(records, FingerprintDataset)
                           else records)
        if not record_list:
            raise ValueError("cannot fit GRAFICS on an empty record collection")
        if labels is None:
            labels = {r.record_id: r.floor for r in record_list if r.floor is not None}
        labels = {str(k): int(v) for k, v in labels.items()}
        if not labels:
            raise ValueError("GRAFICS requires at least one floor-labeled record")
        known_ids = {r.record_id for r in record_list}
        missing = set(labels) - known_ids
        if missing:
            raise ValueError(
                f"labels reference records that are not in the training set: "
                f"{sorted(missing)[:5]}")

        if kernel is not None and self.config.kernel != kernel:
            # Record the effective kernel on the model's config so the
            # override survives persistence round-trips and drives the
            # online-inference engine of this model.
            self.config = replace(self.config, kernel=kernel)
        if sampler_mode is not None and self.config.sampler_mode != sampler_mode:
            validate_sampler_mode(sampler_mode)
            self.config = replace(self.config, sampler_mode=sampler_mode)
        with obs.span("fit") as fit_span:
            fit_span.set("records", len(record_list))
            fit_span.set("labels", len(labels))
            with obs.span("fit.graph"):
                self.graph = build_graph(
                    record_list, weight_function=self.config.weight_function)
            self._embedder = self.config.make_embedder()
            with obs.span("fit.embedding") as embed_span:
                embed_span.set("warm_start", warm_start is not None)
                self.embedding = self._embedder.fit(self.graph,
                                                    warm_start=warm_start)

            record_ids = [r.record_id for r in record_list]
            vectors = self.embedding.record_matrix(record_ids)
            with obs.span("fit.clustering"):
                clustering = ProximityClustering(
                    allow_unreachable=self.config.allow_unreachable_clusters)
                self.clustering = clustering.fit(record_ids, vectors, labels)
                self.cluster_model = ClusterModel.from_clustering(
                    self.clustering, self.embedding)
        self._engine = None
        return self

    # ------------------------------------------------------------------ pickling
    def __getstate__(self) -> dict:
        """Pickle support: ship a fitted model as a read-only snapshot.

        The lazily-built online engine holds per-thread scratch buffers
        (process-local by design) and is fully reconstructible from the
        graph + embedding + cluster model, so it is dropped rather than
        serialized; the restored model rebuilds it on first use and —
        because online inference is deterministic — predicts byte-identically
        to the source model.  This is what lets compute-pool workers hold
        pickled model snapshots keyed by ``(building, generation)``.
        """
        state = self.__dict__.copy()
        state["_engine"] = None
        return state

    @property
    def is_fitted(self) -> bool:
        return self.cluster_model is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("GRAFICS model is not fitted; call fit() first")

    # --------------------------------------------------------------- inference
    @property
    def engine(self) -> OnlineInferenceEngine:
        """The lazily created online-inference engine."""
        self._require_fitted()
        if self._engine is None:
            # The fitted embedding's config (not the pipeline config) drives
            # incremental embedding, so a per-fit kernel override carries
            # through to online inference on that model.
            incremental_embedder = ELINEEmbedder(self.embedding.config)
            self._engine = OnlineInferenceEngine(
                self.graph, self.embedding, self.cluster_model,
                embedder=incremental_embedder,
                sampler_mode=self.config.sampler_mode)
        return self._engine

    def with_sampler_mode(self, sampler_mode: str) -> "GRAFICS":
        """A view of this fitted model with a different cold-path sampler mode.

        The clone shares the graph, embedding and cluster model (no refit —
        offline training is unaffected by the sampler mode); only its
        online-inference engine differs.  Useful for A/B-comparing
        ``"exact"`` and ``"delta"`` serving on one trained model.
        """
        self._require_fitted()
        validate_sampler_mode(sampler_mode)
        clone = GRAFICS(replace(self.config, sampler_mode=sampler_mode))
        clone.graph = self.graph
        clone.embedding = self.embedding
        clone.clustering = self.clustering
        clone.cluster_model = self.cluster_model
        return clone

    def predict(self, record: SignalRecord, persist: bool = False) -> FloorPrediction:
        """Predict the floor of one new RF sample (online inference)."""
        return self.engine.predict(record, persist=persist)

    def predict_batch(self, records: Sequence[SignalRecord],
                      persist: bool = False,
                      independent: bool = False) -> list[FloorPrediction]:
        """Predict the floors of several new RF samples in one embedding pass.

        ``independent=True`` embeds each record on its own (deterministic
        regardless of batch composition) instead of jointly; see
        :meth:`OnlineInferenceEngine.predict_batch`.
        """
        return self.engine.predict_batch(records, persist=persist,
                                         independent=independent)

    def predict_floors(self, records: Sequence[SignalRecord]) -> np.ndarray:
        """Convenience wrapper returning only the predicted floor numbers."""
        predictions = self.predict_batch(records)
        return np.array([p.floor for p in predictions], dtype=np.int64)

    # ----------------------------------------------------------- introspection
    @property
    def known_macs(self) -> frozenset[str]:
        """The MAC vocabulary of the training graph (building attribution key)."""
        self._require_fitted()
        return self.graph.mac_vocabulary()

    def training_floor_assignments(self) -> dict[str, int]:
        """Virtual floor labels assigned to every training record by clustering."""
        self._require_fitted()
        return {rid: self.clustering.cluster_labels[cid]
                for rid, cid in self.clustering.assignments.items()}

    def record_embedding(self, record_id: str) -> np.ndarray:
        """Ego embedding of a training record."""
        self._require_fitted()
        return self.embedding.record_vector(record_id)

    def training_summary(self) -> dict[str, object]:
        """A small dictionary of model statistics (for logging and examples)."""
        self._require_fitted()
        return {
            "num_records": self.graph.num_records,
            "num_macs": self.graph.num_macs,
            "num_edges": self.graph.num_edges,
            "num_clusters": self.cluster_model.num_clusters,
            "floors": self.cluster_model.floors,
            "embedding_dimension": self.embedding.dimension,
            "embedder": self.config.embedder,
        }


def predict_transductively(model: GRAFICS,
                           test_records: Iterable[SignalRecord]) -> dict[str, int]:
    """Predict floors for many held-out records in one incremental batch.

    Helper used by the experiment harness: equivalent to
    ``model.predict_batch`` but returns a plain ``{record_id: floor}`` map.
    """
    predictions = model.predict_batch(list(test_records))
    return {p.record_id: p.floor for p in predictions}
