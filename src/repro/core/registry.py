"""Multi-building floor identification service.

The paper evaluates per-building models (204 buildings in the Microsoft
corpus).  A practical deployment serves many buildings at once: an online
sample first has to be attributed to a building, then classified by that
building's GRAFICS model.  :class:`MultiBuildingFloorService` implements the
natural attribution rule suggested by the paper's own discard heuristic
(Section V-A footnote): a sample belongs to the building whose trained MAC
vocabulary it overlaps most, and a sample overlapping no building at all is
rejected as "outside".
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from .inference import UnknownEnvironmentError
from .pipeline import GRAFICS, GraficsConfig
from .types import FingerprintDataset, SignalRecord

__all__ = ["BuildingPrediction", "MultiBuildingFloorService"]


@dataclass(frozen=True)
class BuildingPrediction:
    """Joint building + floor prediction for one online sample."""

    record_id: str
    building_id: str
    floor: int
    mac_overlap: float
    distance: float


class MultiBuildingFloorService:
    """Trains and serves one GRAFICS model per building.

    Parameters
    ----------
    config:
        GRAFICS configuration shared by every per-building model.
    min_overlap:
        Minimum fraction of an online sample's MACs that must be known to a
        building for the sample to be attributed to it.
    """

    def __init__(self, config: GraficsConfig | None = None,
                 min_overlap: float = 0.1) -> None:
        if not 0.0 < min_overlap <= 1.0:
            raise ValueError("min_overlap must be in (0, 1]")
        self.config = config or GraficsConfig()
        self.min_overlap = min_overlap
        self._models: dict[str, GRAFICS] = {}
        self._vocabularies: dict[str, frozenset[str]] = {}

    # ---------------------------------------------------------------- training
    def fit_building(self, dataset: FingerprintDataset,
                     labels: Mapping[str, int]) -> GRAFICS:
        """Train (or retrain) the model of one building."""
        model = GRAFICS(self.config)
        model.fit(dataset, labels)
        self._models[dataset.building_id] = model
        self._vocabularies[dataset.building_id] = frozenset(dataset.macs)
        return model

    def fit_corpus(self, datasets: Iterable[FingerprintDataset],
                   labels_by_building: Mapping[str, Mapping[str, int]]) -> None:
        """Train models for a corpus; labels are keyed by building id."""
        for dataset in datasets:
            try:
                labels = labels_by_building[dataset.building_id]
            except KeyError:
                raise ValueError(
                    f"no labels provided for building {dataset.building_id!r}"
                ) from None
            self.fit_building(dataset, labels)

    # ----------------------------------------------------------------- lookup
    @property
    def building_ids(self) -> list[str]:
        return sorted(self._models)

    def model_for(self, building_id: str) -> GRAFICS:
        try:
            return self._models[building_id]
        except KeyError:
            raise KeyError(f"no trained model for building {building_id!r}") from None

    def identify_building(self, record: SignalRecord) -> tuple[str, float]:
        """Attribute a sample to the building with the largest MAC overlap.

        Returns ``(building_id, overlap_fraction)``.  Raises
        :class:`UnknownEnvironmentError` when no building clears
        ``min_overlap``.
        """
        if not self._models:
            raise RuntimeError("no buildings have been trained yet")
        macs = set(record.rss)
        best_building, best_overlap = None, 0.0
        for building_id, vocabulary in self._vocabularies.items():
            overlap = len(macs & vocabulary) / len(macs)
            if overlap > best_overlap:
                best_building, best_overlap = building_id, overlap
        if best_building is None or best_overlap < self.min_overlap:
            raise UnknownEnvironmentError(
                f"record {record.record_id!r} does not match any trained "
                f"building (best overlap {best_overlap:.2f})")
        return best_building, best_overlap

    # -------------------------------------------------------------- prediction
    def predict(self, record: SignalRecord) -> BuildingPrediction:
        """Attribute the sample to a building and predict its floor there."""
        building_id, overlap = self.identify_building(record)
        prediction = self._models[building_id].predict(record)
        return BuildingPrediction(record_id=record.record_id,
                                  building_id=building_id,
                                  floor=prediction.floor,
                                  mac_overlap=overlap,
                                  distance=prediction.distance)

    def predict_batch(self, records: Iterable[SignalRecord]) -> list[BuildingPrediction]:
        """Predict building + floor for several samples."""
        return [self.predict(record) for record in records]
