"""Multi-building floor identification service.

The paper evaluates per-building models (204 buildings in the Microsoft
corpus).  A practical deployment serves many buildings at once: an online
sample first has to be attributed to a building, then classified by that
building's GRAFICS model.  :class:`MultiBuildingFloorService` implements the
natural attribution rule suggested by the paper's own discard heuristic
(Section V-A footnote): a sample belongs to the building whose trained MAC
vocabulary it overlaps most, and a sample overlapping no building at all is
rejected as "outside".
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from .inference import UnknownEnvironmentError
from .pipeline import GRAFICS, GraficsConfig
from .types import FingerprintDataset, SignalRecord

__all__ = ["BuildingPrediction", "MultiBuildingFloorService"]


@dataclass(frozen=True)
class BuildingPrediction:
    """Joint building + floor prediction for one online sample."""

    record_id: str
    building_id: str
    floor: int
    mac_overlap: float
    distance: float


class MultiBuildingFloorService:
    """Trains and serves one GRAFICS model per building.

    Parameters
    ----------
    config:
        GRAFICS configuration shared by every per-building model.
    min_overlap:
        Minimum fraction of an online sample's MACs that must be known to a
        building for the sample to be attributed to it.
    """

    def __init__(self, config: GraficsConfig | None = None,
                 min_overlap: float = 0.1) -> None:
        if not 0.0 < min_overlap <= 1.0:
            raise ValueError("min_overlap must be in (0, 1]")
        self.config = config or GraficsConfig()
        self.min_overlap = min_overlap
        self._models: dict[str, GRAFICS] = {}
        self._vocabularies: dict[str, frozenset[str]] = {}

    # ---------------------------------------------------------------- training
    def fit_building(self, dataset: FingerprintDataset,
                     labels: Mapping[str, int]) -> GRAFICS:
        """Train (or retrain) the model of one building."""
        model = GRAFICS(self.config)
        model.fit(dataset, labels)
        self.install_model(dataset.building_id, model,
                           vocabulary=frozenset(dataset.macs))
        return model

    def install_model(self, building_id: str, model: GRAFICS,
                      vocabulary: Iterable[str] | None = None) -> None:
        """Install an already-trained model for a building (hot swap).

        Replacing an existing building keeps its registration order, so the
        attribution tie-break between buildings is unaffected by retraining.
        When ``vocabulary`` is ``None`` it is taken from the model's training
        graph.
        """
        if not model.is_fitted:
            raise ValueError(
                f"cannot install an unfitted model for building {building_id!r}")
        vocab = (frozenset(vocabulary) if vocabulary is not None
                 else model.known_macs)
        self._models[building_id] = model
        self._vocabularies[building_id] = vocab

    def remove_building(self, building_id: str) -> None:
        """Forget a building's model and vocabulary."""
        try:
            del self._models[building_id]
            del self._vocabularies[building_id]
        except KeyError:
            raise KeyError(f"no trained model for building {building_id!r}") from None

    def fit_corpus(self, datasets: Iterable[FingerprintDataset],
                   labels_by_building: Mapping[str, Mapping[str, int]]) -> None:
        """Train models for a corpus; labels are keyed by building id."""
        for dataset in datasets:
            try:
                labels = labels_by_building[dataset.building_id]
            except KeyError:
                raise ValueError(
                    f"no labels provided for building {dataset.building_id!r}"
                ) from None
            self.fit_building(dataset, labels)

    # ----------------------------------------------------------------- lookup
    @property
    def building_ids(self) -> list[str]:
        return sorted(self._models)

    def model_for(self, building_id: str) -> GRAFICS:
        try:
            return self._models[building_id]
        except KeyError:
            raise KeyError(f"no trained model for building {building_id!r}") from None

    def vocabulary_for(self, building_id: str) -> frozenset[str]:
        try:
            return self._vocabularies[building_id]
        except KeyError:
            raise KeyError(f"no trained model for building {building_id!r}") from None

    @property
    def vocabularies(self) -> dict[str, frozenset[str]]:
        """Building vocabularies in registration order (the tie-break order)."""
        return dict(self._vocabularies)

    def identify_building(self, record: SignalRecord) -> tuple[str, float]:
        """Attribute a sample to the building with the largest MAC overlap.

        Returns ``(building_id, overlap_fraction)``.  Raises
        :class:`UnknownEnvironmentError` when no building clears
        ``min_overlap``.
        """
        if not self._models:
            raise RuntimeError("no buildings have been trained yet")
        macs = set(record.rss)
        if not macs:
            raise UnknownEnvironmentError(
                f"record {record.record_id!r} carries no RSS readings and "
                "cannot be attributed to any building")
        best_building, best_overlap = None, 0.0
        for building_id, vocabulary in self._vocabularies.items():
            overlap = len(macs & vocabulary) / len(macs)
            if overlap > best_overlap:
                best_building, best_overlap = building_id, overlap
        if best_building is None or best_overlap < self.min_overlap:
            raise UnknownEnvironmentError(
                f"record {record.record_id!r} does not match any trained "
                f"building (best overlap {best_overlap:.2f})")
        return best_building, best_overlap

    # -------------------------------------------------------------- prediction
    def predict(self, record: SignalRecord) -> BuildingPrediction:
        """Attribute the sample to a building and predict its floor there."""
        building_id, overlap = self.identify_building(record)
        prediction = self._models[building_id].predict(record)
        return BuildingPrediction(record_id=record.record_id,
                                  building_id=building_id,
                                  floor=prediction.floor,
                                  mac_overlap=overlap,
                                  distance=prediction.distance)

    def predict_batch(self, records: Iterable[SignalRecord]) -> list[BuildingPrediction]:
        """Predict building + floor for several samples.

        Records are grouped by attributed building and each group is sent
        through that model's batched inference path, so per-sample overheads
        (graph bookkeeping, known-MAC lookups) are paid once per building
        rather than once per record.  Predictions are identical to calling
        :meth:`predict` on each record in turn, in the input order.
        """
        records = list(records)
        routed = [self.identify_building(record) for record in records]
        groups: dict[str, list[int]] = {}
        for position, (building_id, _) in enumerate(routed):
            groups.setdefault(building_id, []).append(position)

        results: list[BuildingPrediction | None] = [None] * len(records)
        for building_id, positions in groups.items():
            floor_predictions = self._models[building_id].predict_batch(
                [records[i] for i in positions], independent=True)
            for position, floor_prediction in zip(positions, floor_predictions):
                results[position] = BuildingPrediction(
                    record_id=floor_prediction.record_id,
                    building_id=building_id,
                    floor=floor_prediction.floor,
                    mac_overlap=routed[position][1],
                    distance=floor_prediction.distance)
        return results
