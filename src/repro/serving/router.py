"""Building attribution for the serving layer.

The reference attribution rule lives in
:meth:`repro.core.registry.MultiBuildingFloorService.identify_building`: scan
every building's MAC vocabulary and pick the one overlapping the online
sample most.  That scan is ``O(buildings x |record.rss|)`` per query, which
is fine for a handful of buildings but not for a production registry the
size of the paper's 204-building corpus.

:class:`MacInvertedRouter` replaces the scan with an inverted MAC→building
index: a query only touches the buildings that actually share at least one
MAC with the record, so attribution costs ``O(|record.rss|)`` plus the
(small) number of candidate buildings.  Results — including the tie-break,
which favours the earliest-registered building among equal overlaps, exactly
like the registry's insertion-order scan with a strict ``>`` — are identical
to the linear rule.  :class:`LinearScanRouter` packages the reference rule
behind the same interface so tests and benchmarks can compare the two
implementations head to head.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..core.inference import UnknownEnvironmentError
from ..core.types import SignalRecord

__all__ = ["RoutingDecision", "Router", "LinearScanRouter", "MacInvertedRouter"]


@dataclass(frozen=True)
class RoutingDecision:
    """The outcome of attributing one record to a building."""

    building_id: str
    overlap: float


class Router:
    """Common interface and validation for building-attribution strategies."""

    def __init__(self, min_overlap: float = 0.1) -> None:
        if not 0.0 < min_overlap <= 1.0:
            raise ValueError("min_overlap must be in (0, 1]")
        self.min_overlap = min_overlap

    # -- registry maintenance ------------------------------------------------
    def add_building(self, building_id: str, vocabulary: Iterable[str]) -> None:
        """Register (or atomically replace) a building's MAC vocabulary.

        Replacing keeps the building's original registration order so that
        retraining never changes how overlap ties are broken.
        """
        raise NotImplementedError

    def remove_building(self, building_id: str) -> None:
        raise NotImplementedError

    @property
    def building_ids(self) -> list[str]:
        """Registered buildings, in registration (tie-break) order."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.building_ids)

    def __contains__(self, building_id: str) -> bool:
        return building_id in set(self.building_ids)

    # -- attribution ---------------------------------------------------------
    def route(self, record: SignalRecord) -> RoutingDecision:
        """Attribute one record; raises on empty/unmatched records."""
        raise NotImplementedError

    def route_batch(self, records: Sequence[SignalRecord]) -> list[RoutingDecision]:
        return [self.route(record) for record in records]

    # -- shared validation ---------------------------------------------------
    def _probe_macs(self, record: SignalRecord, registered: int) -> set[str]:
        if registered == 0:
            raise RuntimeError("no buildings have been registered yet")
        macs = set(record.rss)
        if not macs:
            raise UnknownEnvironmentError(
                f"record {record.record_id!r} carries no RSS readings and "
                "cannot be attributed to any building")
        return macs

    def _reject(self, record: SignalRecord, best_overlap: float) -> None:
        raise UnknownEnvironmentError(
            f"record {record.record_id!r} does not match any registered "
            f"building (best overlap {best_overlap:.2f})")


class LinearScanRouter(Router):
    """Reference implementation: full vocabulary scan per query.

    Mirrors ``MultiBuildingFloorService.identify_building`` exactly; kept as
    the ground truth the inverted index is tested and benchmarked against.
    """

    def __init__(self, min_overlap: float = 0.1) -> None:
        super().__init__(min_overlap)
        self._vocabularies: dict[str, frozenset[str]] = {}

    def add_building(self, building_id: str, vocabulary: Iterable[str]) -> None:
        self._vocabularies[building_id] = frozenset(vocabulary)

    def remove_building(self, building_id: str) -> None:
        try:
            del self._vocabularies[building_id]
        except KeyError:
            raise KeyError(f"no registered building {building_id!r}") from None

    @property
    def building_ids(self) -> list[str]:
        return list(self._vocabularies)

    def route(self, record: SignalRecord) -> RoutingDecision:
        macs = self._probe_macs(record, len(self._vocabularies))
        best_building, best_overlap = None, 0.0
        for building_id, vocabulary in self._vocabularies.items():
            overlap = len(macs & vocabulary) / len(macs)
            if overlap > best_overlap:
                best_building, best_overlap = building_id, overlap
        if best_building is None or best_overlap < self.min_overlap:
            self._reject(record, best_overlap)
        return RoutingDecision(building_id=best_building, overlap=best_overlap)


class MacInvertedRouter(Router):
    """Inverted MAC→building index; attribution in ``O(|record.rss|)``.

    Every MAC maps to the set of buildings whose vocabulary contains it.  A
    query tallies, per candidate building, how many of the record's MACs hit
    that building — candidates are only the buildings sharing at least one
    MAC, so buildings with zero overlap are never visited (they could never
    win the strict-improvement scan either).
    """

    def __init__(self, min_overlap: float = 0.1) -> None:
        super().__init__(min_overlap)
        self._index: dict[str, set[str]] = {}
        self._vocabularies: dict[str, frozenset[str]] = {}
        self._positions: dict[str, int] = {}
        self._next_position = 0

    @classmethod
    def from_vocabularies(cls, vocabularies: dict[str, Iterable[str]],
                          min_overlap: float = 0.1) -> "MacInvertedRouter":
        """Build a router from an ordered ``building -> vocabulary`` mapping."""
        router = cls(min_overlap)
        for building_id, vocabulary in vocabularies.items():
            router.add_building(building_id, vocabulary)
        return router

    def add_building(self, building_id: str, vocabulary: Iterable[str]) -> None:
        vocab = frozenset(vocabulary)
        previous = self._vocabularies.get(building_id)
        if previous is not None:
            # Hot swap: touch only the postings that actually changed, so a
            # retrain whose vocabulary mostly survives costs O(|delta|), not
            # O(|vocabulary|), and routing stays correct mid-churn.
            for mac in previous - vocab:
                buildings = self._index[mac]
                buildings.discard(building_id)
                if not buildings:
                    del self._index[mac]
            added = vocab - previous
        else:
            self._positions[building_id] = self._next_position
            self._next_position += 1
            added = vocab
        self._vocabularies[building_id] = vocab
        for mac in added:
            self._index.setdefault(mac, set()).add(building_id)

    def remove_building(self, building_id: str) -> None:
        try:
            vocab = self._vocabularies.pop(building_id)
        except KeyError:
            raise KeyError(f"no registered building {building_id!r}") from None
        del self._positions[building_id]
        for mac in vocab:
            buildings = self._index[mac]
            buildings.discard(building_id)
            if not buildings:
                del self._index[mac]

    @property
    def building_ids(self) -> list[str]:
        return sorted(self._positions, key=self._positions.__getitem__)

    def vocabulary_for(self, building_id: str) -> frozenset[str]:
        try:
            return self._vocabularies[building_id]
        except KeyError:
            raise KeyError(f"no registered building {building_id!r}") from None

    def candidate_hits(self, macs: set[str]) -> dict[str, int]:
        """Per-building count of the probe MACs present in its vocabulary.

        Only buildings sharing at least one MAC with the probe appear.  This
        is the shard-local half of attribution: a partitioned deployment
        (:mod:`repro.serving.sharding`) collects these maps from every shard
        and runs the selection rule over the union.
        """
        hits: dict[str, int] = {}
        index = self._index
        for mac in macs:
            for building_id in index.get(mac, ()):
                hits[building_id] = hits.get(building_id, 0) + 1
        return hits

    @staticmethod
    def select_best(hits: dict[str, int],
                    positions: dict[str, int]) -> tuple[str | None, int]:
        """The attribution rule over candidate hit counts.

        Picks the building with the most hits; equal counts fall to the
        earliest-registered building (smallest position) — exactly the
        strict-improvement linear scan in registration order.
        """
        best_building, best_hits, best_position = None, 0, -1
        for building_id, count in hits.items():
            position = positions[building_id]
            if count > best_hits or (count == best_hits
                                     and position < best_position):
                best_building, best_hits, best_position = \
                    building_id, count, position
        return best_building, best_hits

    def route(self, record: SignalRecord) -> RoutingDecision:
        macs = self._probe_macs(record, len(self._vocabularies))
        hits = self.candidate_hits(macs)
        best_building, best_hits = self.select_best(hits, self._positions)
        best_overlap = best_hits / len(macs)
        if best_building is None or best_overlap < self.min_overlap:
            self._reject(record, best_overlap)
        return RoutingDecision(building_id=best_building, overlap=best_overlap)
