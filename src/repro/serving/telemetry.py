"""Serving telemetry: a compatibility facade over :mod:`repro.obs.metrics`.

Historically the serving layer owned the only metrics implementation in
the codebase.  The implementation now lives in
:class:`repro.obs.metrics.MetricsRegistry`, shared by the stream pipeline,
retrain executor, sampler cache and training kernels; this module keeps
the serving-flavoured names importable so existing callers and tests keep
working unchanged.

``ServingTelemetry`` is the same class with its historical name — per-shard
merging (:meth:`~repro.obs.metrics.MetricsRegistry.merged_snapshot`) and
the snapshot layout are unchanged, and it additionally inherits the new
Prometheus/JSON exposition methods.
"""

from __future__ import annotations

from ..obs.metrics import LatencyHistogram, MetricsRegistry

__all__ = ["LatencyHistogram", "ServingTelemetry"]


class ServingTelemetry(MetricsRegistry):
    """Counters plus named latency histograms behind one ``snapshot()``."""
