"""Bounded LRU/TTL prediction cache for the serving layer.

Crowdsourced positioning traffic is heavily repetitive: many phones standing
in the same spot report near-identical RSS vectors.  The cache exploits this
by keying predictions on a *canonical fingerprint* — the attributed building
plus the record's MAC set with RSS values quantised to a configurable step —
so two scans that differ only by sub-quantum RSS noise share one entry.

Entries are evicted least-recently-used once ``max_entries`` is exceeded and
expire after ``ttl_seconds`` (model hot-swaps additionally invalidate every
entry of the swapped building).  The clock is injectable so tests can drive
TTL expiry deterministically.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from ..core.types import SignalRecord

__all__ = ["fingerprint_key", "PredictionCache"]


def fingerprint_key(building_id: str, record: SignalRecord,
                    quantum: float = 1.0) -> str:
    """Canonical cache key for a record attributed to a building.

    The key hashes ``(building, sorted MAC:quantised-RSS pairs)``; the record
    id deliberately does not participate, so re-submissions of the same
    physical fingerprint by different requests share a cache entry.
    """
    if quantum <= 0.0:
        raise ValueError("quantum must be positive")
    parts = [building_id]
    rss = record.rss
    for mac in sorted(rss):
        parts.append(f"{mac}:{round(rss[mac] / quantum)}")
    return hashlib.sha1("\x1f".join(parts).encode("utf-8")).hexdigest()


@dataclass
class _Entry:
    value: object
    building_id: str | None
    inserted_at: float


class PredictionCache:
    """A bounded LRU cache with optional TTL expiry.

    Parameters
    ----------
    max_entries:
        Hard capacity; inserting beyond it evicts the least recently used
        entry.
    ttl_seconds:
        Entries older than this are treated as absent (and dropped) on
        lookup.  ``None`` disables expiry.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(self, max_entries: int = 4096,
                 ttl_seconds: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if ttl_seconds is not None and ttl_seconds <= 0.0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        entry = self._entries.get(key)
        return entry is not None and not self._expired(entry)

    def _expired(self, entry: _Entry) -> bool:
        return (self.ttl_seconds is not None
                and self._clock() - entry.inserted_at >= self.ttl_seconds)

    # ------------------------------------------------------------------ API
    def get(self, key: str) -> object | None:
        """Look up ``key``; counts a hit or miss and refreshes LRU order."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if self._expired(entry):
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.value

    def put(self, key: str, value: object,
            building_id: str | None = None) -> None:
        """Insert or refresh an entry, evicting LRU entries past capacity."""
        self._entries[key] = _Entry(value=value, building_id=building_id,
                                    inserted_at=self._clock())
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate_building(self, building_id: str) -> int:
        """Drop every entry cached for ``building_id`` (model hot swap)."""
        stale = [key for key, entry in self._entries.items()
                 if entry.building_id == building_id]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    # ----------------------------------------------------------- statistics
    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, float | int]:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
        }
