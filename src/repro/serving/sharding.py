"""Partitioned serving: per-building state sharded behind per-shard locks.

:class:`FloorServingService` guards its entire stack — registry, router,
cache, batcher — with one ``threading.RLock``, so any slow operation on one
building (a large batch, a hot swap, a model load) stalls every other
building's traffic.  The paper's system is a *per-building* model family,
which makes the building the natural unit of partitioning: this module
splits the stack into :class:`Shard` objects, each owning its own lock,
registry slice, cache partition, router postings and telemetry, and
composes them behind :class:`ShardedServingService` — the same public
surface as the one-lock service, with predictions byte-identical to it
(test-enforced).

Attribution stays global: :class:`ShardedRouter` collects per-shard
candidate hit counts (``MacInvertedRouter.candidate_hits``) and runs the
selection rule over their union with a *global* registration-order
tie-break, so a record lands on exactly the building the one-lock
``MacInvertedRouter`` — and therefore the registry's reference linear scan
— would pick.

Buildings are assigned to shards by a stable hash (CRC-32 of the building
id), so the placement survives restarts and is identical on every node of
a scaled-out deployment.
"""

from __future__ import annotations

import itertools
import threading
import time
import zlib
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import replace
from pathlib import Path

from ..core.inference import UnknownEnvironmentError
from ..core.persistence import _atomic_save_model, load_model
from ..core.pipeline import GRAFICS, GraficsConfig
from ..core.registry import BuildingPrediction, MultiBuildingFloorService
from ..core.types import FingerprintDataset, SignalRecord
from ..faults import failpoints
from ..obs.log import log_event
from .batcher import Batch, MicroBatcher
from .cache import PredictionCache, fingerprint_key
from .pool import ComputePool
from .router import MacInvertedRouter, Router, RoutingDecision
from .service import (
    ServingConfig,
    ServingResult,
    _commit_plan,
    _compute_plan,
    _dispatch_batch,
    _plan_positions,
)
from .telemetry import ServingTelemetry

__all__ = ["shard_index", "Shard", "ShardedRouter", "ShardedServingService"]


def shard_index(building_id: str, num_shards: int) -> int:
    """Stable building → shard assignment (CRC-32, process-independent).

    Python's builtin ``hash`` of a string is salted per process, which would
    scatter the same building across shards between restarts; CRC-32 keeps
    the placement deterministic everywhere the same registry is served.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    return zlib.crc32(building_id.encode("utf-8")) % num_shards


class Shard:
    """One partition's slice of the serving stack, guarded by its own lock.

    Everything per-building lives here: the registry slice holding the
    shard's models, the shard's router postings (its buildings' MAC
    vocabularies), its cache partition, its micro-batch buckets and its
    telemetry.  All of it is mutated and read under ``self.lock`` only, so
    traffic, hot swaps and evictions on one shard never contend with any
    other shard.
    """

    def __init__(self, index: int, grafics_config: GraficsConfig,
                 min_overlap: float, config: ServingConfig,
                 cache_entries: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.index = index
        self.lock = threading.RLock()
        self.registry = MultiBuildingFloorService(grafics_config,
                                                  min_overlap=min_overlap)
        self.router = MacInvertedRouter(min_overlap=min_overlap)
        self.cache = PredictionCache(max_entries=cache_entries,
                                     ttl_seconds=config.cache_ttl_seconds,
                                     clock=clock)
        self.batcher = MicroBatcher(max_batch_size=config.max_batch_size,
                                    max_delay_seconds=config.max_delay_seconds,
                                    clock=clock)
        self.telemetry = ServingTelemetry(clock=clock)
        self.completed: list[ServingResult] = []

    @property
    def building_ids(self) -> list[str]:
        return self.registry.building_ids

    def stats(self) -> dict[str, object]:
        """Per-shard gauges for the aggregated telemetry snapshot."""
        return {
            "buildings": len(self.registry.building_ids),
            "queue_depth": self.batcher.pending_count,
            "cache_entries": len(self.cache),
            "predictions_total": self.telemetry.counter("predictions_total"),
            "hot_swaps_total": self.telemetry.counter("hot_swaps_total"),
        }


class ShardedRouter(Router):
    """Building attribution over per-shard inverted indices.

    Each shard's :class:`MacInvertedRouter` holds postings for that shard's
    buildings only and is read under the shard's lock; a query collects
    candidate hit counts from every shard and applies
    :meth:`MacInvertedRouter.select_best` over the union with this router's
    *global* position map, so the winner — including the earliest-registered
    tie-break — is exactly the one-router answer.
    """

    def __init__(self, shards: Sequence[Shard],
                 min_overlap: float = 0.1) -> None:
        super().__init__(min_overlap)
        self._shards = tuple(shards)
        self._registration_lock = threading.Lock()
        self._positions: dict[str, int] = {}
        self._next_position = 0

    def _shard_for(self, building_id: str) -> Shard:
        return self._shards[shard_index(building_id, len(self._shards))]

    # -- registry maintenance ------------------------------------------------
    def add_building(self, building_id: str, vocabulary: Iterable[str]) -> None:
        shard = self._shard_for(building_id)
        with self._registration_lock:
            if building_id not in self._positions:
                self._positions[building_id] = self._next_position
                self._next_position += 1
        with shard.lock:
            shard.router.add_building(building_id, vocabulary)

    def remove_building(self, building_id: str) -> None:
        shard = self._shard_for(building_id)
        with shard.lock:
            shard.router.remove_building(building_id)
        with self._registration_lock:
            del self._positions[building_id]

    @property
    def building_ids(self) -> list[str]:
        return sorted(self._positions, key=self._positions.__getitem__)

    def vocabulary_for(self, building_id: str) -> frozenset[str]:
        return self._shard_for(building_id).router.vocabulary_for(building_id)

    # -- attribution ---------------------------------------------------------
    def route(self, record: SignalRecord) -> RoutingDecision:
        macs = self._probe_macs(record, len(self._positions))
        hits: dict[str, int] = {}
        for shard in self._shards:
            with shard.lock:
                hits.update(shard.router.candidate_hits(macs))
        # Selection runs against a position *snapshot*: a building evicted
        # between the shard sweeps and here has no position left — it could
        # not have been served either, so it drops out of the tally instead
        # of blowing up the lookup mid-selection.
        with self._registration_lock:
            positions = dict(self._positions)
        hits = {building_id: count for building_id, count in hits.items()
                if building_id in positions}
        best_building, best_hits = MacInvertedRouter.select_best(hits,
                                                                 positions)
        best_overlap = best_hits / len(macs)
        if best_building is None or best_overlap < self.min_overlap:
            self._reject(record, best_overlap)
        return RoutingDecision(building_id=best_building, overlap=best_overlap)


class ShardedServingService:
    """The one-lock serving façade, hash-partitioned across N shards.

    Drop-in for :class:`FloorServingService`: same methods, same prediction
    values (byte-identical, test-enforced), same ``ServingResult`` surface
    on the micro-batched path.  The differences are operational:

    * every shard serves, swaps and evicts under its *own* lock — a slow
      building only ever stalls the other buildings of its shard;
    * the prediction cache is partitioned (``cache_entries`` splits evenly
      across shards), so invalidations and LRU churn stay shard-local;
    * telemetry is recorded per shard and aggregated on demand, with
      per-shard gauges (queue depth, cache size, last-swap shard) in
      :meth:`telemetry_snapshot`.

    Concurrency semantics: routing reads each shard's postings under that
    shard's lock, and dispatch locks only the target shard, so a batch
    spanning shards sees a consistent *per-shard* view rather than one
    global snapshot — a record routed concurrently with a hot swap is
    served by either the old or the new model, never a mix of both.
    """

    def __init__(self, registry: MultiBuildingFloorService | None = None,
                 config: ServingConfig | None = None,
                 grafics_config: GraficsConfig | None = None,
                 num_shards: int = 4,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        source = registry or MultiBuildingFloorService(grafics_config)
        self.config = config or ServingConfig()
        self.num_shards = num_shards
        self.grafics_config = source.config
        self.min_overlap = source.min_overlap
        self._clock = clock
        per_shard_entries = max(1, self.config.cache_entries // num_shards)
        self.shards = tuple(
            Shard(index=i, grafics_config=source.config,
                  min_overlap=source.min_overlap, config=self.config,
                  cache_entries=per_shard_entries, clock=clock)
            for i in range(num_shards))
        self.router = ShardedRouter(self.shards,
                                    min_overlap=source.min_overlap)
        self.telemetry = ServingTelemetry(clock=clock)
        # One pool shared by all shards: workers are a host-level resource
        # (cores), not a per-shard one, and the generation-keyed snapshots
        # are per building, so shards never collide in a worker's cache.
        # Pool counters land in the service-level telemetry, which
        # ``merged_snapshot`` already folds together with the shards'.
        self.compute_pool: ComputePool | None = None
        if self.config.compute_workers > 0:
            self.compute_pool = ComputePool(
                self.config.compute_workers, telemetry=self.telemetry,
                start_method=self.config.compute_start_method)
        self._orphans_lock = threading.Lock()
        self._orphans: list[ServingResult] = []
        # Deterministic request IDs, minted at the sharded front door so a
        # request keeps one identity even when re-routed across shards.
        self._request_ids = itertools.count(1)
        # Partition any pre-trained buildings in *registration order* so the
        # global tie-break matches the source registry's linear scan.
        for building_id, vocabulary in source.vocabularies.items():
            shard = self.shard_for(building_id)
            shard.registry.install_model(building_id,
                                         source.model_for(building_id),
                                         vocabulary=vocabulary)
            self.router.add_building(building_id, vocabulary)

    def close(self) -> None:
        """Release the shared compute pool's worker processes, if any."""
        if self.compute_pool is not None:
            self.compute_pool.close()

    def __enter__(self) -> "ShardedServingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ----------------------------------------------------- building lifecycle
    def shard_for(self, building_id: str) -> Shard:
        """The shard owning ``building_id`` (stable CRC-32 placement)."""
        return self.shards[shard_index(building_id, self.num_shards)]

    @property
    def building_ids(self) -> list[str]:
        return sorted(building_id for shard in self.shards
                      for building_id in shard.registry.building_ids)

    def vocabulary_for(self, building_id: str) -> frozenset[str]:
        return self.shard_for(building_id).registry.vocabulary_for(building_id)

    def model_for(self, building_id: str) -> GRAFICS:
        return self.shard_for(building_id).registry.model_for(building_id)

    def fit_building(self, dataset: FingerprintDataset,
                     labels: Mapping[str, int]) -> GRAFICS:
        """Train a building on its shard and register it for routing."""
        shard = self.shard_for(dataset.building_id)
        with shard.lock:
            model = shard.registry.fit_building(dataset, labels)
            self.router.add_building(
                dataset.building_id,
                shard.registry.vocabulary_for(dataset.building_id))
            shard.cache.invalidate_building(dataset.building_id)
            return model

    def fit_corpus(self, datasets: Iterable[FingerprintDataset],
                   labels_by_building: Mapping[str, Mapping[str, int]]) -> None:
        for dataset in datasets:
            try:
                labels = labels_by_building[dataset.building_id]
            except KeyError:
                raise ValueError(
                    f"no labels provided for building {dataset.building_id!r}"
                ) from None
            self.fit_building(dataset, labels)

    def install_building(self, building_id: str, model: GRAFICS,
                         vocabulary: Iterable[str] | None = None) -> None:
        """Atomically (re)place a building's model on its shard.

        Registry entry, router postings and cache partition are updated
        under the owning shard's lock; other shards keep serving
        throughout.  Requests still queued for the building are re-routed
        against the new vocabulary *after* the shard lock is released —
        the new vocabulary may send them to a different shard, whose lock
        must not be taken while this one is held.  A batch already released
        for dispatch when the swap lands is served by the building's model
        as snapshotted at dispatch time, with unattributable records
        surfacing as rejected results (see ``_dispatch_batch``).
        """
        # Same placement as the one-lock service: before the shard lock, so
        # a kill here leaves the old model installed and the shard serving.
        failpoints.fire("swap.install", building_id=building_id)
        shard = self.shard_for(building_id)
        with shard.lock:
            shard.registry.install_model(building_id, model,
                                         vocabulary=vocabulary)
            self.router.add_building(
                building_id, shard.registry.vocabulary_for(building_id))
            shard.cache.invalidate_building(building_id)
            shard.telemetry.increment("hot_swaps_total")
            self.telemetry.set_gauge("last_swap_shard", shard.index)
            evicted = shard.batcher.evict(building_id)
        log_event("hot_swap_installed", building_id=building_id,
                  shard=shard.index, requeued=len(evicted))
        for record, _, _, request_id in evicted:
            result, target_shard, full = self._route_and_enqueue(
                record, request_id=request_id)
            if result is not None:
                with self._orphans_lock:
                    self._orphans.append(result)
            if full is not None:
                self._dispatch(target_shard, full)

    def load_building(self, building_id: str, path: str | Path) -> GRAFICS:
        """Hot-swap a building from a model saved via the persistence layer."""
        model = load_model(path)
        self.install_building(building_id, model)
        return model

    def retrain_building(self, dataset: FingerprintDataset,
                         labels: Mapping[str, int],
                         model_path: str | Path | None = None,
                         warm_start: bool = False,
                         kernel: str | None = None,
                         sampler_mode: str | None = None) -> GRAFICS:
        """Retrain one building off to the side, then hot-swap its shard.

        Training holds no lock at all — only the final install takes the
        owning shard's lock — so even the building's own shard keeps
        serving its other buildings while the replacement trains.
        ``kernel`` and ``sampler_mode`` optionally select the training
        kernel and the cold-path negative-sampler mode for this retrain,
        mirroring :meth:`FloorServingService.retrain_building`.
        """
        previous_embedding = None
        if warm_start:
            try:
                previous_embedding = self.model_for(
                    dataset.building_id).embedding
            except KeyError:
                previous_embedding = None
        with self.telemetry.time("retrain_seconds"):
            model = GRAFICS(self.grafics_config)
            model.fit(dataset, labels, warm_start=previous_embedding,
                      kernel=kernel, sampler_mode=sampler_mode)
            if model_path is not None:
                model_path = Path(model_path)
                _atomic_save_model(model, model_path)
                model = load_model(model_path)
        self.install_building(dataset.building_id, model,
                              vocabulary=frozenset(dataset.macs))
        return model

    def evict_building(self, building_id: str) -> None:
        """Remove a building from serving; queued requests surface rejected."""
        shard = self.shard_for(building_id)
        with shard.lock:
            shard.registry.remove_building(building_id)
            self.router.remove_building(building_id)
            shard.cache.invalidate_building(building_id)
            evicted = shard.batcher.evict(building_id)
        for record, _, _, request_id in evicted:
            self.telemetry.increment("rejections_total")
            with self._orphans_lock:
                self._orphans.append(ServingResult(
                    record_id=record.record_id, prediction=None,
                    source="rejected",
                    error=f"building {building_id!r} was evicted before the "
                          "request was dispatched",
                    trace_id=request_id))

    def export_registry(self) -> MultiBuildingFloorService:
        """All shards' models as one registry, in global registration order.

        The result round-trips through ``save_registry``/``load_registry``
        unchanged — reconstructing a sharded service from it reproduces both
        the shard placement (stable hash of the building id) and the
        attribution tie-break (registration order is preserved).
        """
        merged = MultiBuildingFloorService(self.grafics_config,
                                           min_overlap=self.min_overlap)
        for building_id in self.router.building_ids:
            shard = self.shard_for(building_id)
            with shard.lock:
                merged.install_model(
                    building_id, shard.registry.model_for(building_id),
                    vocabulary=shard.registry.vocabulary_for(building_id))
        return merged

    # ------------------------------------------------------ synchronous path
    def predict(self, record: SignalRecord) -> BuildingPrediction:
        """Route, consult the shard's cache and predict one sample."""
        return self.predict_batch([record])[0]

    def predict_batch(self,
                      records: Sequence[SignalRecord]) -> list[BuildingPrediction]:
        """Predict several samples, grouped per shard then per building.

        Values are identical to :meth:`FloorServingService.predict_batch`
        (and therefore to the sequential registry reference): per-record
        incremental embedding is deterministic and independent of batch
        composition, and the global-tie-break router attributes each record
        to the same building.  Raises :class:`UnknownEnvironmentError` on
        the first record that cannot be attributed, before any prediction
        is computed, mirroring the reference.
        """
        records = list(records)
        self.telemetry.increment("requests_total", len(records))
        routed = []
        for record in records:
            try:
                routed.append(self.router.route(record))
            except UnknownEnvironmentError:
                self.telemetry.increment("rejections_total")
                raise

        results: list[BuildingPrediction | None] = [None] * len(records)
        by_shard: dict[int, list[int]] = {}
        for position, decision in enumerate(routed):
            index = shard_index(decision.building_id, self.num_shards)
            by_shard.setdefault(index, []).append(position)
        for index, positions in by_shard.items():
            shard = self.shards[index]
            with shard.telemetry.time("request_seconds"):
                self._predict_on_shard(shard, records, routed, positions,
                                       results)
        return results

    def _predict_on_shard(self, shard: Shard,
                          records: Sequence[SignalRecord],
                          routed: Sequence[RoutingDecision],
                          positions: Sequence[int],
                          results: list[BuildingPrediction | None]) -> None:
        """One shard's slice through the shared synchronous serving core.

        The shard lock covers only the plan (cache lookups, model
        snapshots) and commit (cache fills) phases; the engine computation
        between them is mutation-free and runs unlocked, so cold predicts
        racing on one shard — or racing that shard's hot swaps — no longer
        serialise.
        """
        with shard.lock:
            plan = _plan_positions(records, routed, positions,
                                   registry=shard.registry, cache=shard.cache,
                                   telemetry=shard.telemetry,
                                   config=self.config, results=results)
        outputs = _compute_plan(records, plan, telemetry=shard.telemetry,
                                pool=self.compute_pool)
        with shard.lock:
            _commit_plan(routed, plan, outputs, registry=shard.registry,
                         cache=shard.cache, telemetry=shard.telemetry,
                         config=self.config, results=results)

    # ---------------------------------------------------- micro-batched path
    def submit(self, record: SignalRecord) -> ServingResult | None:
        """Submit one request to the owning shard's micro-batching intake.

        A size-triggered batch is dispatched inline with the shard lock
        released during the engine computation, mirroring the synchronous
        path: a full batch on one shard stalls neither that shard's other
        intake nor any other shard.
        """
        self.telemetry.increment("requests_total")
        result, shard, full = self._route_and_enqueue(record)
        if full is not None:
            self._dispatch(shard, full)
        return result

    def _route_and_enqueue(
            self, record: SignalRecord, request_id: str | None = None,
    ) -> tuple[ServingResult | None, Shard | None, Batch | None]:
        """Route one record into its shard's cache/batcher.

        Returns ``(result, shard, full_batch)``; a returned full batch must
        be dispatched by the caller *without* holding the shard lock.  A
        fresh request ID is minted unless the caller passes the one a
        previous intake already assigned (the hot-swap re-route path).
        """
        if request_id is None:
            request_id = f"req{next(self._request_ids):06d}"
        try:
            decision = self.router.route(record)
        except UnknownEnvironmentError as error:
            self.telemetry.increment("rejections_total")
            return ServingResult(record_id=record.record_id,
                                 prediction=None, source="rejected",
                                 error=str(error),
                                 trace_id=request_id), None, None
        shard = self.shard_for(decision.building_id)
        with shard.lock:
            key = None
            if self.config.enable_cache:
                key = fingerprint_key(decision.building_id, record,
                                      quantum=self.config.rss_quantum)
                cached = shard.cache.get(key)
                if cached is not None:
                    shard.telemetry.increment("cache_hits_total")
                    shard.telemetry.increment("predictions_total")
                    return ServingResult(
                        record_id=record.record_id,
                        prediction=replace(cached,
                                           record_id=record.record_id),
                        source="cache", trace_id=request_id), shard, None
                shard.telemetry.increment("cache_misses_total")
            full = shard.batcher.enqueue(decision.building_id,
                                         (record, decision, key, request_id))
        return None, shard, full

    def poll(self) -> list[ServingResult]:
        """Dispatch deadline-expired batches on every shard; collect results."""
        with self._orphans_lock:
            completed, self._orphans = self._orphans, []
        for shard in self.shards:
            with shard.lock:
                due = list(shard.batcher.due())
            for batch in due:
                self._dispatch(shard, batch)
            with shard.lock:
                completed.extend(shard.completed)
                shard.completed = []
        return completed

    def drain(self) -> list[ServingResult]:
        """Flush every shard's pending batches; collect all results."""
        with self._orphans_lock:
            completed, self._orphans = self._orphans, []
        for shard in self.shards:
            with shard.lock:
                pending = list(shard.batcher.drain())
            for batch in pending:
                self._dispatch(shard, batch)
            with shard.lock:
                completed.extend(shard.completed)
                shard.completed = []
        return completed

    @property
    def pending_count(self) -> int:
        return sum(shard.batcher.pending_count for shard in self.shards)

    def _dispatch(self, shard: Shard, batch: Batch) -> None:
        """Three-phase dispatch on the owning shard (lock must not be held).

        The buffer callback re-reads ``shard.completed`` per call (under
        the shard lock) because ``poll``/``drain`` swap the list out.
        """
        _dispatch_batch(batch, lock=shard.lock, registry=shard.registry,
                        cache=shard.cache, telemetry=shard.telemetry,
                        config=self.config,
                        buffer_result=lambda r: shard.completed.append(r),
                        pool=self.compute_pool)

    # ---------------------------------------------------------- observability
    def telemetry_snapshot(self) -> dict[str, object]:
        """Aggregated counters/latencies plus per-shard gauges and stats.

        Counters are the *sum* over shards plus the service-level ones
        (requests, rejections), so ``predictions_total`` always equals
        requests minus rejections minus still-pending work, no matter which
        shard served what.
        """
        for shard in self.shards:
            self.telemetry.set_gauge(f"shard{shard.index}_queue_depth",
                                     shard.batcher.pending_count)
            self.telemetry.set_gauge(f"shard{shard.index}_cache_entries",
                                     len(shard.cache))
        snapshot = self.telemetry.merged_snapshot(
            shard.telemetry for shard in self.shards)
        cache_stats: dict[str, float | int] = {
            "entries": 0, "max_entries": 0, "hits": 0, "misses": 0,
            "evictions": 0, "expirations": 0, "invalidations": 0}
        for shard in self.shards:
            for name, value in shard.cache.stats().items():
                if name in cache_stats:
                    cache_stats[name] += value
        lookups = cache_stats["hits"] + cache_stats["misses"]
        cache_stats["hit_rate"] = round(
            cache_stats["hits"] / lookups, 4) if lookups else 0.0
        snapshot["cache"] = cache_stats
        pending: dict[str, int] = {}
        for shard in self.shards:
            pending.update(shard.batcher.pending_by_building())
        snapshot["pending"] = pending
        snapshot["buildings"] = len(self.building_ids)
        snapshot["shards"] = {str(shard.index): shard.stats()
                              for shard in self.shards}
        if self.compute_pool is not None:
            snapshot["compute_pool"] = self.compute_pool.stats()
        return snapshot
