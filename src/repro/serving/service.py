"""The serving façade: router → cache → batcher → per-building engines.

:class:`FloorServingService` wraps a :class:`MultiBuildingFloorService`
registry with the production plumbing the research pipeline lacks:

* **routing** — building attribution via the O(|record.rss|) inverted MAC
  index (:mod:`repro.serving.router`), kept exactly equivalent to the
  registry's reference linear scan;
* **caching** — a bounded LRU/TTL prediction cache keyed on the canonical
  quantised fingerprint (:mod:`repro.serving.cache`);
* **micro-batching** — an asynchronous ``submit``/``poll``/``drain`` intake
  that coalesces requests into per-building batches with size- and
  deadline-triggered dispatch (:mod:`repro.serving.batcher`);
* **telemetry** — counters and latency histograms for every stage
  (:mod:`repro.serving.telemetry`);
* **hot swap** — per-building retrain-and-replace through the persistence
  layer, atomic with respect to concurrent serving calls.

The synchronous :meth:`predict` / :meth:`predict_batch` path computes
predictions identical to the sequential
``MultiBuildingFloorService.predict`` reference — per-record incremental
embedding is deterministic and independent of batch composition — which is
what makes the cache and the grouped dispatch safe to layer on top.  The
one deliberate deviation: with caching enabled, records that agree on the
quantised fingerprint (RSS rounded to ``rss_quantum``) share one cached
prediction instead of each being recomputed.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, replace
from pathlib import Path

from ..core.inference import UnknownEnvironmentError
from ..core.persistence import _atomic_save_model, load_model
from ..core.pipeline import GRAFICS, GraficsConfig
from ..core.registry import BuildingPrediction, MultiBuildingFloorService
from ..core.types import FingerprintDataset, SignalRecord
from ..faults import failpoints
from ..obs import runtime as obs
from ..obs.log import log_event
from .batcher import Batch, MicroBatcher
from .cache import PredictionCache, fingerprint_key
from .pool import ComputePool, WorkerCrashError
from .router import MacInvertedRouter
from .telemetry import ServingTelemetry

__all__ = ["ServingConfig", "ServingResult", "FloorServingService"]


@dataclass
class _ServePlan:
    """The locked-phase outcome of one ``predict_batch`` slice.

    Cache hits are already written into ``results`` when the plan is built;
    what remains is the per-building engine work, pinned to the *model
    snapshots* taken under the lock so the computation can run without it.
    """

    misses: list[tuple[str, object, list[int]]]  # (building, model, positions)
    keys: dict[int, str]
    served: int                                  # positions covered (hits + misses)


def _plan_positions(records: Sequence[SignalRecord],
                    routed: Sequence, positions: Iterable[int],
                    *, registry: MultiBuildingFloorService,
                    cache: PredictionCache, telemetry: ServingTelemetry,
                    config: ServingConfig,
                    results: list[BuildingPrediction | None]) -> _ServePlan:
    """Cache lookups + model snapshots for a slice of a batch (lock held).

    The first of the three phases of the synchronous serving core, shared
    verbatim by the one-lock service (slice = the whole batch) and by each
    shard of the sharded service (slice = that shard's positions): the
    "predictions byte-identical" guarantee between the two is structural
    because this is literally the same code.  The caller holds whatever
    lock guards ``registry``/``cache``/``telemetry``.
    """
    with obs.span("serving.plan") as plan_span:
        positions = list(positions)
        miss_positions: dict[str, list[int]] = {}
        keys: dict[int, str] = {}
        for position in positions:
            record, decision = records[position], routed[position]
            if config.enable_cache:
                key = fingerprint_key(decision.building_id, record,
                                      quantum=config.rss_quantum)
                keys[position] = key
                cached = cache.get(key)
                if cached is not None:
                    telemetry.increment("cache_hits_total")
                    results[position] = replace(cached,
                                                record_id=record.record_id)
                    continue
                telemetry.increment("cache_misses_total")
            miss_positions.setdefault(decision.building_id, []).append(position)

        misses = []
        for building_id, miss in miss_positions.items():
            try:
                model = registry.model_for(building_id)
            except KeyError:
                # A building can be evicted between routing and the serving
                # lock (sharded routing, or the lock-light window of the
                # one-lock service).  Surface the clean rejection routing a
                # vanished building would have produced.
                raise UnknownEnvironmentError(
                    f"building {building_id!r} was evicted between routing "
                    "and dispatch") from None
            misses.append((building_id, model, miss))
        plan_span.set("positions", len(positions))
        plan_span.set("miss_groups", len(misses))
        return _ServePlan(misses=misses, keys=keys, served=len(positions))


def _still_installed(registry: MultiBuildingFloorService, building_id: str,
                     model) -> bool:
    """Is ``model`` still the installed model of ``building_id``?

    The stale-swap cache guard: predictions computed during the unlocked
    phase are cached only while their snapshot model is still live — a hot
    swap or eviction already invalidated the building's entries, and
    re-inserting a pre-swap prediction would resurrect exactly the
    staleness the invalidation removed.
    """
    try:
        return registry.model_for(building_id) is model
    except KeyError:
        return False


def _compute_plan(records: Sequence[SignalRecord], plan: _ServePlan,
                  *, telemetry: ServingTelemetry,
                  pool: ComputePool | None = None) -> list[list]:
    """Run the planned engine work — *without* any serving lock.

    Online inference is mutation-free (overlay-based), so concurrent
    computations against one model snapshot need no mutual exclusion; only
    the thread-safe telemetry is touched.  Returns one prediction list per
    planned miss group, in plan order.

    With a ``pool``, each miss group's engine work runs in worker
    processes against the shipped model snapshot (byte-identical output:
    ``independent=True`` inference is per-record deterministic and a
    pickled model predicts exactly like its source).  The ``serve.compute``
    failpoint is still evaluated here, in the parent — one hit per call,
    same process-global counter as the in-process fire — but its effect
    executes inside the worker computing the first miss group; a batch of
    pure cache hits counts the hit with no compute left to fault.  The
    pool records compute timings and batch counters itself, from the
    workers' own measurements.
    """
    with obs.span("serving.compute") as compute_span:
        if pool is None:
            directives = None
            failpoints.fire("serve.compute")
        else:
            directives = failpoints.evaluate("serve.compute")
        outputs = []
        computed = 0
        for index, (building_id, model, miss) in enumerate(plan.misses):
            batch = [records[i] for i in miss]
            if pool is None:
                with telemetry.time("batch_seconds"):
                    floor_predictions = model.predict_batch(batch,
                                                            independent=True)
                telemetry.increment("batches_total")
                telemetry.increment("batched_records_total", len(batch))
            else:
                floor_predictions = pool.compute(
                    building_id, model, batch,
                    directives=directives if index == 0 else None)
            computed += len(batch)
            outputs.append(floor_predictions)
        compute_span.set("records", computed)
        return outputs


def _commit_plan(routed: Sequence, plan: _ServePlan, outputs: list[list],
                 *, registry: MultiBuildingFloorService,
                 cache: PredictionCache, telemetry: ServingTelemetry,
                 config: ServingConfig,
                 results: list[BuildingPrediction | None]) -> None:
    """Fill results and the cache from computed predictions (lock held again).

    Cache fills go through the :func:`_still_installed` stale-swap guard;
    the computed predictions themselves are always returned — the request
    was routed and served by the model that was live when it was planned.
    """
    with obs.span("serving.commit"):
        for (building_id, model, miss), floor_predictions in zip(plan.misses,
                                                                 outputs):
            cacheable = (config.enable_cache
                         and _still_installed(registry, building_id, model))
            for position, floor_prediction in zip(miss, floor_predictions):
                prediction = BuildingPrediction(
                    record_id=floor_prediction.record_id,
                    building_id=building_id,
                    floor=floor_prediction.floor,
                    mac_overlap=routed[position].overlap,
                    distance=floor_prediction.distance)
                results[position] = prediction
                if cacheable:
                    cache.put(plan.keys[position], prediction,
                              building_id=building_id)
        telemetry.increment("predictions_total", plan.served)


def _dispatch_batch(batch: Batch, *, lock,
                    registry: MultiBuildingFloorService,
                    cache: PredictionCache, telemetry: ServingTelemetry,
                    config: ServingConfig,
                    buffer_result: Callable[[ServingResult], None],
                    pool: ComputePool | None = None) -> None:
    """Run one released micro-batch through the engine; buffer its results.

    Shared by the one-lock service and every shard, for the same
    byte-identity reason as the :func:`_plan_positions` /
    :func:`_compute_plan` / :func:`_commit_plan` trio — and with the same
    locking shape: the caller must *not* hold ``lock``; it is taken only to
    snapshot the model and to commit results, while the engine computation
    in between runs unlocked (online inference is mutation-free).  A batch
    whose building vanished between release and dispatch surfaces as
    rejected results, exactly as an eviction of the still-queued requests
    would have; a batch overlapping a hot swap is served wholly by the
    snapshot model — the building's *current* model at dispatch time, which
    may post-date the routing decision — and skips the cache fill (the
    stale-put guard).  If that newer model can no longer attribute the
    batch's records (their MACs left the vocabulary), the whole batch
    surfaces as rejected instead of the exception escaping and losing the
    sibling results.  ``buffer_result`` is invoked under ``lock`` so the
    owner's completion buffer may be swapped concurrently by
    ``poll``/``drain``.
    """
    def reject_all(error: str) -> None:
        with lock:
            for record, _, _, request_id in batch.items:
                telemetry.increment("rejections_total")
                buffer_result(ServingResult(record_id=record.record_id,
                                            prediction=None,
                                            source="rejected", error=error,
                                            trace_id=request_id))

    with obs.span("serving.dispatch") as dispatch_span:
        dispatch_span.set("building", batch.building_id)
        dispatch_span.set("reason", batch.reason)
        dispatch_span.set("size", len(batch.items))
        telemetry.observe("queue_wait_seconds", batch.queued_seconds)
        with lock:
            try:
                model = registry.model_for(batch.building_id)
            except KeyError:
                reject_all(f"building {batch.building_id!r} was evicted "
                           "before the request was dispatched")
                return
        records = [record for record, _, _, _ in batch.items]
        if pool is None:
            failpoints.fire("serve.compute", building_id=batch.building_id)
            try:
                with telemetry.time("batch_seconds"):
                    floor_predictions = model.predict_batch(records,
                                                            independent=True)
            except UnknownEnvironmentError as error:
                reject_all(str(error))
                return
            telemetry.increment("batches_total")
            telemetry.increment("batched_records_total", len(records))
        else:
            # The parent decides the serve.compute hit (keeping the
            # process-global fault counter deterministic); the worker
            # computing the batch executes it.  A worker dying mid-batch
            # surfaces as retryable rejections — never a hang — while the
            # pool respawns the worker underneath.
            directives = failpoints.evaluate("serve.compute",
                                             building_id=batch.building_id)
            try:
                floor_predictions = pool.compute(batch.building_id, model,
                                                 records,
                                                 directives=directives)
            except (UnknownEnvironmentError, WorkerCrashError) as error:
                reject_all(str(error))
                return
        telemetry.increment(f"batch_flush_{batch.reason}_total")
        telemetry.increment("predictions_total", len(records))
        with lock:
            cacheable = (config.enable_cache
                         and _still_installed(registry, batch.building_id,
                                              model))
            for (record, decision, key, request_id), floor_prediction in zip(
                    batch.items, floor_predictions):
                prediction = BuildingPrediction(
                    record_id=floor_prediction.record_id,
                    building_id=batch.building_id,
                    floor=floor_prediction.floor,
                    mac_overlap=decision.overlap,
                    distance=floor_prediction.distance)
                if cacheable and key is not None:
                    cache.put(key, prediction, building_id=batch.building_id)
                buffer_result(ServingResult(record_id=record.record_id,
                                            prediction=prediction,
                                            source="batch",
                                            trace_id=request_id))


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of the serving stack."""

    max_batch_size: int = 32
    max_delay_seconds: float = 0.05
    cache_entries: int = 4096
    cache_ttl_seconds: float | None = None
    rss_quantum: float = 1.0
    enable_cache: bool = True
    #: Cold-path compute processes.  0 (default) keeps today's in-process
    #: path, byte-for-byte; N >= 1 puts a persistent
    #: :class:`~repro.serving.pool.ComputePool` of N workers behind the
    #: plan/compute/commit split — plan and commit stay in-process under
    #: the serving locks, only the engine work crosses the process
    #: boundary, and predictions stay byte-identical either way.
    compute_workers: int = 0
    #: Worker start method: ``None`` → ``"spawn"`` (always safe to respawn
    #: after a crash).  ``"fork"`` starts workers far faster but forks a
    #: possibly multi-threaded parent on respawn; opt in deliberately.
    compute_start_method: str | None = None

    def __post_init__(self) -> None:
        # The other fields are validated by the components they configure;
        # the quantum would otherwise only fail on the first cached lookup.
        if self.rss_quantum <= 0.0:
            raise ValueError("rss_quantum must be positive")
        if self.compute_workers < 0:
            raise ValueError("compute_workers must be >= 0 "
                             "(0 disables the compute pool)")
        if self.compute_start_method is not None and self.compute_workers == 0:
            raise ValueError("compute_start_method is only meaningful with "
                             "compute_workers > 0")


@dataclass(frozen=True)
class ServingResult:
    """Outcome of one asynchronously submitted request."""

    record_id: str
    prediction: BuildingPrediction | None
    source: str  # "cache" | "batch" | "rejected"
    error: str | None = None
    #: Request ID minted at intake, carried through dispatch and every
    #: rejection path (mid-flight eviction, post-swap unattributable), so a
    #: rejected result can be correlated with logs and traces.
    trace_id: str | None = None

    @property
    def ok(self) -> bool:
        return self.prediction is not None


class FloorServingService:
    """Production serving stack over a multi-building GRAFICS registry."""

    def __init__(self, registry: MultiBuildingFloorService | None = None,
                 config: ServingConfig | None = None,
                 grafics_config: GraficsConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.registry = registry or MultiBuildingFloorService(grafics_config)
        self.config = config or ServingConfig()
        self._clock = clock
        self._lock = threading.RLock()
        self.router = MacInvertedRouter.from_vocabularies(
            self.registry.vocabularies, min_overlap=self.registry.min_overlap)
        self.cache = PredictionCache(max_entries=self.config.cache_entries,
                                     ttl_seconds=self.config.cache_ttl_seconds,
                                     clock=clock)
        self.batcher = MicroBatcher(max_batch_size=self.config.max_batch_size,
                                    max_delay_seconds=self.config.max_delay_seconds,
                                    clock=clock)
        self.telemetry = ServingTelemetry(clock=clock)
        # Only a compute_workers > 0 config pays the worker-process
        # startup cost; the default stays pool-free and byte-identical.
        self.compute_pool: ComputePool | None = None
        if self.config.compute_workers > 0:
            self.compute_pool = ComputePool(
                self.config.compute_workers, telemetry=self.telemetry,
                start_method=self.config.compute_start_method)
        self._completed: list[ServingResult] = []
        # Deterministic request IDs (no RNG): minted at intake, threaded
        # through queued items into results and rejection paths.
        self._request_ids = itertools.count(1)

    def close(self) -> None:
        """Release the compute pool's worker processes, if any.

        Idempotent.  Close when done serving: pooled compute after close
        surfaces as :class:`~repro.serving.pool.WorkerCrashError`.  A
        service with ``compute_workers=0`` has nothing to release.
        """
        if self.compute_pool is not None:
            self.compute_pool.close()

    def __enter__(self) -> "FloorServingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ----------------------------------------------------- building lifecycle
    @property
    def building_ids(self) -> list[str]:
        return self.registry.building_ids

    @property
    def grafics_config(self):
        """The GRAFICS configuration new and retrained models are built with."""
        return self.registry.config

    def vocabulary_for(self, building_id: str) -> frozenset[str]:
        """The attribution vocabulary of one trained building."""
        return self.registry.vocabulary_for(building_id)

    def model_for(self, building_id: str):
        """The live model of one trained building."""
        return self.registry.model_for(building_id)

    def export_registry(self) -> MultiBuildingFloorService:
        """The registry backing this service, for persistence checkpoints.

        Exists so callers (the stream checkpoint, operational tooling) can
        treat the one-lock and the sharded service uniformly —
        :meth:`repro.serving.sharding.ShardedServingService.export_registry`
        materialises the same view from its shards.
        """
        return self.registry

    def fit_building(self, dataset: FingerprintDataset,
                     labels: Mapping[str, int]) -> GRAFICS:
        """Train a building in place and register it for routing."""
        with self._lock:
            model = self.registry.fit_building(dataset, labels)
            self._register(dataset.building_id)
            return model

    def fit_corpus(self, datasets: Iterable[FingerprintDataset],
                   labels_by_building: Mapping[str, Mapping[str, int]]) -> None:
        for dataset in datasets:
            try:
                labels = labels_by_building[dataset.building_id]
            except KeyError:
                raise ValueError(
                    f"no labels provided for building {dataset.building_id!r}"
                ) from None
            self.fit_building(dataset, labels)

    def install_building(self, building_id: str, model: GRAFICS,
                         vocabulary: Iterable[str] | None = None) -> None:
        """Atomically (re)place a building's model — the hot-swap primitive.

        The registry entry, the router index and the cache are updated under
        one lock, so a concurrent ``predict`` sees either the old model or
        the new one, never a mix.  Requests still queued for the building
        were routed against the old vocabulary; they are re-routed against
        the new one (and re-queued, dispatched or rejected accordingly).  A
        batch already released for dispatch when the swap lands is served by
        the building's model as snapshotted at dispatch time — the same
        "whichever model was installed when it was planned" semantics as
        the synchronous path — with records the newer model cannot
        attribute surfacing as rejected results rather than crashing the
        dispatch.
        """
        # Fired before the lock: a kill here models a process dying on the
        # way into a swap — the installed model must remain the old one.
        failpoints.fire("swap.install", building_id=building_id)
        full_batches: list[Batch] = []
        with self._lock:
            self.registry.install_model(building_id, model,
                                        vocabulary=vocabulary)
            self.router.add_building(building_id,
                                     self.registry.vocabulary_for(building_id))
            self.cache.invalidate_building(building_id)
            self.telemetry.increment("hot_swaps_total")
            evicted = self.batcher.evict(building_id)
            for record, _, _, request_id in evicted:
                # Re-routed requests keep their original intake ID so the
                # eventual result is attributable to the original submit.
                result, full = self._route_and_enqueue(record,
                                                       request_id=request_id)
                if result is not None:
                    self._completed.append(result)
                if full is not None:
                    full_batches.append(full)
        log_event("hot_swap_installed", building_id=building_id,
                  requeued=len(evicted))
        for batch in full_batches:
            self._dispatch(batch)

    def load_building(self, building_id: str, path: str | Path) -> GRAFICS:
        """Hot-swap a building from a model saved via the persistence layer."""
        model = load_model(path)
        self.install_building(building_id, model)
        return model

    def retrain_building(self, dataset: FingerprintDataset,
                         labels: Mapping[str, int],
                         model_path: str | Path | None = None,
                         warm_start: bool = False,
                         kernel: str | None = None,
                         sampler_mode: str | None = None) -> GRAFICS:
        """Retrain one building off to the side, then hot-swap it in.

        Training happens on a fresh :class:`GRAFICS` instance, so the live
        model keeps serving until the replacement is ready.  When
        ``model_path`` is given the new model is round-tripped through
        :func:`save_model`/:func:`load_model` (written to a temporary file
        and atomically renamed), so what goes live is exactly what a later
        restart would load from disk.  ``warm_start=True`` initialises the
        embedding from the building's currently installed model (nodes
        surviving the retrain resume from their learned vectors) — the
        continuous-learning path, where retrains happen on a sliding window
        that mostly overlaps the previous one.  ``kernel`` optionally selects
        the training kernel for this retrain (``"fused"`` halves fit time;
        the model records the kernel, so its online path keeps using it);
        ``sampler_mode`` likewise selects the cold-path negative-sampler
        mode (``"delta"`` skips the per-predict O(V) alias rebuild) for the
        installed model's serving traffic.
        """
        previous_embedding = None
        if warm_start and dataset.building_id in self.registry.building_ids:
            previous_embedding = self.registry.model_for(
                dataset.building_id).embedding
        with self.telemetry.time("retrain_seconds"):
            model = GRAFICS(self.registry.config)
            model.fit(dataset, labels, warm_start=previous_embedding,
                      kernel=kernel, sampler_mode=sampler_mode)
            if model_path is not None:
                model_path = Path(model_path)
                _atomic_save_model(model, model_path)
                model = load_model(model_path)
        self.install_building(dataset.building_id, model,
                              vocabulary=frozenset(dataset.macs))
        return model

    def evict_building(self, building_id: str) -> None:
        """Remove a building from serving entirely.

        Requests already queued for the building can no longer be served;
        they surface from the next :meth:`poll`/:meth:`drain` as rejected
        results rather than crashing the dispatch or vanishing.
        """
        with self._lock:
            self.registry.remove_building(building_id)
            self.router.remove_building(building_id)
            self.cache.invalidate_building(building_id)
            for record, _, _, request_id in self.batcher.evict(building_id):
                self.telemetry.increment("rejections_total")
                self._completed.append(ServingResult(
                    record_id=record.record_id, prediction=None,
                    source="rejected",
                    error=f"building {building_id!r} was evicted before the "
                          "request was dispatched",
                    trace_id=request_id))

    def _register(self, building_id: str) -> None:
        self.router.add_building(building_id,
                                 self.registry.vocabulary_for(building_id))
        self.cache.invalidate_building(building_id)

    # ------------------------------------------------------ synchronous path
    def predict(self, record: SignalRecord) -> BuildingPrediction:
        """Route, consult the cache and predict one sample synchronously."""
        return self.predict_batch([record])[0]

    def predict_batch(self, records: Sequence[SignalRecord]) -> list[BuildingPrediction]:
        """Predict several samples, grouped per attributed building.

        Every prediction actually computed is identical to the sequential
        ``MultiBuildingFloorService.predict`` reference path, in input
        order; with the cache enabled, a record whose *quantised* fingerprint
        (RSS rounded to ``rss_quantum``) matches a cached entry is served
        that entry instead of being recomputed — exact re-submissions always
        get the identical prediction, while records differing only by
        sub-quantum RSS noise deliberately share one.  Set
        ``enable_cache=False`` (or shrink ``rss_quantum``) for strict
        per-record recomputation.  Raises :class:`UnknownEnvironmentError`
        on the first record that cannot be attributed, mirroring the
        reference.

        Locking: routing and cache lookups hold the service lock, the
        engine computation does not (online inference is mutation-free), so
        concurrent cold predictions proceed in parallel and never stall
        swaps or evictions.  A request overlapping a hot swap is served
        entirely by whichever model was installed when it was planned.
        """
        records = list(records)
        with self.telemetry.time("request_seconds"), \
                obs.span("serving.request") as request_span:
            request_span.set("records", len(records))
            results: list[BuildingPrediction | None] = [None] * len(records)
            with self._lock:
                self.telemetry.increment("requests_total", len(records))
                routed = []
                with obs.span("serving.route"):
                    for record in records:
                        try:
                            routed.append(self.router.route(record))
                        except UnknownEnvironmentError:
                            self.telemetry.increment("rejections_total")
                            raise
                plan = _plan_positions(records, routed, range(len(records)),
                                       registry=self.registry,
                                       cache=self.cache,
                                       telemetry=self.telemetry,
                                       config=self.config, results=results)
            # Engine work runs without the lock: cold predictions are
            # mutation-free, so they neither need the write lock nor bump
            # the model graph's version, and concurrent cold traffic on
            # this service no longer serialises behind the cache/batcher
            # bookkeeping.  Each miss group is served by the model that
            # was installed when it was planned (never a mix of two).
            outputs = _compute_plan(records, plan, telemetry=self.telemetry,
                                    pool=self.compute_pool)
            with self._lock:
                _commit_plan(routed, plan, outputs, registry=self.registry,
                             cache=self.cache, telemetry=self.telemetry,
                             config=self.config, results=results)
            return results

    # ---------------------------------------------------- micro-batched path
    def submit(self, record: SignalRecord) -> ServingResult | None:
        """Submit one request to the micro-batching intake.

        Returns immediately with a :class:`ServingResult` when the request
        is served from cache or rejected; returns ``None`` when it was
        queued (its result will surface from :meth:`poll` or
        :meth:`drain`).  A size-triggered batch is dispatched inline —
        with the lock released during the engine computation, like the
        synchronous path, so a full batch never stalls other intake.
        """
        with self._lock:
            self.telemetry.increment("requests_total")
            result, full = self._route_and_enqueue(record)
        if full is not None:
            self._dispatch(full)
        return result

    def _route_and_enqueue(
            self, record: SignalRecord, request_id: str | None = None,
    ) -> tuple[ServingResult | None, Batch | None]:
        """Route one record through cache/batcher (lock held by caller).

        Returns ``(result, full_batch)``: a result when the record was
        served from cache or rejected, and/or the batch its enqueue filled
        — which the caller must dispatch *after* releasing the lock.  A
        fresh request ID is minted unless the caller passes the one a
        previous intake already assigned (the hot-swap re-route path).
        """
        if request_id is None:
            request_id = f"req{next(self._request_ids):06d}"
        try:
            decision = self.router.route(record)
        except UnknownEnvironmentError as error:
            self.telemetry.increment("rejections_total")
            return ServingResult(record_id=record.record_id,
                                 prediction=None, source="rejected",
                                 error=str(error),
                                 trace_id=request_id), None

        key = None
        if self.config.enable_cache:
            key = fingerprint_key(decision.building_id, record,
                                  quantum=self.config.rss_quantum)
            cached = self.cache.get(key)
            if cached is not None:
                self.telemetry.increment("cache_hits_total")
                self.telemetry.increment("predictions_total")
                return ServingResult(
                    record_id=record.record_id,
                    prediction=replace(cached, record_id=record.record_id),
                    source="cache", trace_id=request_id), None
            self.telemetry.increment("cache_misses_total")

        full = self.batcher.enqueue(decision.building_id,
                                    (record, decision, key, request_id))
        return None, full

    def poll(self) -> list[ServingResult]:
        """Dispatch deadline-expired batches and collect finished results."""
        with self._lock:
            due = list(self.batcher.due())
        for batch in due:
            self._dispatch(batch)
        with self._lock:
            completed, self._completed = self._completed, []
            return completed

    def drain(self) -> list[ServingResult]:
        """Flush every pending batch and collect all finished results."""
        with self._lock:
            pending = list(self.batcher.drain())
        for batch in pending:
            self._dispatch(batch)
        with self._lock:
            completed, self._completed = self._completed, []
            return completed

    @property
    def pending_count(self) -> int:
        return self.batcher.pending_count

    def _dispatch(self, batch: Batch) -> None:
        """Three-phase dispatch of a released batch (must not hold the lock)."""
        # The buffer callback re-reads ``self._completed`` on every call
        # (under the lock): ``poll``/``drain`` swap the list out, and a
        # result committed after a swap must land in the *new* buffer.
        _dispatch_batch(batch, lock=self._lock, registry=self.registry,
                        cache=self.cache, telemetry=self.telemetry,
                        config=self.config,
                        buffer_result=lambda r: self._completed.append(r),
                        pool=self.compute_pool)

    # ---------------------------------------------------------- observability
    def telemetry_snapshot(self) -> dict[str, object]:
        """Telemetry counters/latencies plus cache and batcher gauges."""
        snapshot = self.telemetry.snapshot()
        snapshot["cache"] = self.cache.stats()
        snapshot["pending"] = self.batcher.pending_by_building()
        snapshot["buildings"] = len(self.registry.building_ids)
        if self.compute_pool is not None:
            snapshot["compute_pool"] = self.compute_pool.stats()
        return snapshot
