"""Production serving layer over the GRAFICS modeling core.

The research pipeline (:mod:`repro.core`) answers "which floor is this
sample on?" one record at a time.  This package turns that into a serving
stack able to front a large multi-building registry under heavy traffic:

* :mod:`~repro.serving.router` — O(|record.rss|) building attribution via an
  inverted MAC→building index (plus the linear-scan reference);
* :mod:`~repro.serving.cache` — bounded LRU/TTL prediction cache keyed on
  canonical quantised fingerprints;
* :mod:`~repro.serving.batcher` — per-building micro-batching with size- and
  deadline-triggered dispatch;
* :mod:`~repro.serving.telemetry` — latency histograms, throughput counters
  and ``snapshot()`` export;
* :mod:`~repro.serving.service` — the :class:`FloorServingService` façade
  composing all of the above with per-building model hot swap;
* :mod:`~repro.serving.sharding` — the same façade hash-partitioned across
  N :class:`Shard`\\ s, each with its own lock, cache partition, router
  postings and telemetry (:class:`ShardedServingService`);
* :mod:`~repro.serving.pool` — a persistent :class:`ComputePool` of worker
  processes behind the cold path's plan/compute/commit split, scaling cold
  serving with cores instead of GIL-bound threads (``compute_workers``).
"""

from .batcher import Batch, MicroBatcher
from .cache import PredictionCache, fingerprint_key
from .pool import ComputePool, WorkerCrashError
from .router import LinearScanRouter, MacInvertedRouter, Router, RoutingDecision
from .service import FloorServingService, ServingConfig, ServingResult
from .sharding import Shard, ShardedRouter, ShardedServingService, shard_index
from .telemetry import LatencyHistogram, ServingTelemetry

__all__ = [
    "FloorServingService",
    "ShardedServingService",
    "ComputePool",
    "WorkerCrashError",
    "Shard",
    "ShardedRouter",
    "shard_index",
    "ServingConfig",
    "ServingResult",
    "Router",
    "RoutingDecision",
    "LinearScanRouter",
    "MacInvertedRouter",
    "PredictionCache",
    "fingerprint_key",
    "MicroBatcher",
    "Batch",
    "LatencyHistogram",
    "ServingTelemetry",
]
