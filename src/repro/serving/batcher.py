"""Micro-batching of serving requests, bucketed per building.

Per-record inference pays fixed overheads (routing, graph bookkeeping,
telemetry) for every request.  The batcher coalesces incoming requests into
per-building batches and releases a batch when either trigger fires:

* **size** — the batch reached ``max_batch_size`` and is released
  immediately by :meth:`enqueue`;
* **deadline** — the *oldest* request in the batch has waited
  ``max_delay_seconds``; :meth:`due` releases such batches, bounding the
  extra latency any request can pay for the privilege of being batched.

The batcher is deliberately synchronous and clock-injected: the serving
façade (or an event loop around it) decides when to call :meth:`due`, and
tests can drive both triggers deterministically with a fake clock.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Batch", "MicroBatcher"]


@dataclass(frozen=True)
class Batch:
    """A released per-building batch and the trigger that released it."""

    building_id: str
    items: tuple
    reason: str  # "size" | "deadline" | "drain"
    #: How long the batch's oldest item waited in the bucket before release
    #: — the queue-wait cost of batching, surfaced to dispatch telemetry.
    queued_seconds: float = 0.0


@dataclass
class _Bucket:
    items: list = field(default_factory=list)
    oldest_at: float = 0.0


class MicroBatcher:
    """Coalesces per-building work items with size- and deadline-triggered flush."""

    def __init__(self, max_batch_size: int = 32,
                 max_delay_seconds: float = 0.05,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_delay_seconds < 0.0:
            raise ValueError("max_delay_seconds must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_delay_seconds = max_delay_seconds
        self._clock = clock
        self._buckets: OrderedDict[str, _Bucket] = OrderedDict()
        self.enqueued_total = 0
        self.flushes_by_reason = {"size": 0, "deadline": 0, "drain": 0}

    # ------------------------------------------------------------------ state
    @property
    def pending_count(self) -> int:
        return sum(len(bucket.items) for bucket in self._buckets.values())

    def pending_by_building(self) -> dict[str, int]:
        return {building_id: len(bucket.items)
                for building_id, bucket in self._buckets.items()}

    def next_deadline(self) -> float | None:
        """Absolute clock time at which the oldest pending batch becomes due."""
        if not self._buckets:
            return None
        oldest = min(bucket.oldest_at for bucket in self._buckets.values())
        return oldest + self.max_delay_seconds

    # ---------------------------------------------------------------- intake
    def enqueue(self, building_id: str, item: object,
                now: float | None = None) -> Batch | None:
        """Add one item; returns the full batch when the size trigger fires."""
        now = self._clock() if now is None else now
        bucket = self._buckets.get(building_id)
        if bucket is None:
            bucket = _Bucket(oldest_at=now)
            self._buckets[building_id] = bucket
        bucket.items.append(item)
        self.enqueued_total += 1
        if len(bucket.items) >= self.max_batch_size:
            return self._release(building_id, "size", now)
        return None

    # ---------------------------------------------------------------- release
    def _release(self, building_id: str, reason: str,
                 now: float | None = None) -> Batch:
        now = self._clock() if now is None else now
        bucket = self._buckets.pop(building_id)
        self.flushes_by_reason[reason] += 1
        return Batch(building_id=building_id, items=tuple(bucket.items),
                     reason=reason,
                     queued_seconds=max(0.0, now - bucket.oldest_at))

    def due(self, now: float | None = None) -> list[Batch]:
        """Release every batch whose oldest item has exceeded the deadline."""
        now = self._clock() if now is None else now
        expired = [building_id
                   for building_id, bucket in self._buckets.items()
                   if now - bucket.oldest_at >= self.max_delay_seconds]
        return [self._release(building_id, "deadline", now)
                for building_id in expired]

    def drain(self) -> list[Batch]:
        """Release everything that is pending, regardless of triggers."""
        return [self._release(building_id, "drain")
                for building_id in list(self._buckets)]

    def evict(self, building_id: str) -> tuple:
        """Remove and return a building's pending items without flushing them.

        Used when a building disappears from the registry: its queued work
        can no longer be dispatched and must be handed back to the caller
        (e.g. to reject the requests) instead of silently vanishing.
        """
        bucket = self._buckets.pop(building_id, None)
        return tuple(bucket.items) if bucket is not None else ()
