"""Process-pool compute for the cold serving path.

The plan/compute/commit split (PR 5) made the compute phase of cold
serving mutation-free: between the serving locks, a prediction is pure
function application against a read-only model snapshot, and its inputs
(``SignalRecord`` batches) and outputs (``FloorPrediction`` lists) are
plain picklable values.  That seam is exactly a process boundary —
in-process threads stay GIL-bound no matter how many cores the host has,
so this module puts a persistent :class:`ComputePool` of worker processes
behind it:

* **Workers hold read-only model snapshots** keyed by ``(building,
  generation)``.  A snapshot ships (pickled) to a worker once per
  generation; every later request for that model sends only the lightweight
  record batch and receives the computed predictions back.  A hot swap
  bumps the generation — the same fence idea as the retrain executor's
  per-building generation fence — so stale snapshots are never served and
  the superseded pickle is dropped worker-side.
* **Plan and commit stay in the parent**, under the existing serving
  locks: routing, cache lookups, the stale-swap cache guard and every
  rejection path are byte-for-byte the code the in-process mode runs.
  Only the engine work moves, so pooled predictions are byte-identical to
  in-process ones (test-enforced) — online inference is deterministic and
  a pickled model predicts exactly like its source.
* **Large batches split across workers.**  ``independent=True`` inference
  is per-record deterministic and independent of batch composition (the
  invariant the cache and micro-batcher already rely on), so one miss
  group chunks across the pool without changing a single output byte —
  this is what converts cold `predict_batch` from a single-core ceiling
  into a per-core-scaling path.
* **Faults stay deterministic.**  The parent evaluates the
  ``serve.compute`` failpoint (one process-global hit counter, seeded RNG
  streams intact) and ships the resulting directives; the worker executes
  them — raising :class:`~repro.faults.plan.FaultInjected`, sleeping, or
  hard-exiting on a ``kill`` (the pool-mode analogue of ``ProcessKilled``:
  the process that dies at ``serve.compute`` is the one computing).
  Worker death is detected via the process sentinel, surfaces as
  :class:`WorkerCrashError` (a retryable rejection on the micro-batched
  path, never a hang), and the pool respawns the worker with a fresh
  snapshot cache.

The default start method is ``"spawn"``: safe regardless of what threads
and locks the parent holds when a worker (re)starts, at the cost of
roughly an interpreter start + import per worker, paid once per pool.
``"fork"`` starts workers in milliseconds and is fine when the pool is
created before serving threads exist, but a *respawn* after a worker
crash forks a live multi-threaded parent — only opt in where that risk is
understood.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from multiprocessing.connection import Connection, wait as connection_wait

import numpy as np

from ..faults import failpoints
from ..obs import runtime as obs
from ..obs.log import log_event

__all__ = ["ComputePool", "WorkerCrashError"]

#: Smallest chunk worth a dedicated dispatch: below this, IPC overhead
#: outweighs the parallelism, so small groups ride in one task.
MIN_CHUNK_RECORDS = 8


class WorkerCrashError(RuntimeError):
    """A pool worker died while computing a request.

    Retryable: the pool has already respawned the worker by the time the
    caller sees this, and the request's inputs are unmodified — on the
    micro-batched path it surfaces as a rejected :class:`ServingResult`,
    on the synchronous path it propagates to the caller to retry.
    """


def _execute_directives(directives) -> None:
    """Run parent-evaluated fault directives on the worker side."""
    from ..faults.plan import FaultInjected

    for directive in directives or ():
        kind = directive["kind"]
        if kind == "kill":
            # A real worker death, observable only from the parent via the
            # process sentinel — like ProcessKilled, no worker-side handler
            # may absorb it.
            os._exit(17)
        if kind == "latency":
            time.sleep(directive["delay_seconds"])
        elif kind == "error":
            raise FaultInjected(directive["message"])


def _pool_worker_main(conn: Connection, worker_index: int) -> None:
    """Long-lived worker loop: receive tasks, compute, send results.

    Holds at most one snapshot per building — a task carrying a newer
    generation drops the superseded pickle before installing the new one,
    so worker memory is bounded by the registry size, not by swap churn.
    """
    snapshots: dict[tuple[str, int], object] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away; nothing left to serve
        if message[0] == "shutdown":
            conn.close()
            return
        _, task_id, building_id, generation, model, records, directives = message
        key = (building_id, generation)
        if model is not None:
            for stale in [k for k in snapshots if k[0] == building_id]:
                del snapshots[stale]
            snapshots[key] = model
        snapshot = snapshots.get(key)
        if snapshot is None:
            conn.send(("err", task_id, RuntimeError(
                f"worker {worker_index} has no snapshot for {key!r}")))
            continue
        try:
            _execute_directives(directives)
            start = time.perf_counter()
            predictions = snapshot.predict_batch(list(records),
                                                 independent=True)
            seconds = time.perf_counter() - start
        except Exception as error:  # shipped back, re-raised parent-side
            try:
                conn.send(("err", task_id, error))
            except Exception:
                conn.send(("err", task_id, RuntimeError(repr(error))))
        else:
            conn.send(("ok", task_id, predictions,
                       {"compute_seconds": seconds,
                        "records": len(predictions)}))


def _canonicalize(predictions) -> None:
    """Restore dtype-object identity on unpickled prediction embeddings.

    Unpickling an ndarray yields a fresh ``dtype`` instance instead of
    numpy's builtin singleton, so two chunks unpickled from two workers
    carry two distinct (equal) dtype objects where the in-process path has
    one.  Per-prediction bytes are unaffected, but a combined pickle of a
    whole batch memoizes by identity and would differ.  Re-binding the
    dtype by its string spec restores the singleton in place (no copy —
    same itemsize), making pooled output byte-identical to in-process even
    under whole-batch serialization.
    """
    for prediction in predictions:
        embedding = getattr(prediction, "embedding", None)
        if isinstance(embedding, np.ndarray):
            embedding.dtype = np.dtype(embedding.dtype.str)


class _Task:
    """Parent-side handle for one dispatched chunk."""

    __slots__ = ("done", "outcome")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.outcome: tuple | None = None  # ("ok", preds, stats) | ("err", e)

    def resolve(self, outcome: tuple) -> None:
        self.outcome = outcome
        self.done.set()


class _PoolCall:
    """All chunks of one ``submit``; reassembles outputs in input order."""

    __slots__ = ("_pool", "_tasks")

    def __init__(self, pool: "ComputePool", tasks: list[_Task]) -> None:
        self._pool = pool
        self._tasks = tasks

    def result(self) -> list:
        predictions: list = []
        error: BaseException | None = None
        for task in self._tasks:
            task.done.wait()
            kind = task.outcome[0]
            if kind == "ok":
                _, chunk, stats = task.outcome
                _canonicalize(chunk)
                predictions.extend(chunk)
                self._pool._record_chunk_stats(stats)
            elif error is None:
                error = task.outcome[1]
        if error is not None:
            raise error
        return predictions


class _Worker:
    """One worker process plus its parent-side bookkeeping.

    Outbound messages go through a FIFO ``outbox`` drained by a dedicated
    sender thread rather than a direct ``conn.send``: a pickled model
    snapshot can exceed the pipe buffer, and a blocking send under the
    pool lock would deadlock against the collector (which needs the lock
    to drain results the worker is itself blocked sending).  Enqueueing
    under the pool lock keeps ship-before-use ordering; the sender thread
    does the blocking I/O with no locks held.
    """

    __slots__ = ("index", "process", "conn", "shipped", "inflight",
                 "outbox", "sender")

    def __init__(self, index: int, process, conn: Connection) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        #: ``(building, generation)`` snapshots this worker already holds.
        self.shipped: set[tuple[str, int]] = set()
        self.inflight: dict[int, _Task] = {}
        self.outbox: queue.SimpleQueue = queue.SimpleQueue()
        self.sender = threading.Thread(
            target=self._send_loop, name=f"compute-pool-sender-{index}",
            daemon=True)
        self.sender.start()

    def _send_loop(self) -> None:
        while True:
            message = self.outbox.get()
            if message is None:
                return
            try:
                self.conn.send(message)
            except (BrokenPipeError, OSError):
                # Worker death is observed (and the task failed/respawned)
                # via the process sentinel; dropping the send is correct.
                pass


class ComputePool:
    """Persistent worker processes computing cold-path predictions.

    Parameters
    ----------
    workers:
        Number of long-lived worker processes (must be >= 1; a serving
        config of ``compute_workers=0`` means "no pool" and never
        constructs one).
    telemetry:
        The owning service's :class:`~repro.serving.telemetry.
        ServingTelemetry`.  The pool records its own counters there
        (``compute_pool_dispatch_total``, ``compute_pool_snapshot_ships_
        total``, ``compute_pool_worker_restarts_total``, the
        ``compute_pool_queue_depth`` gauge) *and* aggregates worker-side
        compute timings back into the parent registry (``batch_seconds``
        observations, ``batches_total`` / ``batched_records_total``
        counts), so ``/metrics`` shows one coherent view regardless of
        where the compute ran.
    start_method:
        ``"spawn"`` (default, thread-safe respawns), ``"fork"`` or
        ``"forkserver"`` where the platform offers them.
    """

    def __init__(self, workers: int, telemetry=None,
                 start_method: str | None = None) -> None:
        if workers < 1:
            raise ValueError("a compute pool needs at least one worker")
        start_method = start_method or "spawn"
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} is unavailable on this "
                f"platform; choose from "
                f"{multiprocessing.get_all_start_methods()}")
        self._context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.num_workers = workers
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._closed = False
        self._task_ids = iter(range(1, 2 ** 62))
        #: building -> (generation, model); the strong model ref pins the
        #: identity comparison (an ``is`` check against the snapshot taken
        #: under the serving lock), so a generation can never be reused for
        #: a different model object.
        self._generations: dict[str, tuple[int, object]] = {}
        self._workers: list[_Worker] = [self._spawn(i) for i in range(workers)]
        # Collector: one daemon thread resolving results and watching
        # sentinels, so worker death is detected even mid-request.
        self._wake_recv, self._wake_send = self._context.Pipe(duplex=False)
        self._collector = threading.Thread(target=self._collect,
                                           name="compute-pool-collector",
                                           daemon=True)
        self._collector.start()

    # ------------------------------------------------------------- lifecycle
    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_pool_worker_main, args=(child_conn, index),
            name=f"compute-pool-{index}", daemon=True)
        process.start()
        child_conn.close()
        return _Worker(index, process, parent_conn)

    def close(self, timeout: float = 5.0) -> None:
        """Shut the pool down; idempotent, fails any still-inflight tasks."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            for worker in workers:
                self._fail_inflight(worker, "compute pool closed")
                worker.outbox.put(("shutdown",))
                worker.outbox.put(None)
        try:
            self._wake_send.send(b"x")
        except (BrokenPipeError, OSError):
            pass
        for worker in workers:
            worker.sender.join(timeout=timeout)
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=timeout)
            worker.conn.close()
        self._collector.join(timeout=timeout)

    def __enter__(self) -> "ComputePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------------- dispatch
    def submit(self, building_id: str, model, records,
               directives=None) -> _PoolCall:
        """Dispatch one miss group's compute; returns a waitable handle.

        The group is split into at most ``num_workers`` chunks (none
        smaller than :data:`MIN_CHUNK_RECORDS`), each sent to the
        least-loaded worker — preferring, on ties, a worker that already
        holds this ``(building, generation)`` snapshot so models ship as
        rarely as possible.  Fault ``directives`` (parent-evaluated
        ``serve.compute`` decisions) ride with the first chunk only: one
        failpoint hit per group, exactly like the in-process path.
        """
        records = list(records)
        chunks = self._chunk(records)
        tasks: list[_Task] = []
        with self._lock:
            if self._closed:
                raise WorkerCrashError("compute pool is closed")
            generation = self._generation_for(building_id, model)
            key = (building_id, generation)
            for chunk_index, chunk in enumerate(chunks):
                worker = min(
                    self._workers,
                    key=lambda w: (len(w.inflight), key not in w.shipped,
                                   w.index))
                payload_model = None
                if key not in worker.shipped:
                    payload_model = model
                    worker.shipped.add(key)
                    self._increment("compute_pool_snapshot_ships_total")
                task = _Task()
                task_id = next(self._task_ids)
                worker.inflight[task_id] = task
                tasks.append(task)
                self._increment("compute_pool_dispatch_total")
                worker.outbox.put((
                    "task", task_id, building_id, generation,
                    payload_model, chunk,
                    directives if chunk_index == 0 else None))
            self._set_queue_depth_locked()
        return _PoolCall(self, tasks)

    def compute(self, building_id: str, model, records,
                directives=None) -> list:
        """Blocking convenience: ``submit(...)`` + ``result()``."""
        return self.submit(building_id, model, records,
                           directives=directives).result()

    def _chunk(self, records: list) -> list[list]:
        if len(records) <= MIN_CHUNK_RECORDS or self.num_workers == 1:
            return [records]
        chunks = min(self.num_workers,
                     max(1, len(records) // MIN_CHUNK_RECORDS))
        size, remainder = divmod(len(records), chunks)
        out, start = [], 0
        for i in range(chunks):
            end = start + size + (1 if i < remainder else 0)
            out.append(records[start:end])
            start = end
        return out

    def _generation_for(self, building_id: str, model) -> int:
        entry = self._generations.get(building_id)
        if entry is not None and entry[1] is model:
            return entry[0]
        generation = entry[0] + 1 if entry is not None else 1
        self._generations[building_id] = (generation, model)
        # Hot swap: superseded generations can never be requested again.
        for worker in self._workers:
            worker.shipped = {k for k in worker.shipped
                              if k[0] != building_id}
        return generation

    # ------------------------------------------------------------- collector
    def _collect(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                conns = {worker.conn: worker for worker in self._workers}
                sentinels = {worker.process.sentinel: worker
                             for worker in self._workers}
            ready = connection_wait(
                list(conns) + list(sentinels) + [self._wake_recv])
            for item in ready:
                if item is self._wake_recv:
                    return  # close() woke us
                worker = conns.get(item)
                if worker is not None:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        self._handle_death(worker)
                        continue
                    self._resolve(worker, message)
                    continue
                worker = sentinels.get(item)
                if worker is not None and not worker.process.is_alive():
                    # Drain results the worker managed to send before dying.
                    try:
                        while worker.conn.poll():
                            self._resolve(worker, worker.conn.recv())
                    except (EOFError, OSError):
                        pass
                    self._handle_death(worker)

    def _resolve(self, worker: _Worker, message: tuple) -> None:
        kind, task_id = message[0], message[1]
        with self._lock:
            task = worker.inflight.pop(task_id, None)
            self._set_queue_depth_locked()
        if task is None:
            return  # already failed by a death handler
        if kind == "ok":
            task.resolve(("ok", message[2], message[3]))
        else:
            task.resolve(("err", message[2]))

    def _handle_death(self, worker: _Worker) -> None:
        """A worker died: fail its inflight work, respawn it fresh."""
        with self._lock:
            if self._closed or self._workers[worker.index] is not worker:
                return
            exitcode = worker.process.exitcode
            worker.outbox.put(None)
            worker.conn.close()
            replacement = self._spawn(worker.index)
            self._workers[worker.index] = replacement
            self._increment("compute_pool_worker_restarts_total")
            # Fail the inflight work only after the respawn is recorded:
            # a caller woken by the rejection must already see the restart
            # counter and a live replacement worker.
            self._fail_inflight(
                worker,
                f"compute pool worker {worker.index} died "
                f"(exit code {exitcode}) mid-request; the request is "
                "retryable and the worker has been respawned")
            self._set_queue_depth_locked()
        log_event("compute_pool_worker_restarted", worker=worker.index,
                  exitcode=exitcode)

    def _fail_inflight(self, worker: _Worker, message: str) -> None:
        """Resolve every inflight task of ``worker`` as a crash (lock held)."""
        inflight, worker.inflight = worker.inflight, {}
        for task in inflight.values():
            task.resolve(("err", WorkerCrashError(message)))

    # ------------------------------------------------------------- telemetry
    def _increment(self, name: str, amount: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.increment(name, amount)

    def _set_queue_depth_locked(self) -> None:
        if self.telemetry is not None:
            depth = sum(len(w.inflight) for w in self._workers)
            self.telemetry.set_gauge("compute_pool_queue_depth", depth)

    def _record_chunk_stats(self, stats: dict) -> None:
        """Fold one chunk's worker-side measurements into parent telemetry."""
        if self.telemetry is not None:
            self.telemetry.observe("batch_seconds", stats["compute_seconds"])
            self.telemetry.increment("batches_total")
            self.telemetry.increment("batched_records_total",
                                     stats["records"])
        # Pre-aggregated worker span: visible in traces without the worker
        # needing any parent-side tracer state.
        obs.stage("serving.pool_compute", stats["compute_seconds"],
                  {"records": stats["records"]})

    def stats(self) -> dict[str, int | str]:
        """Pool gauges for telemetry snapshots and scorecards."""
        with self._lock:
            return {
                "workers": self.num_workers,
                "start_method": self.start_method,
                "queue_depth": sum(len(w.inflight) for w in self._workers),
                "snapshots_tracked": len(self._generations),
            }


def pooled_compute_directives(building_id: str | None = None):
    """Parent-side ``serve.compute`` failpoint evaluation for pool dispatch.

    Counts the same process-global hit the in-process ``fire`` would, and
    returns the picklable directives the worker must execute (or ``None``
    on the disabled fast path).
    """
    return failpoints.evaluate("serve.compute", building_id=building_id)
