"""Shared "+ Prox" machinery for embedding-producing baselines.

The paper combines the unsupervised baselines (Autoencoder, MDS and the raw
matrix representation) with GRAFICS' own proximity-based hierarchical
clustering for a fair comparison.  :class:`ProximityFloorModel` encapsulates
that step: given any fixed-length embedding of the training records and the
few labels, it runs the constrained clustering and answers nearest-centroid
floor queries for new embeddings.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..core.clustering.hierarchical import ClusteringResult, ProximityClustering
from ..core.clustering.model import ClusterModel, FloorCluster

__all__ = ["ProximityFloorModel"]


class ProximityFloorModel:
    """Proximity-based hierarchical clustering + nearest-centroid prediction."""

    def __init__(self, allow_unreachable: bool = True) -> None:
        self.allow_unreachable = allow_unreachable
        self.clustering: ClusteringResult | None = None
        self.cluster_model: ClusterModel | None = None

    def fit(self, record_ids: Sequence[str], embeddings: np.ndarray,
            labels: Mapping[str, int]) -> "ProximityFloorModel":
        """Cluster the training embeddings around the labeled samples."""
        record_ids = list(record_ids)
        embeddings = np.asarray(embeddings, dtype=np.float64)
        clustering = ProximityClustering(allow_unreachable=self.allow_unreachable)
        self.clustering = clustering.fit(record_ids, embeddings, labels)

        by_id = {rid: embeddings[i] for i, rid in enumerate(record_ids)}
        clusters = []
        for cluster_id, members in self.clustering.cluster_members.items():
            vectors = np.vstack([by_id[rid] for rid in members])
            clusters.append(FloorCluster(
                cluster_id=cluster_id,
                floor=self.clustering.cluster_labels[cluster_id],
                centroid=vectors.mean(axis=0),
                member_record_ids=tuple(members),
            ))
        self.cluster_model = ClusterModel(clusters)
        return self

    def predict(self, embeddings: np.ndarray) -> np.ndarray:
        """Nearest-centroid floor predictions for a batch of embeddings."""
        if self.cluster_model is None:
            raise RuntimeError("ProximityFloorModel is not fitted")
        return self.cluster_model.predict_batch(np.asarray(embeddings,
                                                           dtype=np.float64))

    def training_assignments(self) -> dict[str, int]:
        """Virtual floor labels given to every training record by the clustering."""
        if self.clustering is None:
            raise RuntimeError("ProximityFloorModel is not fitted")
        return {rid: self.clustering.cluster_labels[cid]
                for rid, cid in self.clustering.assignments.items()}
