"""Raw matrix representation + proximity clustering (paper Fig. 14).

The simplest point of comparison: skip graph modelling and embedding
entirely, treat each record's dense (-120-imputed, normalised) RSS row as its
"embedding" and feed that directly to the proximity-based hierarchical
clustering.  The paper uses this configuration to demonstrate how much the
missing-value problem hurts when records are represented as fixed-length
vectors.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..core.types import SignalRecord
from .base import FloorClassifier, MatrixFeaturizer
from .prox import ProximityFloorModel

__all__ = ["MatrixProxClassifier"]


class MatrixProxClassifier(FloorClassifier):
    """Dense RSS matrix rows used directly as embeddings, clustered with Prox."""

    name = "Matrix+Prox"

    def __init__(self) -> None:
        self.featurizer = MatrixFeaturizer()
        self.prox = ProximityFloorModel()

    def fit(self, train_records: Sequence[SignalRecord],
            labels: Mapping[str, int]) -> "MatrixProxClassifier":
        labels = self.check_labels(train_records, labels)
        features = self.featurizer.fit_transform(train_records)
        record_ids = [r.record_id for r in train_records]
        self.prox.fit(record_ids, features, labels)
        return self

    def predict(self, records: Sequence[SignalRecord]) -> dict[str, int]:
        features = self.featurizer.transform(records)
        floors = self.prox.predict(features)
        return {record.record_id: int(floor)
                for record, floor in zip(records, floors)}
