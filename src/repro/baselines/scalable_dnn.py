"""Scalable-DNN baseline (Kim, Lee & Huang, 2018; paper reference [30]).

The original Scalable-DNN architecture for multi-building/multi-floor WiFi
fingerprinting first reduces the dense RSS vector with a stacked-autoencoder
*encoding network* and then feeds the code into a feed-forward classifier that
emits floor ids as one-hot vectors.  It is fully supervised: following the
paper's protocol, the unlabeled training records receive pseudo labels (the
label of the nearest labeled sample in the feature space) before training.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..core.types import SignalRecord
from ..nn import (
    Adam,
    Dense,
    Dropout,
    MeanSquaredError,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    train_network,
)
from .base import FloorClassifier, MatrixFeaturizer
from .pseudo_label import assign_pseudo_labels

__all__ = ["ScalableDNNClassifier"]


class ScalableDNNClassifier(FloorClassifier):
    """Stacked-autoencoder encoder + feed-forward floor classifier."""

    name = "Scalable-DNN"

    def __init__(self, encoder_sizes: tuple[int, ...] = (64, 16, 8),
                 classifier_sizes: tuple[int, ...] = (32, 32),
                 dropout: float = 0.2, pretrain_epochs: int = 20,
                 train_epochs: int = 60, batch_size: int = 32,
                 learning_rate: float = 1e-3, seed: int | None = 0) -> None:
        self.encoder_sizes = encoder_sizes
        self.classifier_sizes = classifier_sizes
        self.dropout = dropout
        self.pretrain_epochs = pretrain_epochs
        self.train_epochs = train_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.featurizer = MatrixFeaturizer()
        self.network: Sequential | None = None
        self._floor_values: np.ndarray | None = None

    # ------------------------------------------------------------------ model
    def _build_encoder(self, num_features: int,
                       rng: np.random.Generator) -> tuple[Sequential, Sequential]:
        """Encoder and mirrored decoder for autoencoder pre-training."""
        encoder_layers = []
        previous = num_features
        for width in self.encoder_sizes:
            encoder_layers.append(Dense(previous, width, rng=rng))
            encoder_layers.append(ReLU())
            previous = width
        decoder_layers = []
        for width in reversed((num_features,) + self.encoder_sizes[:-1]):
            decoder_layers.append(Dense(previous, width, rng=rng))
            decoder_layers.append(ReLU())
            previous = width
        # The final reconstruction layer should be linear, not ReLU-clipped.
        decoder_layers.pop()
        return Sequential(encoder_layers), Sequential(decoder_layers)

    def _build_classifier(self, rng: np.random.Generator,
                          num_classes: int) -> Sequential:
        layers = []
        previous = self.encoder_sizes[-1]
        for width in self.classifier_sizes:
            layers.append(Dense(previous, width, rng=rng))
            layers.append(ReLU())
            if self.dropout:
                layers.append(Dropout(self.dropout, rng=rng))
            previous = width
        layers.append(Dense(previous, num_classes, rng=rng))
        return Sequential(layers)

    # --------------------------------------------------------------- training
    def fit(self, train_records: Sequence[SignalRecord],
            labels: Mapping[str, int]) -> "ScalableDNNClassifier":
        labels = self.check_labels(train_records, labels)
        features = self.featurizer.fit_transform(train_records)
        record_ids = [r.record_id for r in train_records]
        rng = np.random.default_rng(self.seed)

        # Pseudo-label the unlabeled part of the training data.
        full_labels = assign_pseudo_labels(record_ids, features, labels)
        floor_values = np.array(sorted({f for f in full_labels.values()}),
                                dtype=np.int64)
        self._floor_values = floor_values
        class_of = {int(floor): i for i, floor in enumerate(floor_values)}
        targets = np.array([class_of[full_labels[rid]] for rid in record_ids],
                           dtype=np.int64)

        # Stage 1: unsupervised autoencoder pre-training of the encoder.
        encoder, decoder = self._build_encoder(features.shape[1], rng)
        pretrain_net = Sequential([encoder, decoder])
        train_network(pretrain_net, MeanSquaredError(), features, features,
                      epochs=self.pretrain_epochs, batch_size=self.batch_size,
                      optimizer=Adam(pretrain_net.parameters(),
                                     learning_rate=self.learning_rate),
                      seed=self.seed)

        # Stage 2: supervised training of encoder + classifier end to end.
        classifier = self._build_classifier(rng, num_classes=floor_values.size)
        self.network = Sequential([encoder, classifier])
        train_network(self.network, SoftmaxCrossEntropy(), features, targets,
                      epochs=self.train_epochs, batch_size=self.batch_size,
                      optimizer=Adam(self.network.parameters(),
                                     learning_rate=self.learning_rate),
                      seed=self.seed)
        return self

    # -------------------------------------------------------------- prediction
    def predict(self, records: Sequence[SignalRecord]) -> dict[str, int]:
        if self.network is None or self._floor_values is None:
            raise RuntimeError("ScalableDNNClassifier is not fitted")
        features = self.featurizer.transform(records)
        classes = self.network.predict_classes(features)
        return {record.record_id: int(self._floor_values[c])
                for record, c in zip(records, classes)}
