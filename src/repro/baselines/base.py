"""Common interface shared by GRAFICS and all baseline floor classifiers.

The experiment harness (:mod:`repro.evaluation.experiment`) drives every
method through the same two calls:

* ``fit(train_records, labels)`` — train on the crowdsourced records, of
  which only the ids listed in ``labels`` may be treated as labeled;
* ``predict(test_records)`` — return a ``{record_id: floor}`` mapping for
  held-out records.

Utilities for the matrix-based baselines (dense representation and feature
normalisation) live here as well, since Scalable-DNN, SAE, the autoencoder
and MDS all start from the same dense matrix that the paper criticises for
its missing-value problem.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

import numpy as np

from ..core.types import MISSING_RSS, SignalRecord, records_to_matrix

__all__ = ["FloorClassifier", "MatrixFeaturizer"]


class FloorClassifier(ABC):
    """Anything that can be trained on crowdsourced records and predict floors."""

    #: Human-readable name used in experiment reports.
    name: str = "classifier"

    @abstractmethod
    def fit(self, train_records: Sequence[SignalRecord],
            labels: Mapping[str, int]) -> "FloorClassifier":
        """Train on the given records; only ``labels`` reveals floor labels."""

    @abstractmethod
    def predict(self, records: Sequence[SignalRecord]) -> dict[str, int]:
        """Predict a floor for each record, keyed by record id."""

    def fit_predict(self, train_records: Sequence[SignalRecord],
                    labels: Mapping[str, int],
                    test_records: Sequence[SignalRecord]) -> dict[str, int]:
        """Convenience helper: fit then predict the held-out records."""
        self.fit(train_records, labels)
        return self.predict(test_records)

    @staticmethod
    def check_labels(train_records: Sequence[SignalRecord],
                     labels: Mapping[str, int]) -> dict[str, int]:
        """Validate that the labeled ids exist in the training records."""
        if not labels:
            raise ValueError("at least one labeled record is required")
        known = {r.record_id for r in train_records}
        missing = set(labels) - known
        if missing:
            raise ValueError(
                f"labels reference unknown records: {sorted(missing)[:5]}")
        return {str(k): int(v) for k, v in labels.items()}


class MatrixFeaturizer:
    """Dense-matrix featurisation shared by the matrix-based baselines.

    Converts variable-length records into fixed-length rows using the MAC
    vocabulary observed at fit time (unknown MACs in later records are
    dropped, exactly the limitation the paper points out), fills missing
    entries with -120 dBm and rescales RSS into ``[0, 1]``.
    """

    def __init__(self, missing_value: float = MISSING_RSS) -> None:
        self.missing_value = missing_value
        self.mac_order: list[str] | None = None

    @property
    def num_features(self) -> int:
        if self.mac_order is None:
            raise RuntimeError("featurizer is not fitted")
        return len(self.mac_order)

    def fit(self, records: Sequence[SignalRecord]) -> "MatrixFeaturizer":
        """Learn the MAC vocabulary (column order) from the training records."""
        _, self.mac_order = records_to_matrix(records,
                                              missing_value=self.missing_value)
        if not self.mac_order:
            raise ValueError("no MAC addresses found in the training records")
        return self

    def transform(self, records: Sequence[SignalRecord]) -> np.ndarray:
        """Dense, normalised feature matrix for the given records."""
        if self.mac_order is None:
            raise RuntimeError("featurizer is not fitted")
        matrix, _ = records_to_matrix(records, mac_order=self.mac_order,
                                      missing_value=self.missing_value)
        return self.normalize(matrix)

    def fit_transform(self, records: Sequence[SignalRecord]) -> np.ndarray:
        return self.fit(records).transform(records)

    def normalize(self, matrix: np.ndarray) -> np.ndarray:
        """Map RSS in dBm to [0, 1]: missing readings map to 0, -30 dBm to 1."""
        scaled = (matrix - self.missing_value) / (-30.0 - self.missing_value)
        return np.clip(scaled, 0.0, 1.0)
