"""SAE baseline (Nowicki & Wietrzykowski, 2017; paper reference [15]).

The original work trains *stacked autoencoders* greedily, one layer at a
time, to learn a low-dimensional representation of the dense RSS vector, and
then attaches a classifier for hierarchical building/floor recognition (only
the floor level is relevant here).  As in the paper's protocol, unlabeled
training records receive pseudo labels from their nearest labeled neighbour
before supervised fine-tuning.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..core.types import SignalRecord
from ..nn import (
    Adam,
    Dense,
    MeanSquaredError,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    Tanh,
    train_network,
)
from .base import FloorClassifier, MatrixFeaturizer
from .pseudo_label import assign_pseudo_labels

__all__ = ["StackedAutoencoder", "SAEClassifier"]


class StackedAutoencoder:
    """Greedy layer-wise pre-trained encoder."""

    def __init__(self, input_dimension: int, layer_sizes: tuple[int, ...] = (64, 16, 8),
                 epochs_per_layer: int = 15, batch_size: int = 32,
                 learning_rate: float = 1e-3, seed: int | None = 0) -> None:
        if not layer_sizes:
            raise ValueError("layer_sizes must not be empty")
        self.input_dimension = input_dimension
        self.layer_sizes = layer_sizes
        self.epochs_per_layer = epochs_per_layer
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.encoder_layers: list[Sequential] = []

    def fit(self, features: np.ndarray) -> "StackedAutoencoder":
        """Greedily train one autoencoder per layer on the previous layer's codes."""
        current = np.asarray(features, dtype=np.float64)
        previous_width = self.input_dimension
        self.encoder_layers = []
        for width in self.layer_sizes:
            encoder = Sequential([Dense(previous_width, width, rng=self._rng),
                                  Tanh()])
            decoder = Sequential([Dense(width, previous_width, rng=self._rng)])
            autoencoder = Sequential([encoder, decoder])
            train_network(autoencoder, MeanSquaredError(), current, current,
                          epochs=self.epochs_per_layer,
                          batch_size=self.batch_size,
                          optimizer=Adam(autoencoder.parameters(),
                                         learning_rate=self.learning_rate),
                          seed=self.seed)
            self.encoder_layers.append(encoder)
            current = encoder.forward(current, training=False)
            previous_width = width
        return self

    def encoder(self) -> Sequential:
        """The stacked encoder as a single network (shares the trained layers)."""
        if not self.encoder_layers:
            raise RuntimeError("StackedAutoencoder is not fitted")
        return Sequential(list(self.encoder_layers))

    def encode(self, features: np.ndarray) -> np.ndarray:
        return self.encoder().forward(np.asarray(features, dtype=np.float64),
                                      training=False)


class SAEClassifier(FloorClassifier):
    """Greedy stacked-autoencoder representation + floor classifier."""

    name = "SAE"

    def __init__(self, layer_sizes: tuple[int, ...] = (64, 16, 8),
                 classifier_width: int = 32, pretrain_epochs: int = 15,
                 train_epochs: int = 60, batch_size: int = 32,
                 learning_rate: float = 1e-3, seed: int | None = 0) -> None:
        self.layer_sizes = layer_sizes
        self.classifier_width = classifier_width
        self.pretrain_epochs = pretrain_epochs
        self.train_epochs = train_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.featurizer = MatrixFeaturizer()
        self.network: Sequential | None = None
        self._floor_values: np.ndarray | None = None

    def fit(self, train_records: Sequence[SignalRecord],
            labels: Mapping[str, int]) -> "SAEClassifier":
        labels = self.check_labels(train_records, labels)
        features = self.featurizer.fit_transform(train_records)
        record_ids = [r.record_id for r in train_records]
        rng = np.random.default_rng(self.seed)

        full_labels = assign_pseudo_labels(record_ids, features, labels)
        floor_values = np.array(sorted({f for f in full_labels.values()}),
                                dtype=np.int64)
        self._floor_values = floor_values
        class_of = {int(floor): i for i, floor in enumerate(floor_values)}
        targets = np.array([class_of[full_labels[rid]] for rid in record_ids],
                           dtype=np.int64)

        stacked = StackedAutoencoder(features.shape[1],
                                     layer_sizes=self.layer_sizes,
                                     epochs_per_layer=self.pretrain_epochs,
                                     batch_size=self.batch_size,
                                     learning_rate=self.learning_rate,
                                     seed=self.seed)
        stacked.fit(features)

        classifier = Sequential([
            Dense(self.layer_sizes[-1], self.classifier_width, rng=rng),
            ReLU(),
            Dense(self.classifier_width, floor_values.size, rng=rng),
        ])
        self.network = Sequential([stacked.encoder(), classifier])
        train_network(self.network, SoftmaxCrossEntropy(), features, targets,
                      epochs=self.train_epochs, batch_size=self.batch_size,
                      optimizer=Adam(self.network.parameters(),
                                     learning_rate=self.learning_rate),
                      seed=self.seed)
        return self

    def predict(self, records: Sequence[SignalRecord]) -> dict[str, int]:
        if self.network is None or self._floor_values is None:
            raise RuntimeError("SAEClassifier is not fitted")
        features = self.featurizer.transform(records)
        classes = self.network.predict_classes(features)
        return {record.record_id: int(self._floor_values[c])
                for record, c in zip(records, classes)}
