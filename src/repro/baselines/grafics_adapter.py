"""Adapter exposing the GRAFICS pipeline through the FloorClassifier interface.

The experiment harness compares methods through the uniform
``fit``/``predict`` interface of :class:`repro.baselines.FloorClassifier`;
this adapter wraps :class:`repro.core.GRAFICS` (including its LINE ablation
variants) so it can be benchmarked side by side with the baselines.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..core.pipeline import GRAFICS, GraficsConfig
from ..core.types import SignalRecord
from .base import FloorClassifier

__all__ = ["GraficsClassifier"]


class GraficsClassifier(FloorClassifier):
    """GRAFICS (or GRAFICS-with-LINE) behind the common classifier interface."""

    def __init__(self, config: GraficsConfig | None = None,
                 name: str | None = None) -> None:
        self.config = config or GraficsConfig()
        self.name = name or ("GRAFICS" if self.config.embedder == "eline"
                             else f"GRAFICS({self.config.embedder})")
        self.model: GRAFICS | None = None

    def fit(self, train_records: Sequence[SignalRecord],
            labels: Mapping[str, int]) -> "GraficsClassifier":
        labels = self.check_labels(train_records, labels)
        self.model = GRAFICS(self.config)
        self.model.fit(list(train_records), labels)
        return self

    def predict(self, records: Sequence[SignalRecord]) -> dict[str, int]:
        if self.model is None:
            raise RuntimeError("GraficsClassifier is not fitted")
        stripped = [record.without_floor() for record in records]
        predictions = self.model.predict_batch(stripped)
        return {p.record_id: p.floor for p in predictions}

    def training_assignments(self) -> dict[str, int]:
        """Virtual labels the clustering gave to every training record."""
        if self.model is None:
            raise RuntimeError("GraficsClassifier is not fitted")
        return self.model.training_floor_assignments()
