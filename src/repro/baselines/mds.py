"""Multidimensional scaling + proximity clustering (paper Section VI-A).

The paper's MDS baseline embeds the dense RSS matrix rows by "optimising some
distance matrix" with the pairwise distance set to ``1 - cosine similarity``.
This module implements classical (Torgerson) MDS on that dissimilarity matrix
and the standard Nyström-style out-of-sample extension so that held-out test
records can be projected into the same space, after which the proximity-based
hierarchical clustering assigns floors.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..core.types import SignalRecord
from .base import FloorClassifier, MatrixFeaturizer
from .prox import ProximityFloorModel

__all__ = ["ClassicalMDS", "MDSProxClassifier", "cosine_dissimilarity"]


def cosine_dissimilarity(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Pairwise ``1 - cosine similarity`` between the rows of ``a`` and ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = a if b is None else np.asarray(b, dtype=np.float64)
    a_norm = np.linalg.norm(a, axis=1, keepdims=True)
    b_norm = np.linalg.norm(b, axis=1, keepdims=True)
    a_unit = np.divide(a, a_norm, out=np.zeros_like(a), where=a_norm > 0)
    b_unit = np.divide(b, b_norm, out=np.zeros_like(b), where=b_norm > 0)
    similarity = np.clip(a_unit @ b_unit.T, -1.0, 1.0)
    return 1.0 - similarity


class ClassicalMDS:
    """Classical (Torgerson) multidimensional scaling with out-of-sample support.

    Fitting double-centres the squared dissimilarity matrix, eigendecomposes
    it and keeps the top ``dimension`` components.  New points are embedded
    with the Nyström formula from their dissimilarities to the training
    points.
    """

    def __init__(self, dimension: int = 8) -> None:
        if dimension < 1:
            raise ValueError("dimension must be at least 1")
        self.dimension = dimension
        self._embedding: np.ndarray | None = None
        self._eigvecs: np.ndarray | None = None
        self._eigvals: np.ndarray | None = None
        self._train_sq: np.ndarray | None = None
        self._row_means: np.ndarray | None = None
        self._grand_mean: float | None = None

    @property
    def embedding(self) -> np.ndarray:
        if self._embedding is None:
            raise RuntimeError("ClassicalMDS is not fitted")
        return self._embedding

    def fit(self, dissimilarity: np.ndarray) -> np.ndarray:
        """Fit from a square dissimilarity matrix; returns the train embedding."""
        dissimilarity = np.asarray(dissimilarity, dtype=np.float64)
        n = dissimilarity.shape[0]
        if dissimilarity.shape != (n, n):
            raise ValueError("dissimilarity must be a square matrix")
        squared = dissimilarity ** 2
        self._train_sq = squared
        self._row_means = squared.mean(axis=1)
        self._grand_mean = float(squared.mean())

        centering = np.eye(n) - np.full((n, n), 1.0 / n)
        b = -0.5 * centering @ squared @ centering
        eigvals, eigvecs = np.linalg.eigh(b)
        order = np.argsort(eigvals)[::-1]
        eigvals, eigvecs = eigvals[order], eigvecs[:, order]

        k = min(self.dimension, n)
        eigvals = np.maximum(eigvals[:k], 0.0)
        eigvecs = eigvecs[:, :k]
        coords = eigvecs * np.sqrt(eigvals)[None, :]
        if k < self.dimension:
            coords = np.pad(coords, ((0, 0), (0, self.dimension - k)))
            eigvals = np.pad(eigvals, (0, self.dimension - k))
            eigvecs = np.pad(eigvecs, ((0, 0), (0, self.dimension - k)))
        self._eigvals = eigvals
        self._eigvecs = eigvecs
        self._embedding = coords
        return coords

    def transform(self, dissimilarity_to_train: np.ndarray) -> np.ndarray:
        """Nyström out-of-sample embedding from distances to the training points."""
        if self._embedding is None:
            raise RuntimeError("ClassicalMDS is not fitted")
        d_new_sq = np.asarray(dissimilarity_to_train, dtype=np.float64) ** 2
        if d_new_sq.ndim != 2 or d_new_sq.shape[1] != self._row_means.shape[0]:
            raise ValueError("expected one dissimilarity per training point")
        centred = -0.5 * (d_new_sq - self._row_means[None, :]
                          - d_new_sq.mean(axis=1, keepdims=True)
                          + self._grand_mean)
        inv_sqrt = np.divide(1.0, np.sqrt(self._eigvals),
                             out=np.zeros_like(self._eigvals),
                             where=self._eigvals > 0)
        return centred @ self._eigvecs * inv_sqrt[None, :]


class MDSProxClassifier(FloorClassifier):
    """MDS embeddings of the dense RSS matrix + proximity clustering."""

    name = "MDS+Prox"

    def __init__(self, dimension: int = 8, max_train_points: int = 1500,
                 seed: int | None = 0) -> None:
        #: MDS is O(n^3) in the number of training points; larger training
        #: sets are subsampled to this many anchor points before fitting.
        self.max_train_points = max_train_points
        self.dimension = dimension
        self.seed = seed
        self.featurizer = MatrixFeaturizer()
        self.mds = ClassicalMDS(dimension=dimension)
        self.prox = ProximityFloorModel()
        self._anchor_features: np.ndarray | None = None

    def fit(self, train_records: Sequence[SignalRecord],
            labels: Mapping[str, int]) -> "MDSProxClassifier":
        labels = self.check_labels(train_records, labels)
        features = self.featurizer.fit_transform(train_records)
        record_ids = [r.record_id for r in train_records]

        anchors = np.arange(len(train_records))
        if len(train_records) > self.max_train_points:
            rng = np.random.default_rng(self.seed)
            labeled_positions = [i for i, rid in enumerate(record_ids)
                                 if rid in labels]
            remaining = [i for i in range(len(record_ids)) if rid_not_in(
                record_ids[i], labels)]
            budget = self.max_train_points - len(labeled_positions)
            sampled = rng.choice(remaining, size=max(budget, 0), replace=False)
            anchors = np.array(sorted(set(labeled_positions) | set(sampled.tolist())))
        self._anchor_features = features[anchors]

        anchor_embedding = self.mds.fit(cosine_dissimilarity(self._anchor_features))
        del anchor_embedding  # anchors only define the space; all points re-projected
        train_embedding = self.mds.transform(
            cosine_dissimilarity(features, self._anchor_features))
        self.prox.fit(record_ids, train_embedding, labels)
        return self

    def predict(self, records: Sequence[SignalRecord]) -> dict[str, int]:
        if self._anchor_features is None:
            raise RuntimeError("MDSProxClassifier is not fitted")
        features = self.featurizer.transform(records)
        embedding = self.mds.transform(
            cosine_dissimilarity(features, self._anchor_features))
        floors = self.prox.predict(embedding)
        return {record.record_id: int(floor)
                for record, floor in zip(records, floors)}


def rid_not_in(record_id: str, labels: Mapping[str, int]) -> bool:
    """Tiny helper kept at module scope for readability of the anchor sampling."""
    return record_id not in labels
