"""Pseudo-labeling of unlabeled training samples (paper Section VI-A).

The supervised baselines (Scalable-DNN, SAE) need a label for every training
sample, but the experiment protocol only reveals a handful of labels per
floor.  Following the paper, the remaining training samples receive *pseudo*
labels: each unlabeled embedding takes the label of the closest labeled
embedding (Euclidean distance in whatever feature space the baseline uses).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np
from scipy.spatial.distance import cdist

__all__ = ["assign_pseudo_labels"]


def assign_pseudo_labels(record_ids: Sequence[str], embeddings: np.ndarray,
                         labels: Mapping[str, int]) -> dict[str, int]:
    """Label every record: true labels where known, nearest-labeled otherwise.

    Parameters
    ----------
    record_ids:
        Ids of all training records, row-aligned with ``embeddings``.
    embeddings:
        Feature vectors of shape ``(len(record_ids), dim)``.
    labels:
        True labels for the labeled subset (record id -> floor).

    Returns
    -------
    dict
        A complete ``{record_id: floor}`` mapping over all records.
    """
    record_ids = list(record_ids)
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.ndim != 2 or embeddings.shape[0] != len(record_ids):
        raise ValueError("embeddings must be a (n_records, dim) array")
    if not labels:
        raise ValueError("at least one labeled record is required")
    position = {rid: i for i, rid in enumerate(record_ids)}
    unknown = set(labels) - set(position)
    if unknown:
        raise ValueError(f"labels reference unknown records: {sorted(unknown)[:5]}")

    labeled_ids = list(labels)
    labeled_rows = embeddings[[position[rid] for rid in labeled_ids]]
    labeled_floors = np.array([labels[rid] for rid in labeled_ids], dtype=np.int64)

    result: dict[str, int] = {}
    unlabeled_ids = [rid for rid in record_ids if rid not in labels]
    if unlabeled_ids:
        unlabeled_rows = embeddings[[position[rid] for rid in unlabeled_ids]]
        distances = cdist(unlabeled_rows, labeled_rows)
        nearest = np.argmin(distances, axis=1)
        for rid, pick in zip(unlabeled_ids, nearest):
            result[rid] = int(labeled_floors[pick])
    result.update({rid: int(floor) for rid, floor in labels.items()})
    return result
