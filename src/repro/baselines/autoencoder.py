"""Convolutional autoencoder + proximity clustering (paper Section VI-A).

The paper's autoencoder baseline "consists of the four layers of 1-D
convolution with the ReLU activation function"; its bottleneck embeddings are
combined with the proximity-based hierarchical clustering (Prox).  The
encoder here stacks four Conv1D+ReLU blocks over the dense RSS row (treated
as a length-``n_macs`` single-channel signal), followed by a dense bottleneck
of the target embedding dimension; the decoder reconstructs the input with a
dense layer.  Training minimises mean squared reconstruction error over all
training records (labels are not used for the embedding).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..core.types import SignalRecord
from ..nn import Adam, Conv1D, Dense, Flatten, MeanSquaredError, ReLU, Sequential, train_network
from .base import FloorClassifier, MatrixFeaturizer
from .prox import ProximityFloorModel

__all__ = ["ConvAutoencoder", "AutoencoderProxClassifier"]


class ConvAutoencoder:
    """Four-block 1-D convolutional encoder with a dense bottleneck."""

    def __init__(self, num_features: int, embedding_dimension: int = 8,
                 channels: tuple[int, ...] = (8, 8, 4, 4),
                 epochs: int = 30, batch_size: int = 32,
                 learning_rate: float = 1e-3, seed: int | None = 0) -> None:
        if len(channels) != 4:
            raise ValueError("the paper's autoencoder uses exactly four conv layers")
        self.num_features = num_features
        self.embedding_dimension = embedding_dimension
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        rng = np.random.default_rng(seed)

        encoder_layers = []
        in_channels = 1
        for out_channels in channels:
            encoder_layers.append(Conv1D(in_channels, out_channels,
                                         kernel_size=3, rng=rng))
            encoder_layers.append(ReLU())
            in_channels = out_channels
        encoder_layers.append(Flatten())
        encoder_layers.append(Dense(num_features * in_channels,
                                    embedding_dimension, rng=rng))
        self.encoder = Sequential(encoder_layers)
        self.decoder = Sequential([
            Dense(embedding_dimension, num_features, rng=rng),
        ])
        self.network = Sequential([self.encoder, self.decoder])
        self._seed = seed

    def fit(self, features: np.ndarray) -> "ConvAutoencoder":
        """Train the autoencoder to reconstruct the normalised RSS rows."""
        features = np.asarray(features, dtype=np.float64)
        inputs = features[:, :, None]
        optimizer = Adam(self.network.parameters(),
                         learning_rate=self.learning_rate)
        train_network(self.network, MeanSquaredError(), inputs, features,
                      epochs=self.epochs, batch_size=self.batch_size,
                      optimizer=optimizer, seed=self._seed)
        return self

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Bottleneck embeddings of the given normalised RSS rows."""
        features = np.asarray(features, dtype=np.float64)
        return self.encoder.forward(features[:, :, None], training=False)

    def reconstruct(self, features: np.ndarray) -> np.ndarray:
        """Full encode-decode pass (used for reconstruction-error diagnostics)."""
        features = np.asarray(features, dtype=np.float64)
        return self.network.forward(features[:, :, None], training=False)


class AutoencoderProxClassifier(FloorClassifier):
    """Conv-autoencoder embeddings + proximity-based hierarchical clustering."""

    name = "Autoencoder+Prox"

    def __init__(self, embedding_dimension: int = 8, epochs: int = 30,
                 seed: int | None = 0) -> None:
        self.embedding_dimension = embedding_dimension
        self.epochs = epochs
        self.seed = seed
        self.featurizer = MatrixFeaturizer()
        self.autoencoder: ConvAutoencoder | None = None
        self.prox = ProximityFloorModel()

    def fit(self, train_records: Sequence[SignalRecord],
            labels: Mapping[str, int]) -> "AutoencoderProxClassifier":
        labels = self.check_labels(train_records, labels)
        features = self.featurizer.fit_transform(train_records)
        self.autoencoder = ConvAutoencoder(
            num_features=features.shape[1],
            embedding_dimension=self.embedding_dimension,
            epochs=self.epochs, seed=self.seed)
        self.autoencoder.fit(features)
        embeddings = self.autoencoder.encode(features)
        record_ids = [r.record_id for r in train_records]
        self.prox.fit(record_ids, embeddings, labels)
        return self

    def predict(self, records: Sequence[SignalRecord]) -> dict[str, int]:
        if self.autoencoder is None:
            raise RuntimeError("AutoencoderProxClassifier is not fitted")
        features = self.featurizer.transform(records)
        embeddings = self.autoencoder.encode(features)
        floors = self.prox.predict(embeddings)
        return {record.record_id: int(floor)
                for record, floor in zip(records, floors)}
