"""Baseline floor classifiers evaluated against GRAFICS in the paper."""

from .autoencoder import AutoencoderProxClassifier, ConvAutoencoder
from .base import FloorClassifier, MatrixFeaturizer
from .grafics_adapter import GraficsClassifier
from .matrix_prox import MatrixProxClassifier
from .mds import ClassicalMDS, MDSProxClassifier, cosine_dissimilarity
from .prox import ProximityFloorModel
from .pseudo_label import assign_pseudo_labels
from .sae import SAEClassifier, StackedAutoencoder
from .scalable_dnn import ScalableDNNClassifier

__all__ = [
    "FloorClassifier",
    "MatrixFeaturizer",
    "ProximityFloorModel",
    "assign_pseudo_labels",
    "GraficsClassifier",
    "MatrixProxClassifier",
    "MDSProxClassifier",
    "ClassicalMDS",
    "cosine_dissimilarity",
    "AutoencoderProxClassifier",
    "ConvAutoencoder",
    "SAEClassifier",
    "StackedAutoencoder",
    "ScalableDNNClassifier",
]
