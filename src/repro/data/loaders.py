"""Loading and saving fingerprint datasets in common on-disk formats.

Three formats are supported:

* **JSON lines** — one record per line with explicit ``rss`` mappings; this is
  the library's native interchange format and round-trips everything.
* **Wide CSV** (UJIIndoorLoc-style) — one column per AP (``WAP001`` ...) with a
  sentinel value for "not detected" plus a floor column; the de-facto format
  of public WiFi fingerprint datasets.
* **Long CSV** — one row per (record, MAC, RSS) triple, the shape of
  crowdsourced collection logs (and of the Microsoft Kaggle traces once
  flattened).

These loaders let users run the library on the paper's real datasets when
they have access to them, while the rest of the repository relies on the
synthetic presets.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Callable, Iterator
from pathlib import Path

from ..core.types import FingerprintDataset, SignalRecord

__all__ = [
    "save_jsonl",
    "load_jsonl",
    "iter_jsonl",
    "load_wide_csv",
    "save_wide_csv",
    "load_long_csv",
]

#: RSS sentinel that UJIIndoorLoc-style datasets use for "AP not detected".
WIDE_CSV_NOT_DETECTED = 100.0


def save_jsonl(dataset: FingerprintDataset, path: str | Path) -> None:
    """Write a dataset to JSON lines (one record per line, header line first)."""
    path = Path(path)
    header = {
        "type": "header",
        "building_id": dataset.building_id,
        "floor_names": {str(k): v for k, v in dataset.floor_names.items()},
        "metadata": dataset.metadata,
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for record in dataset.records:
            row = {
                "type": "record",
                "record_id": record.record_id,
                "rss": record.rss,
                "floor": record.floor,
                "device": record.device,
                "timestamp": record.timestamp,
            }
            handle.write(json.dumps(row) + "\n")


def iter_jsonl(path: str | Path,
               on_header: Callable[[dict], object] | None = None,
               ) -> Iterator[SignalRecord]:
    """Stream the records of a JSON-lines file one at a time.

    Unlike :func:`load_jsonl` this never materialises the whole dataset:
    records are yielded as they are parsed, so a streaming ingestor can
    replay arbitrarily large corpus files in bounded memory.  The optional
    ``on_header`` callback receives the header row (a plain dict) when one
    is encountered; header-less files are accepted.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON") from exc
            kind = row.get("type", "record")
            if kind == "header":
                if on_header is not None:
                    on_header(row)
            elif kind == "record":
                yield SignalRecord(
                    record_id=str(row["record_id"]),
                    rss={str(m): float(v) for m, v in row["rss"].items()},
                    floor=None if row.get("floor") is None else int(row["floor"]),
                    device=row.get("device"),
                    timestamp=row.get("timestamp"),
                )
            else:
                raise ValueError(f"{path}:{line_number}: unknown row type {kind!r}")


def load_jsonl(path: str | Path) -> FingerprintDataset:
    """Read a dataset previously written by :func:`save_jsonl`."""
    path = Path(path)
    header: dict = {}
    records = list(iter_jsonl(path, on_header=header.update))
    return FingerprintDataset(
        records=records,
        building_id=header.get("building_id", path.stem),
        floor_names={int(k): v
                     for k, v in header.get("floor_names", {}).items()},
        metadata=dict(header.get("metadata", {})),
    )


def load_wide_csv(path: str | Path, floor_column: str = "FLOOR",
                  ap_prefix: str = "WAP",
                  not_detected: float = WIDE_CSV_NOT_DETECTED,
                  building_id: str | None = None,
                  record_id_column: str | None = None) -> FingerprintDataset:
    """Load a UJIIndoorLoc-style wide CSV (one column per AP).

    Parameters
    ----------
    path:
        CSV file with a header row.
    floor_column:
        Name of the floor-label column; missing or empty values yield
        unlabeled records.
    ap_prefix:
        Columns whose names start with this prefix are treated as AP columns.
    not_detected:
        RSS value that means "AP not detected" (UJIIndoorLoc uses +100).
    building_id:
        Dataset identifier (defaults to the file stem).
    record_id_column:
        Optional column with record ids; row numbers are used otherwise.
    """
    path = Path(path)
    records: list[SignalRecord] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty CSV file")
        ap_columns = [c for c in reader.fieldnames if c.startswith(ap_prefix)]
        if not ap_columns:
            raise ValueError(
                f"{path}: no AP columns found with prefix {ap_prefix!r}")
        for row_number, row in enumerate(reader):
            rss = {}
            for column in ap_columns:
                raw = row.get(column, "")
                if raw in ("", None):
                    continue
                value = float(raw)
                if value == not_detected:
                    continue
                rss[column] = value
            if not rss:
                continue
            floor_raw = row.get(floor_column, "")
            floor = int(float(floor_raw)) if floor_raw not in ("", None) else None
            if record_id_column and row.get(record_id_column):
                record_id = str(row[record_id_column])
            else:
                record_id = f"{path.stem}:{row_number:06d}"
            records.append(SignalRecord(record_id=record_id, rss=rss, floor=floor))
    return FingerprintDataset(records=records,
                              building_id=building_id or path.stem)


def save_wide_csv(dataset: FingerprintDataset, path: str | Path,
                  floor_column: str = "FLOOR",
                  not_detected: float = WIDE_CSV_NOT_DETECTED) -> None:
    """Write a dataset to the wide CSV format (loses device/timestamp fields)."""
    path = Path(path)
    macs = dataset.macs
    fieldnames = ["RECORD_ID", *macs, floor_column]
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in dataset.records:
            row: dict[str, object] = {mac: not_detected for mac in macs}
            row.update({mac: rss for mac, rss in record.rss.items()})
            row["RECORD_ID"] = record.record_id
            row[floor_column] = "" if record.floor is None else record.floor
            writer.writerow(row)


def load_long_csv(path: str | Path, record_column: str = "record_id",
                  mac_column: str = "mac", rss_column: str = "rss",
                  floor_column: str = "floor",
                  building_id: str | None = None) -> FingerprintDataset:
    """Load a long-format CSV with one (record, MAC, RSS) triple per row.

    The floor column may be present on any subset of a record's rows; the
    first non-empty value wins and conflicting values raise an error.
    """
    path = Path(path)
    readings: dict[str, dict[str, float]] = {}
    floors: dict[str, int] = {}
    order: list[str] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        for row_number, row in enumerate(reader, start=2):
            record_id = str(row[record_column])
            if record_id not in readings:
                readings[record_id] = {}
                order.append(record_id)
            readings[record_id][str(row[mac_column])] = float(row[rss_column])
            floor_raw = row.get(floor_column, "")
            if floor_raw not in ("", None):
                floor = int(float(floor_raw))
                if record_id in floors and floors[record_id] != floor:
                    raise ValueError(
                        f"{path}:{row_number}: conflicting floors for record "
                        f"{record_id!r}")
                floors[record_id] = floor
    records = [SignalRecord(record_id=rid, rss=readings[rid],
                            floor=floors.get(rid))
               for rid in order if readings[rid]]
    return FingerprintDataset(records=records,
                              building_id=building_id or path.stem)
