"""Train/test splitting and label-budget sampling for experiments.

The paper's protocol (Section VI-A): 70% of each building's records are used
for training and 30% for testing; within the training portion only a small
number of records per floor (four by default) expose their floor labels, the
rest are treated as unlabeled.  Two additional sweeps perturb this protocol:
the training-ratio sweep (Fig. 12) and the MAC-availability sweep (Fig. 17).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import FingerprintDataset, SignalRecord

__all__ = [
    "DatasetSplit",
    "train_test_split",
    "sample_labels",
    "subsample_macs",
    "make_experiment_split",
]


@dataclass(frozen=True)
class DatasetSplit:
    """A train/test split plus the label budget for the training part.

    Attributes
    ----------
    train_records:
        Training records (labeled + unlabeled); ground-truth floors are still
        attached to the records for evaluation bookkeeping but must only be
        *used* through ``labels``.
    test_records:
        Held-out records for online-inference evaluation.
    labels:
        Mapping record id -> floor for the labeled training subset.
    """

    train_records: tuple[SignalRecord, ...]
    test_records: tuple[SignalRecord, ...]
    labels: dict[str, int]

    @property
    def num_labeled(self) -> int:
        return len(self.labels)

    def train_ground_truth(self) -> dict[str, int]:
        """Ground-truth floors of all training records (for diagnostics only)."""
        return {r.record_id: r.floor for r in self.train_records
                if r.floor is not None}

    def test_ground_truth(self) -> dict[str, int]:
        """Ground-truth floors of the held-out test records."""
        return {r.record_id: r.floor for r in self.test_records
                if r.floor is not None}


def train_test_split(dataset: FingerprintDataset, train_ratio: float = 0.7,
                     seed: int | None = 0,
                     stratify_by_floor: bool = True
                     ) -> tuple[list[SignalRecord], list[SignalRecord]]:
    """Split a dataset's records into train and test lists.

    With ``stratify_by_floor`` (default) the split keeps the per-floor record
    proportions, so every floor appears in both parts whenever it has at least
    two records.
    """
    if not 0.0 < train_ratio < 1.0:
        raise ValueError("train_ratio must be strictly between 0 and 1")
    rng = np.random.default_rng(seed)
    records = list(dataset.records)
    if not records:
        return [], []

    if not stratify_by_floor or not dataset.floors:
        permutation = rng.permutation(len(records))
        cut = max(1, int(round(train_ratio * len(records))))
        cut = min(cut, len(records) - 1) if len(records) > 1 else 1
        train = [records[i] for i in permutation[:cut]]
        test = [records[i] for i in permutation[cut:]]
        return train, test

    train: list[SignalRecord] = []
    test: list[SignalRecord] = []
    groups: dict[object, list[SignalRecord]] = {}
    for record in records:
        groups.setdefault(record.floor, []).append(record)
    for floor_records in groups.values():
        indices = rng.permutation(len(floor_records))
        cut = int(round(train_ratio * len(floor_records)))
        cut = min(max(cut, 1), max(len(floor_records) - 1, 1))
        train.extend(floor_records[i] for i in indices[:cut])
        test.extend(floor_records[i] for i in indices[cut:])
    return train, test


def sample_labels(records: list[SignalRecord], labels_per_floor: int = 4,
                  seed: int | None = 0) -> dict[str, int]:
    """Pick ``labels_per_floor`` random labeled samples per floor (Section VI-A).

    Floors with fewer records than the budget contribute all of their records.
    Records without ground truth are never selected.
    """
    if labels_per_floor < 1:
        raise ValueError("labels_per_floor must be at least 1")
    rng = np.random.default_rng(seed)
    by_floor: dict[int, list[SignalRecord]] = {}
    for record in records:
        if record.floor is not None:
            by_floor.setdefault(record.floor, []).append(record)
    if not by_floor:
        raise ValueError("no ground-truth floors available to sample labels from")

    labels: dict[str, int] = {}
    for floor, floor_records in sorted(by_floor.items()):
        count = min(labels_per_floor, len(floor_records))
        chosen = rng.choice(len(floor_records), size=count, replace=False)
        for index in chosen:
            record = floor_records[int(index)]
            labels[record.record_id] = floor
    return labels


def subsample_macs(dataset: FingerprintDataset, fraction: float,
                   seed: int | None = 0) -> FingerprintDataset:
    """Keep a random fraction of the building's MAC addresses (Fig. 17).

    Models sparse RF environments where only ``fraction`` of the APs exist
    on-site.  Records that end up with no readings are dropped, exactly as a
    real scan that detects nothing would never be contributed.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return dataset
    rng = np.random.default_rng(seed)
    macs = dataset.macs
    keep_count = max(1, int(round(fraction * len(macs))))
    kept = rng.choice(len(macs), size=keep_count, replace=False)
    kept_macs = {macs[int(i)] for i in kept}
    return dataset.restrict_macs(kept_macs)


def make_experiment_split(dataset: FingerprintDataset, train_ratio: float = 0.7,
                          labels_per_floor: int = 4, seed: int | None = 0,
                          mac_fraction: float = 1.0) -> DatasetSplit:
    """The paper's full experiment protocol in one call.

    Optionally restricts the building to a fraction of its MACs first
    (Fig. 17), then splits train/test (70/30 by default) and samples the
    per-floor label budget from the training part.
    """
    if mac_fraction < 1.0:
        dataset = subsample_macs(dataset, mac_fraction, seed=seed)
    train, test = train_test_split(dataset, train_ratio=train_ratio, seed=seed)
    labels = sample_labels(train, labels_per_floor=labels_per_floor, seed=seed)
    return DatasetSplit(train_records=tuple(train), test_records=tuple(test),
                        labels=labels)
