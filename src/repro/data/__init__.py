"""Synthetic crowdsourced RF datasets, loaders, splits and statistics."""

from .loaders import (
    iter_jsonl,
    load_jsonl,
    load_long_csv,
    load_wide_csv,
    save_jsonl,
    save_wide_csv,
)
from .presets import (
    dense_mall_floor,
    hong_kong_like_buildings,
    microsoft_like_campus,
    small_test_building,
    three_story_campus_building,
)
from .propagation import PropagationModel, PropagationParameters
from .splits import (
    DatasetSplit,
    make_experiment_split,
    sample_labels,
    subsample_macs,
    train_test_split,
)
from .stats import (
    BuildingSummary,
    EmpiricalCDF,
    building_summary,
    overlap_ratio_cdf,
    record_size_cdf,
    summarize_corpus,
)
from .synthetic import (
    AccessPoint,
    BuildingSpec,
    DevicePopulation,
    SyntheticBuilding,
    generate_building,
)

__all__ = [
    "PropagationModel",
    "PropagationParameters",
    "AccessPoint",
    "BuildingSpec",
    "DevicePopulation",
    "SyntheticBuilding",
    "generate_building",
    "microsoft_like_campus",
    "hong_kong_like_buildings",
    "three_story_campus_building",
    "dense_mall_floor",
    "small_test_building",
    "DatasetSplit",
    "train_test_split",
    "sample_labels",
    "subsample_macs",
    "make_experiment_split",
    "EmpiricalCDF",
    "record_size_cdf",
    "overlap_ratio_cdf",
    "BuildingSummary",
    "building_summary",
    "summarize_corpus",
    "save_jsonl",
    "load_jsonl",
    "iter_jsonl",
    "load_wide_csv",
    "save_wide_csv",
    "load_long_csv",
]
